"""Benchmark E6 — Figure 1: the K-layer GNN receptive field, verified.

The paper's Figure 1 is an illustration; here it becomes a measurement:
the gradient support of a K-layer GCNII output is exactly contained in
the K-hop neighbourhood, and shallow stacks cover only a small fraction
of the graph — the motivation for the levelized model.
"""

import pytest

from repro.experiments import figure1_data


@pytest.fixture(scope="module")
def fig1(dataset):
    return figure1_data("usb_cdc_core", layer_counts=(1, 2, 4, 8))


def test_figure1(benchmark, fig1):
    benchmark.pedantic(lambda: fig1, rounds=1, iterations=1)
    print(f"\nreceptive field at node {fig1['node']} of "
          f"{fig1['design']} ({fig1['num_nodes']} nodes):")
    print(f"{'layers':>7}{'reached':>9}{'k-hop':>7}{'coverage':>10}")
    for row in fig1["rows"]:
        print(f"{row['layers']:>7}{row['receptive_nodes']:>9}"
              f"{row['k_hop_nodes']:>7}{row['coverage']:>9.1%}")
        benchmark.extra_info[f"coverage_{row['layers']}"] = round(
            row["coverage"], 4)
        # The defining property of Figure 1: nothing outside K hops.
        assert row["within_k_hops"]
    coverages = [r["coverage"] for r in fig1["rows"]]
    assert coverages == sorted(coverages)
    # A 2-layer GNN sees only a small fraction of the design.
    assert fig1["rows"][1]["coverage"] < 0.5
