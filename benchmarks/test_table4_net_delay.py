"""Benchmark E2 — regenerate Table 4 (net delay prediction R2).

Trains (or loads from cache) the Barboza-style RF and MLP baselines and
the standalone net-embedding GNN, then scores every benchmark.  Shape
checks mirror the paper's findings: RF beats MLP, and the GNN's
generalization gap (train minus test R2) is no worse than the RF's.
"""

import numpy as np
import pytest

from repro.experiments import format_table4, table4_rows


@pytest.fixture(scope="module")
def rows(dataset):
    return table4_rows()


def test_table4(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print("\n" + format_table4(rows))
    avg = {r["benchmark"]: r for r in rows if r["benchmark"].startswith("Avg")}
    train, test = avg["Avg. Train"], avg["Avg. Test"]
    for key in ("rf_r2", "mlp_r2", "gnn_r2"):
        benchmark.extra_info[f"train_{key}"] = round(train[key], 4)
        benchmark.extra_info[f"test_{key}"] = round(test[key], 4)
    # Paper finding 1: RF beats MLP on engineered features.
    assert train["rf_r2"] > train["mlp_r2"]
    assert test["rf_r2"] > test["mlp_r2"]
    # Paper finding 2: the GNN generalizes — it beats the MLP on test
    # designs and has the smallest train-test gap of the three.
    assert test["gnn_r2"] > test["mlp_r2"]
    gap_gnn = train["gnn_r2"] - test["gnn_r2"]
    gap_rf = train["rf_r2"] - test["rf_r2"]
    assert gap_gnn < gap_rf + 0.05
    # All three models have real predictive power.
    assert test["gnn_r2"] > 0.4
    assert test["rf_r2"] > 0.4
