"""Benchmark E7 — Sec. 3.1's motivation: logic depth vs. GNN depth.

The paper argues a conventional GNN would need ~one layer per
topological level (~300 on their large designs) to emulate a timing
engine.  This bench measures the level counts of the benchmark suite and
checks they dwarf the 4-layer GNNs common in EDA — while the levelized
model handles them in a single pass.
"""

import numpy as np

from repro.netlist import benchmark_names


def _depth_stats(dataset):
    depths = {name: dataset[name].graph.num_levels
              for name in benchmark_names()}
    return depths


def test_logic_depth(benchmark, dataset):
    depths = benchmark(_depth_stats, dataset)
    print(f"\n{'design':<16}{'levels':>8}")
    for name, depth in sorted(depths.items(), key=lambda kv: -kv[1]):
        print(f"{name:<16}{depth:>8}")
    values = np.asarray(list(depths.values()))
    benchmark.extra_info["max_levels"] = int(values.max())
    benchmark.extra_info["mean_levels"] = float(values.mean())
    # Every design needs more hops than a conventional 4-layer GNN has.
    assert values.min() > 4
    # The deep designs need an order of magnitude more.
    assert values.max() > 40
