"""Benchmark E1 — regenerate Table 1 (benchmark statistics)."""

import numpy as np

from repro.experiments import format_table1, table1_rows


def test_table1(benchmark, dataset):
    rows = benchmark(table1_rows)
    print("\n" + format_table1(rows))

    by_name = {r["benchmark"]: r for r in rows}
    # Structural shape vs. the paper: per-design edge/node and
    # endpoint/node ratios within a factor-2 band of Table 1.
    for row in rows:
        if row["benchmark"].startswith("Total"):
            continue
        ratio_ours = row["net_edges"] / row["nodes"]
        ratio_paper = row["paper_net_edges"] / row["paper_nodes"]
        assert 0.5 * ratio_paper < ratio_ours < 2.0 * ratio_paper
    # The suite keeps the paper's size ordering at the extremes.
    assert by_name["aes256"]["nodes"] == max(
        r["nodes"] for r in rows if not r["benchmark"].startswith("Total"))
    total_train = by_name["Total Train"]
    total_test = by_name["Total Test"]
    assert total_train["nodes"] > total_test["nodes"]
    benchmark.extra_info["total_train_nodes"] = total_train["nodes"]
    benchmark.extra_info["total_test_nodes"] = total_test["nodes"]
