"""Benchmark E5 — regenerate Figure 4: slack correlation on usbf_device.

The paper shows predicted endpoint slack tracking ground truth closely
for both setup and hold on test design usbf_device.  We regenerate the
scatter series and check correlation strength.
"""

import numpy as np
import pytest

from repro.experiments import ascii_scatter, figure4_data


@pytest.fixture(scope="module")
def fig4(dataset):
    return figure4_data("usbf_device")


def test_figure4(benchmark, fig4):
    benchmark.pedantic(lambda: fig4, rounds=1, iterations=1)
    for mode in ("setup", "hold"):
        series = fig4[mode]
        benchmark.extra_info[f"{mode}_r2"] = round(series["r2"], 4)
        benchmark.extra_info[f"{mode}_pearson"] = round(series["pearson"], 4)
        print(f"\n{mode}: R2 {series['r2']:+.3f}  "
              f"Pearson {series['pearson']:+.3f}  "
              f"({len(series['true'])} endpoints)")
        print(ascii_scatter(series["true"], series["pred"],
                            title=f"{mode} slack (ps)"))
    # Strong correlation on the paper's showcased design.
    assert fig4["setup"]["pearson"] > 0.8
    assert fig4["setup"]["r2"] > 0.5
    assert fig4["hold"]["pearson"] > 0.5
