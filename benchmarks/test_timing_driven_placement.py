"""Benchmark E8 — the paper's motivating application, closed-loop.

Sec. 1 motivates fast pre-routing timing prediction with timing-driven
placement: real timing feedback (route + STA) is too slow to sit inside
a placement loop.  This benchmark closes the loop both ways on a
wire-dominated design and compares:

* baseline: wirelength-driven placement only;
* STA-driven: net weights from ground-truth slack (slow evaluator);
* GNN-driven: net weights from the trained model's predicted per-pin
  slack (arrivals forward + required backward over its own predicted
  net/cell delays — enabled by the paper's auxiliary tasks).

Expected shape: both guided flows beat the baseline WNS; the GNN
evaluator is much cheaper per iteration and recovers a large fraction
of the STA-guided gain.
"""

import pytest

from repro.liberty import make_sky130_like_library
from repro.netlist import build_benchmark
from repro.opt import optimize_placement
from repro.experiments import trained_timing_gnn

DESIGN = "salsa20"
SCALE = 0.5
ROUNDS = 3


@pytest.fixture(scope="module")
def runs(dataset):
    library = make_sky130_like_library()
    model = trained_timing_gnn("full")
    results = {}
    for evaluator in ("sta", "gnn"):
        design = build_benchmark(DESIGN, library, scale=SCALE)
        results[evaluator] = optimize_placement(
            design, evaluator=evaluator,
            model=model if evaluator == "gnn" else None,
            rounds=ROUNDS, seed=2, alpha=4.0)
    return results


def test_timing_driven_placement(benchmark, runs):
    benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    sta_run, gnn_run = runs["sta"], runs["gnn"]
    baseline_wns = sta_run.iterations[0]["wns"]

    print(f"\n{DESIGN} (scale {SCALE}), {ROUNDS} re-weighting rounds:")
    print(f"{'flow':<14}{'final WNS (ps)':>15}{'gain (ps)':>11}"
          f"{'evaluator s':>13}")
    print(f"{'baseline':<14}{baseline_wns:>15.1f}{0.0:>11.1f}{0.0:>13.3f}")
    for name, run in (("sta-driven", sta_run), ("gnn-driven", gnn_run)):
        gain = run.final_wns - baseline_wns
        print(f"{name:<14}{run.final_wns:>15.1f}{gain:>11.1f}"
              f"{run.evaluator_seconds:>13.3f}")

    benchmark.extra_info["baseline_wns"] = round(baseline_wns, 1)
    benchmark.extra_info["sta_wns"] = round(sta_run.final_wns, 1)
    benchmark.extra_info["gnn_wns"] = round(gnn_run.final_wns, 1)
    benchmark.extra_info["sta_eval_s"] = round(sta_run.evaluator_seconds, 3)
    benchmark.extra_info["gnn_eval_s"] = round(gnn_run.evaluator_seconds, 3)

    # Both guided flows must not be worse than the baseline (the
    # optimizer keeps the best round), and STA guidance must find a real
    # improvement on this wire-dominated design.
    assert sta_run.final_wns >= baseline_wns
    assert gnn_run.final_wns >= baseline_wns
    assert sta_run.final_wns > baseline_wns + 50.0
    # The GNN evaluator recovers a meaningful fraction of the gain.
    sta_gain = sta_run.final_wns - baseline_wns
    gnn_gain = gnn_run.final_wns - baseline_wns
    assert gnn_gain > 0.25 * sta_gain
