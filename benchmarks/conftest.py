"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index).  Heavy artifacts — the 21-design dataset
and the trained models — are cached on disk under the repro cache dir,
so the first run trains everything (tens of minutes on a laptop CPU) and
subsequent runs are fast.  Set REPRO_SCALE / REPRO_EPOCHS to trade
fidelity for speed, e.g.::

    REPRO_SCALE=0.3 REPRO_EPOCHS=5 pytest benchmarks/ --benchmark-only
"""

import os

import pytest


def pytest_report_header(config):
    scale = os.environ.get("REPRO_SCALE", "1.0")
    epochs = os.environ.get("REPRO_EPOCHS", "40 (default)")
    return [f"repro experiment scale={scale} epochs={epochs}"]


@pytest.fixture(scope="session")
def dataset():
    from repro.experiments import get_dataset
    return get_dataset()


@pytest.fixture(scope="session")
def train_test():
    from repro.experiments import train_test_graphs
    return train_test_graphs()
