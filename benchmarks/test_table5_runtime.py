"""Benchmark E4 — regenerate Table 5 (right): runtime and speed-up.

Compares the physical flow (routing + STA, our substrate's equivalent of
the paper's "OpenROAD Flow" columns) against trained-model inference.
Absolute speed-ups differ from the paper (its flow ran real routing for
minutes per design; ours is a fast simulator), but the shape holds: GNN
inference is orders of magnitude cheaper than re-running the flow, and
the gap widens with design size.
"""

import numpy as np
import pytest

from repro.experiments import table5_runtime_rows, trained_timing_gnn, get_dataset


@pytest.fixture(scope="module")
def runtime_rows(dataset):
    return table5_runtime_rows()


def test_table5_runtime(benchmark, runtime_rows):
    rows = {r["benchmark"]: r for r in runtime_rows}
    avg_test = rows["Avg. Test"]
    benchmark.extra_info["avg_test_flow_s"] = round(avg_test["flow_s"], 3)
    benchmark.extra_info["avg_test_gnn_s"] = round(avg_test["gnn_s"], 4)
    benchmark.extra_info["avg_test_speedup"] = round(avg_test["speedup"], 1)

    # Inference on the largest test design is what the benchmark times.
    dataset_records = get_dataset()
    model = trained_timing_gnn("full")
    graph = dataset_records["aes192"].graph
    benchmark(model.predict, graph)

    # Shape: the GNN beats re-running the flow on every design, and by a
    # large factor on the big ones.  (The paper reports ~10^3x because
    # its flow runs real routing for minutes per design; our substrate's
    # flow is itself a fast simulator, so the ratio is smaller — the
    # ordering and growth with design size are the reproducible claims.)
    for name, row in rows.items():
        if name.startswith("Avg."):
            continue
        assert row["speedup"] > 1.0, f"{name} not faster than the flow"
    assert rows["aes192"]["speedup"] > 5.0
    assert rows["aes256"]["speedup"] > 5.0
    # The speed-up grows with design size (flow is super-linear in pins,
    # vectorized inference is ~linear): biggest beats smallest.
    assert rows["aes256"]["speedup"] > rows["spm"]["speedup"]
