"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own auxiliary-loss ablation (Table 5), these benches
probe two architectural choices at a reduced scale:

* reduction channels: the paper's sum+max pair vs. sum-only / max-only;
* the Kronecker LUT-interpolation module vs. a plain MLP on flattened
  LUT features.

Reduced scale (0.4x designs, short training) keeps the bench suite's
wall time reasonable while still separating the variants.
"""

import dataclasses

import numpy as np
import pytest

from repro.graphdata import load_dataset
from repro.models import ModelConfig
from repro.netlist import TRAIN_BENCHMARKS, TEST_BENCHMARKS
from repro.training import (TrainConfig, evaluate_on, train_timing_gnn)

ABLATION_SCALE = 0.4
ABLATION_EPOCHS = 12

# Subset of designs: a few representative train + test circuits.
TRAIN_SUBSET = ["usb_cdc_core", "des", "picorv32a", "genericfir", "salsa20"]
TEST_SUBSET = ["xtea", "y_huff", "usbf_device"]


@pytest.fixture(scope="module")
def ablation_data():
    benchmarks = [b for b in TRAIN_BENCHMARKS + TEST_BENCHMARKS
                  if b.name in TRAIN_SUBSET + TEST_SUBSET]
    records = load_dataset(scale=ABLATION_SCALE, benchmarks=benchmarks)
    train = [records[n].graph for n in TRAIN_SUBSET]
    test = [records[n].graph for n in TEST_SUBSET]
    return train, test


def _train_and_score(train, test, cfg):
    tcfg = TrainConfig(epochs=ABLATION_EPOCHS, lr=3e-3, lr_decay=0.97)
    model, _history = train_timing_gnn(train, cfg, tcfg)
    scores = evaluate_on(model, test)
    return float(np.mean([m["arrival_r2"] for m in scores.values()]))


@pytest.mark.parametrize("reduction", ["both", "sum", "max"])
def test_reduction_channel_ablation(benchmark, ablation_data, reduction):
    train, test = ablation_data
    cfg = dataclasses.replace(ModelConfig.fast(), reduction=reduction)
    r2 = benchmark.pedantic(_train_and_score, args=(train, test, cfg),
                            rounds=1, iterations=1)
    benchmark.extra_info["test_arrival_r2"] = round(r2, 4)
    print(f"\nreduction={reduction}: test arrival R2 {r2:+.4f}")
    # Variant quality is compared via extra_info across the parametrized
    # runs (EXPERIMENTS.md records a full-scale comparison); here we only
    # require that training produced a sane model, not that every
    # channel choice generalizes at this reduced scale.
    assert np.isfinite(r2)
    assert r2 > -1.0


@pytest.mark.parametrize("lut_mode", ["kron", "mlp"])
def test_lut_module_ablation(benchmark, ablation_data, lut_mode):
    train, test = ablation_data
    cfg = dataclasses.replace(ModelConfig.fast(), lut_mode=lut_mode)
    r2 = benchmark.pedantic(_train_and_score, args=(train, test, cfg),
                            rounds=1, iterations=1)
    benchmark.extra_info["test_arrival_r2"] = round(r2, 4)
    print(f"\nlut_mode={lut_mode}: test arrival R2 {r2:+.4f}")
    assert np.isfinite(r2)
    assert r2 > -1.0
