"""Benchmark E3 — regenerate Table 5 (left): arrival/slack R2.

Trains (or loads from cache) deep GCNII baselines with 4/8/16 layers and
the timer-inspired GNN in its three auxiliary-loss configurations, then
scores all 21 designs.  Shape assertions encode the paper's headline
findings:

* the timer-inspired model generalizes (high test R2);
* vanilla deep GCNII collapses on test designs (far below ours, and far
  below its own training score);
* the full auxiliary configuration is the best of the three on average.
"""

import numpy as np
import pytest

from repro.experiments import (format_table5, table5_accuracy_rows,
                               table5_runtime_rows)


@pytest.fixture(scope="module")
def accuracy_rows(dataset):
    return table5_accuracy_rows()


def test_table5_accuracy(benchmark, accuracy_rows):
    benchmark.pedantic(lambda: accuracy_rows, rounds=1, iterations=1)
    avg = {r["benchmark"]: r for r in accuracy_rows
           if r["benchmark"].startswith("Avg")}
    train, test = avg["Avg. Train"], avg["Avg. Test"]
    for key in ("gcnii_4", "gcnii_8", "gcnii_16", "ours_full", "ours_cell",
                "ours_net"):
        benchmark.extra_info[f"train_{key}"] = round(train[key], 4)
        benchmark.extra_info[f"test_{key}"] = round(test[key], 4)

    # Ours generalizes across designs.
    assert test["ours_full"] > 0.55
    # Deep GCNII fails to generalize: a large gap versus ours, and a
    # collapse relative to its own training fit.
    for k in ("gcnii_4", "gcnii_8", "gcnii_16"):
        assert test["ours_full"] > test[k] + 0.3
        assert test[k] < train[k] - 0.2
    # Full auxiliary supervision is the best configuration on average.
    assert test["ours_full"] >= test["ours_cell"] - 0.02
    assert test["ours_full"] >= test["ours_net"] - 0.02


def test_table5_full_printout(benchmark, dataset, accuracy_rows):
    runtime_rows = benchmark(table5_runtime_rows)
    print("\n" + format_table5(accuracy_rows, runtime_rows))
