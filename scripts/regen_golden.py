#!/usr/bin/env python
"""Regenerate the golden STA fixtures under tests/golden/.

The fixtures pin the *exact* arrival/slew/slack values (bit-for-bit)
of two small benchmark designs, so any change that silently shifts STA
numerics fails ``tests/test_golden.py``.  Run this script — and commit
the result together with a DATASET_VERSION bump — only when a numeric
change is intentional:

    python scripts/regen_golden.py

Each design gets two files:

* ``<name>.npz``  — the exact arrays (arrival, slew, required,
  endpoint slack, clock period);
* ``<name>.json`` — a reviewable summary (shapes, sha256 digests,
  WNS/TNS) that must stay consistent with the npz.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.graphdata import TIME_SCALE                    # noqa: E402
from repro.graphdata.dataset import (DATASET_VERSION,     # noqa: E402
                                     generate_design)

# Two small designs, one per split, full scale: seconds to rebuild,
# megabytes to store, and they exercise the whole flow.
GOLDEN_DESIGNS = [("spm", "test"), ("cic_decimator", "train")]
GOLDEN_SCALE = 1.0
GOLDEN_SEED = 0

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "tests",
                          "golden")


def golden_arrays(graph):
    """The pinned arrays of one design's dataset graph."""
    return {
        "arrival": graph.arrival,
        "slew": graph.slew,
        "required": graph.required,
        "slack": graph.slack(),
        "clock_period": np.array([graph.clock_period], dtype=np.float64),
    }


def summarize(name, split, graph, arrays):
    slack = arrays["slack"]
    return {
        "design": name,
        "split": split,
        "scale": GOLDEN_SCALE,
        "seed": GOLDEN_SEED,
        "dataset_version": DATASET_VERSION,
        "nodes": graph.num_nodes,
        "endpoints": graph.num_endpoints,
        "clock_period_ps": float(graph.clock_period),
        "setup_wns_ps": float(np.nanmin(slack[:, 2:4]) * TIME_SCALE),
        "hold_wns_ps": float(np.nanmin(slack[:, 0:2]) * TIME_SCALE),
        "sha256": {key: hashlib.sha256(np.ascontiguousarray(val).tobytes())
                   .hexdigest() for key, val in arrays.items()},
    }


def main():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, split in GOLDEN_DESIGNS:
        record = generate_design(name, split, scale=GOLDEN_SCALE,
                                 seed=GOLDEN_SEED)
        arrays = golden_arrays(record.graph)
        npz_path = os.path.join(GOLDEN_DIR, f"{name}.npz")
        json_path = os.path.join(GOLDEN_DIR, f"{name}.json")
        np.savez_compressed(npz_path, **arrays)
        summary = summarize(name, split, record.graph, arrays)
        with open(json_path, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {npz_path} + .json  "
              f"({summary['nodes']} nodes, "
              f"setup WNS {summary['setup_wns_ps']:.1f} ps)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
