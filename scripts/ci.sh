#!/usr/bin/env bash
# CI entry point: tier-1 suite (twice: serial + parallel workers), a
# naive-backend kernel differential pass (including the delta-prediction
# differential harness), the coverage floors (repro.parallel, repro.nn,
# repro.obs, repro.serving, repro.sta), the bench regression gate
# (`repro bench diff --check` vs. the run ledger), then fast serving +
# compute smoke tests (the serving bench also gates the incremental
# delta path — delta_speedup > 1 vs full rebuild-and-forward — and the
# shadow-audit path: REPRO_AUDIT_RATE=1 with the audit digest asserted).
#
#   scripts/ci.sh         # full tier-1 x2 + differential + floors + smokes
#   scripts/ci.sh smoke   # smoke only (deselects @slow experiment tests)
#
# The suite runs twice so the golden STA comparator and the differential
# parallel tests are proven under both execution modes: serial, and with
# REPRO_WORKERS=2 sharding every dataset build across worker processes.
# The smoke stage runs at a reduced design scale / epoch count and uses
# a throwaway cache, so it exercises training, the serving stack and the
# load generator in minutes, not hours.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" != "smoke" ]]; then
    echo "== tier-1 test suite (serial) =="
    REPRO_WORKERS= python -m pytest -x -q

    echo "== tier-1 test suite (REPRO_WORKERS=2) =="
    REPRO_WORKERS=2 python -m pytest -x -q

    echo "== golden comparator present in both passes =="
    python - <<'EOF'
import subprocess, sys
out = subprocess.run(
    [sys.executable, "-m", "pytest", "--collect-only", "-q",
     "tests/test_golden.py"], capture_output=True, text=True)
assert "test_rebuild_matches_fixture_bit_for_bit" in out.stdout, \
    "golden comparator tests not collected"
print("golden comparator collected ok")
EOF

    echo "== fused/naive kernel differential (REPRO_KERNELS=naive) =="
    # The suite above ran with the default fused backend; re-run the
    # autograd/module/model subset with the naive composed-op backend as
    # the process default, so both code paths are proven green and the
    # fused==naive differential tests exercise backend switching in each
    # direction.
    REPRO_KERNELS=naive python -m pytest -x -q \
        tests/test_nn_autograd.py tests/test_nn_modules.py \
        tests/test_models.py \
        "tests/test_delta.py::TestEditDifferential"

    echo "== kernel suite under float32 and threaded execution =="
    # The compute-performance axes must each hold the fused==naive
    # contract: float32 training dtype (dtype-aware tolerances), the
    # serial thread budget, and a 4-thread budget with the engagement
    # threshold forced to 1 row so the chunked matmul/segment paths
    # actually run on test-sized inputs.
    REPRO_DTYPE=float32 python -m pytest -x -q \
        tests/test_nn_autograd.py tests/test_arena.py
    REPRO_COMPUTE_THREADS=1 python -m pytest -x -q \
        tests/test_nn_autograd.py tests/test_arena.py
    REPRO_COMPUTE_THREADS=4 REPRO_COMPUTE_MIN_ROWS=1 python -m pytest -x -q \
        tests/test_nn_autograd.py tests/test_arena.py

    echo "== coverage floors (repro.parallel, repro.nn, repro.obs, repro.serving, repro.sta) =="
    python scripts/coverage_floor.py --min 80

    echo "== bench regression gate (committed BENCH files vs. ledger) =="
    # First run on a fresh checkout has no baseline and passes vacuously;
    # --record appends the committed artefacts to the run ledger so the
    # trajectory starts accumulating and later runs are actually gated.
    python -m repro.cli bench diff --check --record
fi

echo "== serving smoke (REPRO_SCALE=0.25 REPRO_EPOCHS=2) =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
export REPRO_SCALE=0.25 REPRO_EPOCHS=2 REPRO_CACHE_DIR="$SMOKE_CACHE"

# In-process serving suite, then the pre-fork pool suite (shm bit
# identity, crash/restart, shutdown-leak regression; uses 2 workers),
# then the delta differential harness (incremental == full re-extract
# at 1e-9, in-process and through the pool).
python -m pytest -x -q -m "not slow" tests/test_serving.py tests/test_obs.py
python -m pytest -x -q -m "not slow" tests/test_pool.py
python -m pytest -x -q -m "not slow" tests/test_delta.py
python -m pytest -x -q -m "not slow" tests/test_quality.py

# Pooled benchmark: --workers 2 also drives a single-process reference
# phase first, so the artefact records workers, per-worker batching
# stats and the pool speedup.  bench-serve itself exits non-zero when
# the pooled run never forms a multi-item batch (batch_max <= 1).
# REPRO_AUDIT_RATE=1 turns on shadow-STA auditing for every served
# request, so the artefact also proves the quality-monitor path end to
# end (audit fields asserted below).
REPRO_AUDIT_RATE=1 REPRO_AUDIT_BUDGET=100000 \
python -m repro.cli bench-serve \
    --clients 8 --requests-per-client 8 --num-designs 3 \
    --scale 0.25 --epochs 2 --workers 2 --delta \
    --bench-json BENCH_serving.json

echo "== BENCH_serving.json well-formed check =="
python - <<'EOF'
import json

with open("BENCH_serving.json") as fh:
    bench = json.load(fh)
required = ["benchmark", "schema_version", "generated_at", "params",
            "clients", "requests", "ok", "errors", "incorrect",
            "warmup_requests", "throughput_rps", "latency_p50_ms",
            "latency_p99_ms", "server_stats", "workers", "batch_max",
            "shed", "retries", "single_process", "pool_speedup"]
missing = [key for key in required if key not in bench]
assert not missing, f"BENCH_serving.json missing keys: {missing}"
assert bench["benchmark"] == "serving"
assert bench["requests"] > 0 and bench["ok"] > 0
assert bench["warmup_requests"] >= 0
assert bench["throughput_rps"] > 0
assert bench["workers"] == 2, bench["workers"]
assert bench["batch_max"] > 1, \
    f"pooled run never batched (batch_max={bench['batch_max']})"
pool = bench["server_stats"]["pool"]
per_worker = pool["per_worker"]
assert len(per_worker) == bench["workers"]
for w in per_worker:
    for key in ("worker", "completed", "batches", "batch_max",
                "restarts", "latency_p50_ms", "latency_p99_ms",
                "latency_mean_ms", "requests"):
        assert key in w, f"per-worker stats missing {key}"
# Fleet observability: the pooled run must record the aggregated
# per-worker latency breakdown next to the router-side counters.
breakdown = bench["per_worker_latency"]
assert len(breakdown) == bench["workers"]
for row in breakdown:
    for key in ("worker", "requests", "latency_p50_ms",
                "latency_p99_ms", "latency_mean_ms"):
        assert key in row, f"per_worker_latency missing {key}"
assert sum(row["requests"] for row in breakdown) > 0, \
    "fleet aggregation recorded no worker-side requests"
assert bench["single_process"]["throughput_rps"] > 0
# Shadow-audit gate: the run above served with REPRO_AUDIT_RATE=1, so
# the artefact must carry a well-formed audit digest with at least one
# scored sample and a finite slack error.
import math
audit = bench["audit"]
for key in ("samples", "worker_audits", "slack_mae_ps", "drift_score",
            "rate"):
    assert key in audit, f"audit stats missing {key}"
assert audit["samples"] > 0, "shadow auditor scored no requests"
assert audit["slack_mae_ps"] is not None \
    and math.isfinite(audit["slack_mae_ps"]), audit["slack_mae_ps"]
print(f"audit ok: {audit['samples']} scored "
      f"({audit['worker_audits']} in workers), "
      f"slack MAE {audit['slack_mae_ps']:.2f} ps")
# Incremental delta gate: a single-edit /predict/delta iteration must
# beat the conventional rebuild-and-forward ECO iteration it replaces.
delta = bench["delta"]
for key in ("design", "num_nodes", "edits", "full_latency_ms",
            "delta_latency_ms", "delta_speedup"):
    assert key in delta, f"delta stats missing {key}"
assert delta["edits"] > 0 and delta["delta_latency_ms"] > 0
assert delta["delta_speedup"] > 1, \
    (f"incremental delta slower than full rebuild "
     f"({delta['delta_speedup']}x on {delta['design']})")
print(f"delta ok: {delta['delta_speedup']:.2f}x on {delta['design']} "
      f"({delta['full_latency_ms']:.1f} ms full -> "
      f"{delta['delta_latency_ms']:.1f} ms delta)")
print(f"BENCH_serving.json ok: {bench['requests']} requests "
      f"({bench['warmup_requests']} warmup, untimed), "
      f"{bench['throughput_rps']:.1f} req/s, "
      f"p50 {bench['latency_p50_ms']:.1f} ms, "
      f"workers {bench['workers']}, batch max {bench['batch_max']}, "
      f"pool speedup {bench['pool_speedup']:.2f}x")
EOF

echo "== pooled /metrics fleet exposition check =="
# A pooled server's /metrics must expose worker-labeled series merged
# from the worker-process registries (fleet aggregation), and the
# summed worker request counters must equal the router's accepted
# counter once the pool is drained.
python - <<'EOF'
import re
import time
import urllib.request

from repro.serving import ServingServer
from repro.serving.pool import PooledPredictionService

service = PooledPredictionService(workers=2, scale=0.25)
service.warm(models=["timing-full"], designs=["usbf_device"])
with ServingServer(service) as server:
    for _ in range(6):
        urllib.request.urlopen(urllib.request.Request(
            server.url + "/predict",
            data=b'{"design": "usbf_device", "no_cache": true}',
            headers={"Content-Type": "application/json"}), timeout=120)
    deadline = time.time() + 5.0
    while time.time() < deadline:
        text = urllib.request.urlopen(server.url + "/metrics",
                                      timeout=30).read().decode()
        # Idle workers snapshot their gauges every 0.25 s, so a
        # worker-labeled series can appear before the serving worker's
        # post-request snapshot lands — wait for the counter itself.
        if 'worker="1"' in text and "repro_worker_requests_total" in text:
            break
        time.sleep(0.3)
assert 'worker="1"' in text, "no worker-labeled series in /metrics"
assert "repro_worker_requests_total" in text
service.close()
pattern = re.compile(
    r'repro_worker_requests_total\{[^}]*\} ([0-9.]+)')
worker_total = sum(float(v) for v in pattern.findall(
    service.metrics_text()))
accepted = service.metrics.get("repro_pool_requests_total").value
assert worker_total == accepted > 0, (worker_total, accepted)
print(f"fleet /metrics ok: worker-labeled series present, "
      f"{int(worker_total)} worker requests == accepted counter")
EOF

echo "== compute benchmark smoke (fused vs. naive kernels) =="
# CI smoke settings for the speedup gate: the suite's largest design at
# scale 0.75, --quick stages (forward + forward_backward), interleaved
# min-of-7-reps timing.  The forward_backward geomean (fused at its
# best dtype vs. the naive float64 reference) must clear 2.5x.
python -m repro.cli bench-compute \
    --quick --scale 0.75 --designs aes256 \
    --bench-json BENCH_compute_smoke.json

echo "== BENCH_compute_smoke.json well-formed + speedup-gate check =="
python - <<'EOF'
import json

with open("BENCH_compute_smoke.json") as fh:
    bench = json.load(fh)
required = ["benchmark", "schema_version", "generated_at", "params",
            "backends", "dtypes", "stages", "reps", "designs", "summary"]
missing = [key for key in required if key not in bench]
assert not missing, f"BENCH_compute_smoke.json missing keys: {missing}"
assert bench["benchmark"] == "compute"
assert bench["schema_version"] >= 2, bench["schema_version"]
assert set(bench["backends"]) == {"naive", "fused"}
assert set(bench["dtypes"]) == {"float64", "float32"}
assert bench["params"]["threads"] >= 1
assert bench["designs"], "no designs benchmarked"
for row in bench["designs"]:
    # v2 nesting: times_ms[backend][dtype][stage]; naive runs the
    # float64 reference only, fused runs every dtype.
    assert set(row["times_ms"]["naive"]) == {"float64"}
    assert set(row["times_ms"]["fused"]) == set(bench["dtypes"])
    for backend, per_dtype in row["times_ms"].items():
        for dtype, stages in per_dtype.items():
            for stage in bench["stages"]:
                assert stages[stage] > 0.0, (backend, dtype, stage)
            # per-cell instrumentation columns
            assert row["allocations_per_step"][backend][dtype] > 0
            assert row["peak_rss_mb"][backend][dtype] > 0.0
    for dtype, stages in row["speedup"].items():
        assert all(v > 0.0 for v in stages.values()), dtype
    # Arena planning must beat the naive tape on allocation traffic.
    naive_allocs = row["allocations_per_step"]["naive"]["float64"]
    for dtype in bench["dtypes"]:
        assert row["allocations_per_step"]["fused"][dtype] < naive_allocs
for stage in bench["stages"]:
    assert f"speedup_{stage}_geomean" in bench["summary"]
    for dtype in bench["dtypes"]:
        assert f"speedup_{stage}_geomean_{dtype}" in bench["summary"]
geomean = bench["summary"]["speedup_forward_backward_geomean"]
assert geomean >= 2.5, \
    f"forward_backward speedup gate: geomean {geomean:.2f}x < 2.5x"
print(f"BENCH_compute_smoke.json ok: {len(bench['designs'])} design(s), "
      f"forward_backward geomean {geomean:.2f}x "
      f"(best dtype "
      f"{bench['summary']['speedup_forward_backward_best_dtype']})")
EOF
rm -f BENCH_compute_smoke.json

echo "== ci ok =="
