#!/usr/bin/env bash
# CI entry point: tier-1 suite, then a fast serving smoke test.
#
#   scripts/ci.sh         # full tier-1 + serving smoke
#   scripts/ci.sh smoke   # smoke only (deselects @slow experiment tests)
#
# The smoke stage runs at a reduced design scale / epoch count and uses
# a throwaway cache, so it exercises training, the serving stack and the
# load generator in minutes, not hours.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" != "smoke" ]]; then
    echo "== tier-1 test suite =="
    python -m pytest -x -q
fi

echo "== serving smoke (REPRO_SCALE=0.25 REPRO_EPOCHS=2) =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
export REPRO_SCALE=0.25 REPRO_EPOCHS=2 REPRO_CACHE_DIR="$SMOKE_CACHE"

python -m pytest -x -q -m "not slow" tests/test_serving.py tests/test_obs.py

python -m repro.cli bench-serve \
    --clients 8 --requests-per-client 8 --num-designs 3 \
    --scale 0.25 --epochs 2 \
    --bench-json BENCH_serving.json

echo "== BENCH_serving.json well-formed check =="
python - <<'EOF'
import json

with open("BENCH_serving.json") as fh:
    bench = json.load(fh)
required = ["benchmark", "schema_version", "generated_at", "params",
            "clients", "requests", "ok", "errors", "incorrect",
            "throughput_rps", "latency_p50_ms", "latency_p99_ms",
            "server_stats"]
missing = [key for key in required if key not in bench]
assert not missing, f"BENCH_serving.json missing keys: {missing}"
assert bench["benchmark"] == "serving"
assert bench["requests"] > 0 and bench["ok"] > 0
assert bench["throughput_rps"] > 0
print(f"BENCH_serving.json ok: {bench['requests']} requests, "
      f"{bench['throughput_rps']:.1f} req/s, "
      f"p50 {bench['latency_p50_ms']:.1f} ms")
EOF

echo "== ci ok =="
