#!/usr/bin/env bash
# CI entry point: tier-1 suite (twice: serial + parallel workers), the
# repro.parallel coverage floor, then a fast serving smoke test.
#
#   scripts/ci.sh         # full tier-1 x2 + coverage floor + serving smoke
#   scripts/ci.sh smoke   # smoke only (deselects @slow experiment tests)
#
# The suite runs twice so the golden STA comparator and the differential
# parallel tests are proven under both execution modes: serial, and with
# REPRO_WORKERS=2 sharding every dataset build across worker processes.
# The smoke stage runs at a reduced design scale / epoch count and uses
# a throwaway cache, so it exercises training, the serving stack and the
# load generator in minutes, not hours.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" != "smoke" ]]; then
    echo "== tier-1 test suite (serial) =="
    REPRO_WORKERS= python -m pytest -x -q

    echo "== tier-1 test suite (REPRO_WORKERS=2) =="
    REPRO_WORKERS=2 python -m pytest -x -q

    echo "== golden comparator present in both passes =="
    python - <<'EOF'
import subprocess, sys
out = subprocess.run(
    [sys.executable, "-m", "pytest", "--collect-only", "-q",
     "tests/test_golden.py"], capture_output=True, text=True)
assert "test_rebuild_matches_fixture_bit_for_bit" in out.stdout, \
    "golden comparator tests not collected"
print("golden comparator collected ok")
EOF

    echo "== repro.parallel coverage floor =="
    python scripts/coverage_floor.py --min 80
fi

echo "== serving smoke (REPRO_SCALE=0.25 REPRO_EPOCHS=2) =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
export REPRO_SCALE=0.25 REPRO_EPOCHS=2 REPRO_CACHE_DIR="$SMOKE_CACHE"

python -m pytest -x -q -m "not slow" tests/test_serving.py tests/test_obs.py

python -m repro.cli bench-serve \
    --clients 8 --requests-per-client 8 --num-designs 3 \
    --scale 0.25 --epochs 2 \
    --bench-json BENCH_serving.json

echo "== BENCH_serving.json well-formed check =="
python - <<'EOF'
import json

with open("BENCH_serving.json") as fh:
    bench = json.load(fh)
required = ["benchmark", "schema_version", "generated_at", "params",
            "clients", "requests", "ok", "errors", "incorrect",
            "throughput_rps", "latency_p50_ms", "latency_p99_ms",
            "server_stats"]
missing = [key for key in required if key not in bench]
assert not missing, f"BENCH_serving.json missing keys: {missing}"
assert bench["benchmark"] == "serving"
assert bench["requests"] > 0 and bench["ok"] > 0
assert bench["throughput_rps"] > 0
print(f"BENCH_serving.json ok: {bench['requests']} requests, "
      f"{bench['throughput_rps']:.1f} req/s, "
      f"p50 {bench['latency_p50_ms']:.1f} ms")
EOF

echo "== ci ok =="
