#!/usr/bin/env bash
# CI entry point: tier-1 suite, then a fast serving smoke test.
#
#   scripts/ci.sh         # full tier-1 + serving smoke
#   scripts/ci.sh smoke   # smoke only (deselects @slow experiment tests)
#
# The smoke stage runs at a reduced design scale / epoch count and uses
# a throwaway cache, so it exercises training, the serving stack and the
# load generator in minutes, not hours.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" != "smoke" ]]; then
    echo "== tier-1 test suite =="
    python -m pytest -x -q
fi

echo "== serving smoke (REPRO_SCALE=0.25 REPRO_EPOCHS=2) =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
export REPRO_SCALE=0.25 REPRO_EPOCHS=2 REPRO_CACHE_DIR="$SMOKE_CACHE"

python -m pytest -x -q -m "not slow" tests/test_serving.py

python -m repro.cli bench-serve \
    --clients 8 --requests-per-client 8 --num-designs 3 \
    --scale 0.25 --epochs 2

echo "== ci ok =="
