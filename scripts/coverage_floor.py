#!/usr/bin/env python
"""Line-coverage floor for src/repro/parallel, stdlib-only.

The container has no ``coverage``/``pytest-cov``, so this harness uses
``sys.settrace`` directly: it records executed lines of the target
package while running its test file in-process, then compares against
the executable lines reported by the compiled code objects
(``co_lines``).  Worker *processes* spawned by the tests are not
traced — the floor is calibrated for parent-process coverage.

    python scripts/coverage_floor.py            # default floor 80%
    python scripts/coverage_floor.py --min 85
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
TARGET_DIR = os.path.join(REPO, "src", "repro", "parallel")
TEST_FILES = [os.path.join(REPO, "tests", "test_parallel.py")]

sys.path.insert(0, os.path.join(REPO, "src"))

_executed = set()


def _local_trace(frame, event, arg):
    if event == "line":
        _executed.add((frame.f_code.co_filename, frame.f_lineno))
    return _local_trace


def _global_trace(frame, event, arg):
    # Only pay per-line tracing cost inside the target package.
    if frame.f_code.co_filename.startswith(TARGET_DIR):
        return _local_trace(frame, event, arg)
    return None


def executable_lines(path):
    """Line numbers the compiler can execute, per code object."""
    with open(path) as fh:
        code = compile(fh.read(), path, "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        stack.extend(const for const in obj.co_consts
                     if hasattr(const, "co_lines"))
    # A module's code object reports line 0 for setup bytecode.
    lines.discard(0)
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min", type=float, default=80.0,
                        help="minimum percent of executable lines "
                             "(default 80)")
    args = parser.parse_args()

    import pytest

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider", *TEST_FILES])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"coverage_floor: test run failed (exit {rc})",
              file=sys.stderr)
        return int(rc)

    total_exec = total_hit = 0
    print(f"\ncoverage of {os.path.relpath(TARGET_DIR, REPO)}:")
    for name in sorted(os.listdir(TARGET_DIR)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(TARGET_DIR, name)
        executable = executable_lines(path)
        hit = {line for fn, line in _executed if fn == path}
        covered = executable & hit
        missed = sorted(executable - hit)
        pct = 100.0 * len(covered) / max(len(executable), 1)
        total_exec += len(executable)
        total_hit += len(covered)
        gaps = ",".join(str(line) for line in missed[:12])
        more = f" (+{len(missed) - 12} more)" if len(missed) > 12 else ""
        print(f"  {name:<16}{pct:6.1f}%  "
              f"({len(covered)}/{len(executable)})"
              + (f"  missed: {gaps}{more}" if missed else ""))
    pct = 100.0 * total_hit / max(total_exec, 1)
    print(f"  {'TOTAL':<16}{pct:6.1f}%  ({total_hit}/{total_exec}, "
          f"floor {args.min:.0f}%)")
    if pct < args.min:
        print(f"coverage_floor: {pct:.1f}% is below the {args.min:.0f}% "
              f"floor for src/repro/parallel", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
