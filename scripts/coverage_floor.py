#!/usr/bin/env python
"""Per-package line-coverage floors, stdlib-only.

The container has no ``coverage``/``pytest-cov``, so this harness uses
``sys.settrace`` directly: it records executed lines of the target
packages while running their test files in-process, then compares
against the executable lines reported by the compiled code objects
(``co_lines``).  Worker *processes* spawned by the tests are not
traced — the floors are calibrated for parent-process coverage.

Covered packages (each with its own test files and an 80% floor):

* ``src/repro/parallel`` — driven by tests/test_parallel.py plus the
  shm-arena suite in tests/test_pool.py;
* ``src/repro/nn`` — the autograd engine and the fused kernel layer,
  driven by the autograd/module suites plus the model differential
  tests (which push the fused propagation path end to end);
* ``src/repro/obs`` — metrics/tracing/logging plus the run ledger,
  tape profiler, HTML report, fleet aggregation and the shadow-audit
  quality monitor, driven by tests/test_obs.py, tests/test_runs.py,
  tests/test_fleet.py and tests/test_quality.py;
* ``src/repro/serving`` — the prediction service, HTTP front-end,
  micro-batcher, delta sessions and the pre-fork pool tier, driven by
  tests/test_serving.py, tests/test_pool.py, tests/test_delta.py and
  tests/test_quality.py
  (the pool worker has a dedicated in-process suite precisely so its
  logic is traced in the parent — forked worker processes are invisible
  to settrace);
* ``src/repro/sta`` — the static timing engine, incremental timer and
  path enumeration, driven by tests/test_sta.py,
  tests/test_sta_properties.py, tests/test_incremental.py,
  tests/test_paths.py and tests/test_delta.py (the differential
  harness drives the timer through every ECO edit kind).

    python scripts/coverage_floor.py            # default floor 80%
    python scripts/coverage_floor.py --min 85
    python scripts/coverage_floor.py --package nn   # one package only
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def _t(*names):
    return [os.path.join(REPO, "tests", name) for name in names]


TARGETS = {
    "parallel": {
        "dir": os.path.join(REPO, "src", "repro", "parallel"),
        "tests": _t("test_parallel.py", "test_pool.py"),
    },
    "nn": {
        "dir": os.path.join(REPO, "src", "repro", "nn"),
        "tests": _t("test_nn_autograd.py", "test_nn_modules.py",
                    "test_models.py", "test_training.py"),
    },
    "obs": {
        "dir": os.path.join(REPO, "src", "repro", "obs"),
        "tests": _t("test_obs.py", "test_runs.py", "test_fleet.py",
                    "test_quality.py"),
    },
    "serving": {
        "dir": os.path.join(REPO, "src", "repro", "serving"),
        "tests": _t("test_serving.py", "test_pool.py", "test_delta.py",
                    "test_quality.py"),
    },
    "sta": {
        "dir": os.path.join(REPO, "src", "repro", "sta"),
        "tests": _t("test_sta.py", "test_sta_properties.py",
                    "test_incremental.py", "test_paths.py",
                    "test_delta.py"),
    },
}

sys.path.insert(0, os.path.join(REPO, "src"))

_executed = set()
_target_dirs = tuple(spec["dir"] for spec in TARGETS.values())


def _local_trace(frame, event, arg):
    if event == "line":
        _executed.add((frame.f_code.co_filename, frame.f_lineno))
    return _local_trace


def _global_trace(frame, event, arg):
    # Only pay per-line tracing cost inside the target packages.
    if frame.f_code.co_filename.startswith(_target_dirs):
        return _local_trace(frame, event, arg)
    return None


def executable_lines(path):
    """Line numbers the compiler can execute, per code object."""
    with open(path) as fh:
        code = compile(fh.read(), path, "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        stack.extend(const for const in obj.co_consts
                     if hasattr(const, "co_lines"))
    # A module's code object reports line 0 for setup bytecode.
    lines.discard(0)
    return lines


def report_package(name, spec, floor):
    """Print the per-file table for one package; return False on miss."""
    target_dir = spec["dir"]
    total_exec = total_hit = 0
    print(f"\ncoverage of {os.path.relpath(target_dir, REPO)}:")
    paths = []
    for root, _dirs, files in os.walk(target_dir):
        paths += [os.path.join(root, f) for f in files
                  if f.endswith(".py")]
    for path in sorted(paths):
        fname = os.path.relpath(path, target_dir)
        executable = executable_lines(path)
        hit = {line for fn, line in _executed if fn == path}
        covered = executable & hit
        missed = sorted(executable - hit)
        pct = 100.0 * len(covered) / max(len(executable), 1)
        total_exec += len(executable)
        total_hit += len(covered)
        gaps = ",".join(str(line) for line in missed[:12])
        more = f" (+{len(missed) - 12} more)" if len(missed) > 12 else ""
        print(f"  {fname:<20}{pct:6.1f}%  "
              f"({len(covered)}/{len(executable)})"
              + (f"  missed: {gaps}{more}" if missed else ""))
    pct = 100.0 * total_hit / max(total_exec, 1)
    print(f"  {'TOTAL':<16}{pct:6.1f}%  ({total_hit}/{total_exec}, "
          f"floor {floor:.0f}%)")
    if pct < floor:
        print(f"coverage_floor: {pct:.1f}% is below the {floor:.0f}% "
              f"floor for src/repro/{name}", file=sys.stderr)
        return False
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min", type=float, default=80.0,
                        help="minimum percent of executable lines "
                             "(default 80)")
    parser.add_argument("--package", choices=sorted(TARGETS), default=None,
                        help="check one package (default: all)")
    args = parser.parse_args()
    targets = ({args.package: TARGETS[args.package]} if args.package
               else TARGETS)

    import pytest

    test_files = []
    for spec in targets.values():
        test_files += [t for t in spec["tests"] if t not in test_files]

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider", *test_files])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"coverage_floor: test run failed (exit {rc})",
              file=sys.stderr)
        return int(rc)

    ok = True
    for name, spec in targets.items():
        ok = report_package(name, spec, args.min) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
