#!/usr/bin/env python
"""Timing-driven placement with the GNN in the loop.

The paper's introduction motivates fast pre-routing timing prediction
with exactly this application: analytical placers optimize wirelength
because route+STA is too slow to sit in the loop.  Here we compare three
placement flows on a wire-dominated design:

1. baseline — wirelength-driven placement only;
2. STA-driven — per-round ground-truth timing feedback (slow evaluator);
3. GNN-driven — the trained timer-inspired model predicts per-pin slack
   (arrivals from the main head, required times swept backward over its
   own predicted net/cell delays, courtesy of the auxiliary tasks).

Note: the GNN flow needs the trained model from the benchmark cache; run
``pytest benchmarks/test_table5_arrival_slack.py --benchmark-only`` (or
``python -m repro train``) first, or this script will train one (slow).
"""

from repro.liberty import make_sky130_like_library
from repro.netlist import build_benchmark
from repro.opt import optimize_placement
from repro.experiments import trained_timing_gnn

DESIGN = "salsa20"
SCALE = 0.5
ROUNDS = 3


def main():
    library = make_sky130_like_library()
    print("loading (or training) the timer-inspired GNN...")
    model = trained_timing_gnn("full")

    runs = {}
    for evaluator in ("sta", "gnn"):
        print(f"\nrunning {evaluator}-driven placement "
              f"({ROUNDS} re-weighting rounds)...")
        design = build_benchmark(DESIGN, library, scale=SCALE)
        runs[evaluator] = optimize_placement(
            design, evaluator=evaluator,
            model=model if evaluator == "gnn" else None,
            rounds=ROUNDS, seed=2, alpha=4.0)
        for it in runs[evaluator].iterations:
            print(f"  round {it['round']}: WNS {it['wns']:8.1f} ps  "
                  f"TNS {it['tns']:9.1f} ps  HPWL {it['hpwl']:9.0f} um")

    baseline = runs["sta"].iterations[0]
    print(f"\n{'flow':<14}{'final WNS (ps)':>15}{'gain (ps)':>11}"
          f"{'evaluator time (s)':>20}")
    print(f"{'baseline':<14}{baseline['wns']:>15.1f}{0.0:>11.1f}"
          f"{0.0:>20.3f}")
    for name in ("sta", "gnn"):
        run = runs[name]
        print(f"{name + '-driven':<14}{run.final_wns:>15.1f}"
              f"{run.final_wns - baseline['wns']:>11.1f}"
              f"{run.evaluator_seconds:>20.3f}")


if __name__ == "__main__":
    main()
