#!/usr/bin/env python
"""Endpoint slack prediction with an ASCII rendering of Figure 4.

Trains the full timer-inspired GNN on a handful of designs, then
predicts endpoint slack on a held-out design and renders the predicted-
vs-true scatter (the paper's Figure 4) as ASCII art, with R2 and Pearson
correlation, for both setup and hold.
"""

import numpy as np

from repro.experiments.figure4 import ascii_scatter
from repro.graphdata import TIME_SCALE, generate_design
from repro.ml import pearson_correlation, r2_score
from repro.models import ModelConfig
from repro.training import (TrainConfig, slack_from_arrival,
                            train_timing_gnn)

# A depth-diverse training set: shallow control designs plus deeper
# datapath/cipher/cpu designs, so the model sees the arrival-time range
# of the held-out design (training only on shallow designs produces a
# systematic arrival offset on deep ones).
TRAIN = ["usb_cdc_core", "des", "picorv32a", "BM64", "salsa20"]
HELD_OUT = "usbf_device"


def main():
    print("generating designs...")
    records = {name: generate_design(name, "train") for name in TRAIN}
    records[HELD_OUT] = generate_design(HELD_OUT, "test")
    train_graphs = [records[n].graph for n in TRAIN]

    print("training the full timer-inspired GNN "
          "(both auxiliary tasks on)...")
    model, history = train_timing_gnn(
        train_graphs, ModelConfig.benchmark(),
        TrainConfig(epochs=40, lr=3e-3, lr_decay=0.97, log_every=10))
    print(f"training loss {history.loss[0]:.1f} -> {history.loss[-1]:.3f}")

    graph = records[HELD_OUT].graph
    pred = model.predict(graph)
    slack_true = graph.slack() * TIME_SCALE
    slack_pred = slack_from_arrival(graph, pred.numpy_arrival()) * TIME_SCALE

    for mode, cols in (("setup", (2, 3)), ("hold", (0, 1))):
        t = np.nanmin(slack_true[:, cols], axis=1)
        p = np.nanmin(slack_pred[:, cols], axis=1)
        print(f"\n{mode} slack on held-out design {HELD_OUT}: "
              f"R2 {r2_score(t, p):+.3f}, "
              f"Pearson {pearson_correlation(t, p):+.3f}")
        print(ascii_scatter(t, p, title=f"{mode} slack (ps): "
                                        f"predicted vs. ground truth"))


if __name__ == "__main__":
    main()
