#!/usr/bin/env python
"""Net delay prediction: statistics-based ML vs. the net embedding GNN.

A small-scale version of the paper's Table 4: train the Barboza-style
random forest and MLP on engineered net features, train the net
embedding model on the same designs, and compare per-design R2 on
held-out benchmarks.  The expected shape: the RF wins on training
designs, the GNN generalizes better to unseen ones.
"""

import numpy as np

from repro import nn
from repro.graphdata import barboza_features, generate_design
from repro.ml import r2_score
from repro.models import ModelConfig, NetDelayMLP, NetDelayRandomForest
from repro.training import TrainConfig, train_net_embedding


TRAIN = ["usb_cdc_core", "des", "picorv32a", "genericfir", "wbqspiflash"]
TEST = ["xtea", "spm", "y_huff"]


def main():
    print("generating designs (place + route + STA per design)...")
    records = {name: generate_design(name, split)
               for split, names in (("train", TRAIN), ("test", TEST))
               for name in names}
    train_graphs = [records[n].graph for n in TRAIN]

    print("fitting random forest on engineered features...")
    rf = NetDelayRandomForest(n_estimators=20, seed=0).fit(train_graphs)
    print("fitting MLP on engineered features...")
    mlp = NetDelayMLP(epochs=80, seed=0).fit(train_graphs)
    print("training net embedding GNN (standalone net-delay model)...")
    gnn, _hist = train_net_embedding(
        train_graphs, ModelConfig.benchmark(),
        TrainConfig(epochs=80, lr=3e-3, lr_decay=0.98))

    header = f"{'design':<16}{'split':<7}{'RF':>9}{'MLP':>9}{'GNN':>9}"
    print("\n" + header)
    print("-" * len(header))
    averages = {}
    for split, names in (("train", TRAIN), ("test", TEST)):
        scores = {"rf": [], "mlp": [], "gnn": []}
        for name in names:
            graph = records[name].graph
            _x, y = barboza_features(graph)
            mask = graph.is_net_sink
            with nn.no_grad():
                _emb, gnn_pred = gnn(graph)
            r2 = {
                "rf": r2_score(y, rf.predict(graph)),
                "mlp": r2_score(y, mlp.predict(graph)),
                "gnn": r2_score(graph.net_delay[mask], gnn_pred.data[mask]),
            }
            for key, value in r2.items():
                scores[key].append(value)
            print(f"{name:<16}{split:<7}{r2['rf']:>9.4f}{r2['mlp']:>9.4f}"
                  f"{r2['gnn']:>9.4f}")
        averages[split] = {k: np.mean(v) for k, v in scores.items()}
    print("-" * len(header))
    for split, avg in averages.items():
        print(f"{'Avg. ' + split:<23}{avg['rf']:>9.4f}{avg['mlp']:>9.4f}"
              f"{avg['gnn']:>9.4f}")


if __name__ == "__main__":
    main()
