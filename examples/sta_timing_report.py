#!/usr/bin/env python
"""Use the substrate as a standalone timing signoff flow.

The reproduction's STA engine is a complete 4-corner timer: this example
runs several benchmark designs through place/route/STA and prints
signoff-style reports — WNS/TNS, violation counts, logic depth, and the
full critical-path trace for the worst design.  No machine learning
involved; this is the label generator the models are trained against.
"""

import numpy as np

from repro.liberty import make_sky130_like_library
from repro.netlist import build_benchmark
from repro.placement import place_design, total_hpwl
from repro.routing import route_design
from repro.sta import format_path_report, run_sta, timing_summary


def main():
    library = make_sky130_like_library()
    designs = ["spm", "zipdiv", "usb", "wbqspiflash", "xtea"]
    header = (f"{'design':<14}{'pins':>6}{'WL (um)':>10}{'T (ps)':>9}"
              f"{'setup WNS':>11}{'setup TNS':>11}{'viol':>6}"
              f"{'hold WNS':>10}{'depth':>7}")
    print(header)
    print("-" * len(header))

    worst = None
    for name in designs:
        design = build_benchmark(name, library)
        placement = place_design(design, seed=1)
        routing = route_design(design, placement)
        result = run_sta(design, placement, routing)
        s = timing_summary(result)
        print(f"{name:<14}{design.stats()['nodes']:>6}"
              f"{routing.total_wirelength:>10.0f}"
              f"{s['clock_period']:>9.0f}{s['setup_wns']:>11.1f}"
              f"{s['setup_tns']:>11.1f}"
              f"{s['setup_violations']:>4}/{s['num_endpoints']:<3}"
              f"{s['hold_wns']:>8.1f}{s['max_logic_level']:>7}")
        if worst is None or s["setup_wns"] < worst[1]:
            worst = (result, s["setup_wns"], name)

    result, wns, name = worst
    print(f"\nCritical path of the worst design ({name}, "
          f"WNS {wns:.1f} ps):\n")
    print(format_path_report(result, mode="setup"))

    print("\nHold analysis of the same design:")
    print(format_path_report(result, mode="hold"))


if __name__ == "__main__":
    main()
