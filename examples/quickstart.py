#!/usr/bin/env python
"""Quickstart: the full pre-routing slack prediction pipeline in one file.

1. Generate a synthetic benchmark netlist (stand-in for an OpenROAD-
   synthesised open-source design).
2. Place it, route it, run 4-corner STA to obtain ground-truth labels.
3. Extract the heterogeneous timing graph (paper Tables 2 & 3).
4. Train the timer-inspired GNN for a few epochs.
5. Predict arrival times and endpoint slack, report R2 and the speed-up
   over re-running the flow.

Runs in well under a minute on a laptop CPU.
"""

import time

import numpy as np

from repro.graphdata import TIME_SCALE, extract_graph
from repro.liberty import make_sky130_like_library
from repro.models import ModelConfig, TimingGNN
from repro.netlist import build_benchmark, validate_design
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import build_timing_graph, run_sta, timing_summary
from repro.training import TrainConfig, evaluate_timing_gnn, train_timing_gnn


def main():
    print("== 1. Netlist ==")
    library = make_sky130_like_library()
    design = build_benchmark("usb_cdc_core", library)
    validate_design(design)
    stats = design.stats()
    print(f"design {stats['name']}: {stats['nodes']} pins, "
          f"{stats['net_edges']} net arcs, {stats['cell_edges']} cell arcs, "
          f"{stats['endpoints']} endpoints")

    print("\n== 2. Place / route / STA (label generation) ==")
    placement = place_design(design, seed=1)
    t0 = time.perf_counter()
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph)
    flow_time = time.perf_counter() - t0
    summary = timing_summary(result)
    print(f"flow took {flow_time:.2f}s | clock {summary['clock_period']:.0f}"
          f" ps | setup WNS {summary['setup_wns']:.1f} ps "
          f"({summary['setup_violations']}/{summary['num_endpoints']} "
          f"endpoints violating)")

    print("\n== 3. Dataset extraction ==")
    hetero = extract_graph(graph, placement, result)
    print(f"node features {hetero.node_features.shape}, "
          f"cell-edge LUT features "
          f"{hetero.cell_valid.shape[1] + hetero.cell_indices.shape[1] + hetero.cell_values.shape[1]}"
          f" dims, {hetero.num_levels} topological levels")

    print("\n== 4. Train the timer-inspired GNN ==")
    model, history = train_timing_gnn(
        [hetero], ModelConfig.benchmark(),
        TrainConfig(epochs=30, lr=3e-3, log_every=10))
    print(f"loss {history.loss[0]:.1f} -> {history.loss[-1]:.3f} "
          f"in {history.wall_time:.1f}s")

    print("\n== 5. Predict ==")
    t0 = time.perf_counter()
    metrics = evaluate_timing_gnn(model, hetero)
    infer_time = time.perf_counter() - t0
    print(f"arrival R2 {metrics['arrival_r2']:+.3f} | "
          f"slack R2 {metrics['slack_r2']:+.3f} | "
          f"net delay R2 {metrics['net_delay_r2']:+.3f}")
    pred = model.predict(hetero)
    worst_true = float(np.nanmin(hetero.slack()[:, 2:4])) * TIME_SCALE
    from repro.training import slack_from_arrival
    worst_pred = float(np.nanmin(
        slack_from_arrival(hetero, pred.numpy_arrival())[:, 2:4])) * TIME_SCALE
    print(f"worst setup slack: true {worst_true:.1f} ps, "
          f"predicted {worst_pred:.1f} ps")
    print(f"inference {infer_time * 1000:.0f} ms vs flow "
          f"{flow_time:.2f} s -> {flow_time / infer_time:.0f}x faster")


if __name__ == "__main__":
    main()
