#!/usr/bin/env python
"""ECO flow: incremental STA driving gate sizing and buffer insertion.

Timing closure in practice: after placement, the worst paths are
repaired by upsizing cells (stronger drive into heavy loads) and
buffering long nets.  Every sizing trial here goes through the
incremental timer — only the affected cone is re-analysed — which is the
workflow that motivates even faster learned timing models.
"""

import time

from repro.liberty import make_sky130_like_library
from repro.netlist import build_benchmark
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import build_timing_graph, run_sta, timing_summary
from repro.sta.incremental import IncrementalTimer
from repro.sta.paths import enumerate_worst_paths, path_summary
from repro.opt import buffer_critical_nets, size_for_setup


def main():
    library = make_sky130_like_library()
    design = build_benchmark("salsa20", library, scale=0.6)
    placement = place_design(design, seed=1)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph)
    print(f"design {design.name}: {design.stats()['nodes']} pins, "
          f"clock {result.clock_period:.0f} ps")
    print(f"before ECO: setup WNS {result.wns('setup'):.1f} ps, "
          f"TNS {result.tns('setup'):.1f} ps")
    print("\nworst paths before:")
    print(path_summary(enumerate_worst_paths(result, k=5), graph))

    print("\n-- gate sizing (incremental STA per trial) --")
    timer = IncrementalTimer(design, placement, routing, graph, result)
    t0 = time.perf_counter()
    sizing = size_for_setup(timer, max_swaps=25, k_paths=10)
    dt = time.perf_counter() - t0
    print(f"{len(sizing.swaps)} swaps in {sizing.trials} trials "
          f"({dt:.1f}s total, {dt / max(sizing.trials, 1) * 1000:.0f} ms "
          f"per trial)")
    for name, old, new in sizing.swaps[:8]:
        print(f"  {name}: {old} -> {new}")
    print(f"WNS {sizing.initial_wns:.1f} -> {sizing.final_wns:.1f} ps")

    print("\n-- buffer insertion on critical nets --")
    result = timer.result
    result, buffering = buffer_critical_nets(design, placement, result,
                                             max_buffers=6)
    print(f"inserted {len(buffering.inserted)} buffers "
          f"({buffering.trials} trials)")
    print(f"WNS {buffering.initial_wns:.1f} -> {buffering.final_wns:.1f} ps")

    print("\nafter ECO:")
    for key, value in timing_summary(result).items():
        print(f"  {key}: {value:.1f}" if isinstance(value, float)
              else f"  {key}: {value}")


if __name__ == "__main__":
    main()
