"""Path enumeration and SDF/SPEF serialization."""

import numpy as np
import pytest

from repro.routing.spef import write_spef
from repro.sta.paths import enumerate_worst_paths, path_summary
from repro.sta.sdf import write_sdf


class TestPathEnumeration:
    def test_sorted_by_slack(self, sta_result):
        paths = enumerate_worst_paths(sta_result, k=8)
        slacks = [p.slack for p in paths]
        assert slacks == sorted(slacks)

    def test_worst_matches_wns(self, sta_result):
        paths = enumerate_worst_paths(sta_result, k=1)
        np.testing.assert_allclose(paths[0].slack, sta_result.wns("setup"))

    def test_one_path_per_endpoint(self, sta_result):
        paths = enumerate_worst_paths(sta_result, k=100)
        endpoints = [p.endpoint for p in paths]
        assert len(endpoints) == len(set(endpoints))
        assert len(paths) <= int(sta_result.endpoint_mask.sum())

    def test_paths_end_at_endpoints(self, sta_result):
        for path in enumerate_worst_paths(sta_result, k=5):
            assert sta_result.endpoint_mask[path.endpoint]
            assert path.nodes[-1][0] == path.endpoint

    def test_paths_start_at_sources(self, sta_result):
        graph = sta_result.graph
        for path in enumerate_worst_paths(sta_result, k=5):
            assert graph.fanin_degree(path.startpoint) == 0

    def test_path_nodes_follow_edges(self, sta_result):
        graph = sta_result.graph
        succ = set()
        for e in graph.net_edges + graph.cell_edges:
            succ.add((e.src, e.dst))
        for path in enumerate_worst_paths(sta_result, k=3):
            for (a, _ca), (b, _cb) in zip(path.nodes[:-1], path.nodes[1:]):
                assert (a, b) in succ

    def test_hold_mode(self, sta_result):
        paths = enumerate_worst_paths(sta_result, k=3, mode="hold")
        assert paths
        np.testing.assert_allclose(paths[0].slack, sta_result.wns("hold"))

    def test_k_truncates(self, sta_result):
        assert len(enumerate_worst_paths(sta_result, k=2)) == 2

    def test_summary_formats(self, sta_result):
        paths = enumerate_worst_paths(sta_result, k=4)
        text = path_summary(paths, sta_result.graph)
        assert "slack" in text
        assert len(text.splitlines()) == 5

    def test_pin_names(self, sta_result):
        paths = enumerate_worst_paths(sta_result, k=1)
        names = paths[0].pin_names(sta_result.graph)
        assert len(names) == paths[0].length


class TestSDF:
    def test_structure(self, sta_result, small_design):
        text = write_sdf(sta_result, design_name=small_design.name)
        assert text.startswith("(DELAYFILE")
        assert '(DESIGN "unit_small")' in text
        assert text.count("(IOPATH") == len(sta_result.graph.cell_edges)
        assert text.count("(INTERCONNECT") == len(sta_result.graph.net_edges)

    def test_triples_ordered(self, sta_result):
        import re
        text = write_sdf(sta_result)
        for triple in re.findall(r"\(([\d.]+):([\d.]+):([\d.]+)\)", text):
            lo, typ, hi = map(float, triple)
            assert lo <= typ <= hi

    def test_balanced_parens(self, sta_result):
        text = write_sdf(sta_result)
        assert text.count("(") == text.count(")")


class TestSPEF:
    def test_structure(self, small_design, routed):
        text = write_spef(routed, corner="late",
                          design_name=small_design.name)
        assert '*SPEF "IEEE 1481"' in text
        assert text.count("*D_NET") == len(small_design.nets)
        assert text.count("*END") == len(small_design.nets)

    def test_total_cap_matches_rc(self, small_design, routed):
        import re
        text = write_spef(routed, corner="late")
        for match in re.finditer(r"\*D_NET (\S+) ([\d.]+)", text):
            net_name, cap = match.group(1), float(match.group(2))
            np.testing.assert_allclose(
                cap, routed.nets[net_name].rc["late"].total_cap, atol=5e-4)

    def test_corners_differ(self, routed):
        early = write_spef(routed, corner="early")
        late = write_spef(routed, corner="late")
        assert early != late
