"""Experiment harness: tables/figures regenerate at a tiny scale.

These tests run the *entire* experiment pipeline (dataset, training,
evaluation) at REPRO_SCALE=0.25 with 2 epochs in a temporary cache, so
they validate wiring and output schemas, not model quality — quality is
the benchmarks' job.
"""

import os

import numpy as np
import pytest

import repro.experiments.common as common
from repro.experiments import (ascii_scatter, figure1_data, figure4_data,
                               format_table1, format_table4, format_table5,
                               table1_rows, table4_rows,
                               table5_accuracy_rows, table5_runtime_rows)
from repro.netlist import benchmark_names

# The full experiment pipeline (dataset regeneration + training) is the
# heaviest part of the suite; the CI smoke path deselects it.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module", autouse=True)
def tiny_experiment_env(tmp_path_factory):
    cache = tmp_path_factory.mktemp("exp_cache")
    old = {k: os.environ.get(k)
           for k in ("REPRO_SCALE", "REPRO_EPOCHS", "REPRO_CACHE_DIR")}
    os.environ["REPRO_SCALE"] = "0.25"
    os.environ["REPRO_EPOCHS"] = "2"
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    common._DATASETS.clear()
    common._MODELS.clear()
    yield
    for key, value in old.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    common._DATASETS.clear()
    common._MODELS.clear()


class TestTable1:
    def test_rows_cover_all_benchmarks(self):
        rows = table1_rows()
        names = {r["benchmark"] for r in rows}
        for name in benchmark_names():
            assert name in names
        assert "Total Train" in names and "Total Test" in names

    def test_totals_sum(self):
        rows = table1_rows()
        train_rows = [r for r in rows if r["split"] == "train"
                      and not r["benchmark"].startswith("Total")]
        total = next(r for r in rows if r["benchmark"] == "Total Train")
        assert total["nodes"] == sum(r["nodes"] for r in train_rows)

    def test_paper_columns_present(self):
        rows = table1_rows()
        assert rows[0]["paper_nodes"] == 55568      # blabla, from Table 1

    def test_format(self):
        text = format_table1()
        assert "blabla" in text and "Total Test" in text


class TestTable4:
    def test_rows_schema(self):
        rows = table4_rows(rf_estimators=3, mlp_epochs=3)
        assert len(rows) == 21 + 2
        for row in rows:
            for key in ("rf_r2", "mlp_r2", "gnn_r2"):
                assert np.isfinite(row[key]) or row[key] == -np.inf

    def test_format(self):
        text = format_table4(table4_rows(rf_estimators=3, mlp_epochs=3))
        assert "Avg. Test" in text


class TestTable5:
    def test_accuracy_rows_schema(self):
        rows = table5_accuracy_rows()
        assert len(rows) == 23
        for row in rows:
            for key in ("gcnii_4", "gcnii_8", "gcnii_16", "ours_full",
                        "ours_cell", "ours_net"):
                assert key in row
            assert row["openroad"] == 1.0

    def test_runtime_rows_schema(self):
        rows = table5_runtime_rows(repeats=1)
        for row in rows:
            assert row["flow_s"] > 0
            assert row["gnn_s"] > 0
            if not row["benchmark"].startswith("Avg."):
                # Average rows report mean-of-speedups, not the ratio of
                # means, so the identity only holds per design.
                assert row["speedup"] == pytest.approx(
                    row["flow_s"] / row["gnn_s"])
            assert row["flow_s"] == pytest.approx(
                row["routing_s"] + row["sta_s"])

    def test_format(self):
        text = format_table5(table5_accuracy_rows(),
                             table5_runtime_rows(repeats=1))
        assert "GCNII-16" in text and "Speedup" in text


class TestFigure4:
    def test_scatter_data(self):
        data = figure4_data("usbf_device")
        for mode in ("setup", "hold"):
            series = data[mode]
            assert len(series["true"]) == len(series["pred"])
            assert len(series["true"]) > 5
            assert np.isfinite(series["r2"])

    def test_ascii_scatter_renders(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=50)
        art = ascii_scatter(t, t + 0.1 * rng.normal(size=50), title="demo")
        assert "demo" in art
        assert "*" in art


class TestFigure1:
    def test_receptive_field_respects_k_hops(self):
        data = figure1_data("usb_cdc_core", layer_counts=(1, 2, 4))
        for row in data["rows"]:
            assert row["within_k_hops"], (
                "gradient escaped the K-hop neighbourhood")

    def test_coverage_grows_with_depth(self):
        data = figure1_data("usb_cdc_core", layer_counts=(1, 2, 4))
        covs = [r["coverage"] for r in data["rows"]]
        assert covs == sorted(covs)

    def test_shallow_gnn_cannot_see_whole_graph(self):
        data = figure1_data("usb_cdc_core", layer_counts=(2,))
        assert data["rows"][0]["coverage"] < 0.9


class TestModelCache:
    def test_trained_model_cached_on_disk(self):
        from repro.experiments import trained_timing_gnn
        common._MODELS.clear()
        model_a = trained_timing_gnn("full")
        cache_dir = os.environ["REPRO_CACHE_DIR"]
        cached = [f for f in os.listdir(cache_dir)
                  if f.startswith("model_timing_full")]
        assert cached
        common._MODELS.clear()
        model_b = trained_timing_gnn("full")
        for (na, pa), (nb, pb) in zip(model_a.named_parameters(),
                                      model_b.named_parameters()):
            assert na == nb
            np.testing.assert_allclose(pa.data, pb.data)


class TestReportGenerator:
    def test_markdown_generates(self):
        from repro.experiments.report import generate_experiments_markdown
        text = generate_experiments_markdown()
        assert "# EXPERIMENTS" in text
        assert "Table 4" in text and "Table 5" in text
        assert "Figure 4" in text and "Figure 1" in text
        # Measured numbers present (R2 columns rendered).
        assert "R2" in text or "r2" in text

    def test_paper_averages_match_paper_text(self):
        from repro.experiments.report import PAPER_AVERAGES
        # Spot values transcribed from the paper's tables.
        assert PAPER_AVERAGES["table4"]["rf_test"] == 0.9418
        assert PAPER_AVERAGES["table5"]["full_test"] == 0.8957
        assert PAPER_AVERAGES["table5"]["gcnii16_test"] == -1.5101
