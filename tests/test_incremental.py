"""Incremental STA: equivalence with full re-analysis under edits."""

import numpy as np
import pytest

from repro.liberty import make_sky130_like_library, sizing_alternatives
from repro.netlist import build_benchmark
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import build_timing_graph, run_sta
from repro.sta.incremental import IncrementalTimer


@pytest.fixture()
def timer_setup():
    library = make_sky130_like_library()
    design = build_benchmark("zipdiv", library)
    placement = place_design(design, seed=1)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph)
    clock = result.clock_period
    timer = IncrementalTimer(design, placement, routing, graph, result)
    return library, design, placement, routing, graph, result, clock, timer


def full_reference(design, placement, graph, clock):
    routing = route_design(design, placement)
    return run_sta(design, placement, routing, clock_period=clock,
                   graph=graph)


class TestMoveCell:
    def test_single_move_matches_full(self, timer_setup):
        (_lib, design, placement, _rt, graph, result, clock,
         timer) = timer_setup
        cell = design.combinational_cells[5]
        timer.move_cell(cell, [placement.die.width * 0.1,
                               placement.die.height * 0.9])
        reference = full_reference(design, placement, graph, clock)
        np.testing.assert_allclose(result.arrival, reference.arrival,
                                   atol=1e-6)
        np.testing.assert_allclose(result.slew, reference.slew, atol=1e-6)

    def test_random_edit_sequence_matches_full(self, timer_setup):
        (_lib, design, placement, _rt, graph, result, clock,
         timer) = timer_setup
        rng = np.random.default_rng(3)
        cells = design.combinational_cells
        for _ in range(6):
            cell = cells[int(rng.integers(len(cells)))]
            xy = rng.uniform([0, 0], [placement.die.width,
                                      placement.die.height])
            timer.move_cell(cell, xy)
        reference = full_reference(design, placement, graph, clock)
        np.testing.assert_allclose(result.arrival, reference.arrival,
                                   atol=1e-6)
        np.testing.assert_allclose(result.net_delay, reference.net_delay,
                                   atol=1e-6)

    def test_wns_tracks_full(self, timer_setup):
        (_lib, design, placement, _rt, graph, _res, clock,
         timer) = timer_setup
        cell = design.combinational_cells[0]
        timer.move_cell(cell, [0.0, 0.0])
        reference = full_reference(design, placement, graph, clock)
        np.testing.assert_allclose(timer.wns("setup"),
                                   reference.wns("setup"), atol=1e-6)

    def test_cone_smaller_than_graph(self, timer_setup):
        (_lib, design, placement, _rt, graph, _res, _clock,
         timer) = timer_setup
        cell = design.combinational_cells[-1]
        timer.move_cell(cell, [placement.die.width / 2,
                               placement.die.height / 2])
        assert 0 < timer.last_update_nodes < graph.num_nodes

    def test_noop_move_small_cone(self, timer_setup):
        """Moving a cell to (almost) the same spot converges instantly."""
        (_lib, design, placement, _rt, _graph, _res, _clock,
         timer) = timer_setup
        cell = design.combinational_cells[3]
        cell_index = design.cells.index(cell)
        xy = placement.cell_xy[cell_index].copy()
        timer.move_cell(cell, xy)
        # The seeds are revisited but nothing changes downstream.
        assert timer.last_update_nodes <= 25

    def test_required_refresh(self, timer_setup):
        (_lib, design, placement, _rt, graph, result, clock,
         timer) = timer_setup
        cell = design.combinational_cells[2]
        timer.move_cell(cell, [1.0, 1.0])
        timer.refresh_required()
        reference = full_reference(design, placement, graph, clock)
        np.testing.assert_allclose(result.required, reference.required,
                                   atol=1e-6, equal_nan=True)


class TestResizeCell:
    def test_resize_matches_full(self, timer_setup):
        (lib, design, placement, _rt, graph, result, clock,
         timer) = timer_setup
        cell = next(c for c in design.combinational_cells
                    if c.cell_type.name == "INV_X1")
        bigger = sizing_alternatives(lib, cell.cell_type)[1]
        timer.resize_cell(cell, bigger)
        reference = full_reference(design, placement, graph, clock)
        np.testing.assert_allclose(result.arrival, reference.arrival,
                                   atol=1e-6)

    def test_resize_then_revert_restores_timing(self, timer_setup):
        (lib, design, _pl, _rt, _graph, result, _clock,
         timer) = timer_setup
        before = result.arrival.copy()
        cell = next(c for c in design.combinational_cells
                    if c.cell_type.name == "INV_X1")
        variants = sizing_alternatives(lib, cell.cell_type)
        timer.resize_cell(cell, variants[1])
        assert not np.allclose(result.arrival, before)
        timer.resize_cell(cell, variants[0])
        np.testing.assert_allclose(result.arrival, before, atol=1e-6)

    def test_incompatible_resize_rejected(self, timer_setup):
        (lib, design, _pl, _rt, _graph, _res, _clock, timer) = timer_setup
        cell = next(c for c in design.combinational_cells
                    if c.cell_type.name == "INV_X1")
        with pytest.raises(ValueError):
            timer.resize_cell(cell, lib["NAND2_X1"])

    def test_upsizing_driver_helps_loaded_net(self, timer_setup):
        """Upsizing the driver of the most-loaded net cannot hurt the
        arrival at its sinks (stronger drive, same everything else)."""
        (lib, design, _pl, _rt, graph, result, _clock,
         timer) = timer_setup
        candidates = [c for c in design.combinational_cells
                      if c.cell_type.name == "INV_X1"
                      and c.pins["Y"].net is not None
                      and len(c.pins["Y"].net.sinks) >= 2]
        if not candidates:
            pytest.skip("no loaded INV_X1 in this design")
        cell = candidates[0]
        out_node = graph.node_of_pin[cell.pins["Y"].index]
        before = result.arrival[out_node, 2]
        timer.resize_cell(cell, lib["INV_X4"])
        after = result.arrival[out_node, 2]
        assert after <= before + 1e-6
