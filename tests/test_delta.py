"""Differential equivalence harness for incremental (delta) prediction.

The delta path — :class:`~repro.graphdata.patch.GraphPatcher` feature
patching, :class:`~repro.models.incremental.IncrementalForwardState`
cone-limited forwards, and the ``/predict/delta`` serving surface — is
only trustworthy if it is *indistinguishable* from throwing the graph
away and redoing everything.  Every test here states that contract as a
differential: apply edits incrementally, then rebuild the same design
from scratch (full re-route + full STA + full extraction + whole-graph
forward) and require equality — bit-for-bit on graph feature arrays,
1e-9 on model predictions — across edit kinds, kernel backends, edit
sequences (hypothesis), the in-process service, the pre-fork pool, and
the HTTP front-end.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import nn
from repro.graphdata import extract_graph
from repro.graphdata.hetero import HeteroGraph
from repro.graphdata.patch import EditError, parse_edits
from repro.liberty import make_sky130_like_library, sizing_alternatives
from repro.models import ModelConfig, NetEmbedding, TimingGNN
from repro.netlist import build_benchmark
from repro.placement import place_design
from repro.routing import route_design
from repro.serving import (DeltaSession, ModelRegistry,
                           PooledPredictionService, PredictionService,
                           RequestError, ServingServer)
from repro.serving.registry import ModelEntry
from repro.serving.service import _timing_payload
from repro.sta import build_timing_graph, run_sta
from repro.sta.incremental import IncrementalTimer
from repro.sta.paths import enumerate_worst_paths

SCALE = 0.15
DESIGN = "spm"
RTOL = 1e-9
ATOL = 1e-9

# Label arrays carry STA results: the incremental timer recomputes them
# along cones, so they are compared at tolerance; everything else —
# topology and features — must be bit-identical to a re-extraction.
_LABEL_FIELDS = ("net_delay", "arrival", "slew", "required",
                 "cell_arc_delay")


# -- fixtures ------------------------------------------------------------------
@pytest.fixture(scope="module")
def toy_model():
    return TimingGNN(ModelConfig.benchmark())


def _toy_registry(toy_model):
    registry = ModelRegistry(scale=SCALE, names=[])
    registry.register("toy", lambda: ModelEntry(
        name="toy", kind="timing", version="vtest", model=toy_model,
        loaded_at=time.time(), load_seconds=0.0))
    registry.register("toy-net", lambda: ModelEntry(
        name="toy-net", kind="netdelay", version="vtest",
        model=NetEmbedding(ModelConfig.benchmark()),
        loaded_at=time.time(), load_seconds=0.0))
    return registry


@pytest.fixture()
def service(toy_model):
    svc = PredictionService(registry=_toy_registry(toy_model), scale=SCALE)
    yield svc
    svc.close()


def _entry(toy_model):
    return ModelEntry(name="toy", kind="timing", version="vtest",
                      model=toy_model, loaded_at=time.time(),
                      load_seconds=0.0)


# -- the from-scratch reference ------------------------------------------------
def full_reextract(patcher):
    """Rebuild the session's edited design with the batch pipeline.

    This is the independent ground truth the incremental path must
    reproduce: a full re-route, a full STA from a cold start, and a
    whole-graph feature extraction of the *same* (mutated) design.
    """
    routing = route_design(patcher.design, patcher.placement)
    graph = build_timing_graph(patcher.design)
    result = run_sta(patcher.design, patcher.placement, routing,
                     clock_period=patcher.clock_period, graph=graph)
    return extract_graph(graph, patcher.placement, result,
                         split=patcher.hetero.split)


def assert_graph_matches(hetero, ref):
    """Patched graph == re-extracted graph: features bitwise, labels 1e-9."""
    assert hetero.num_nodes == ref.num_nodes
    for name in HeteroGraph._ARRAY_FIELDS:
        ours, theirs = getattr(hetero, name), getattr(ref, name)
        if name in _LABEL_FIELDS:
            np.testing.assert_allclose(ours, theirs, rtol=0, atol=ATOL,
                                       equal_nan=True, err_msg=name)
        else:
            np.testing.assert_array_equal(ours, theirs, err_msg=name)


def assert_predictions_match(state, ref_hetero, model):
    """Incremental head values == whole-graph forward on the reference."""
    with nn.no_grad():
        ref_arrival = model.predict(ref_hetero).numpy_arrival()
    np.testing.assert_allclose(state.arrival, ref_arrival,
                               rtol=RTOL, atol=ATOL)


# -- edit construction against a live session ---------------------------------
def _move_edit(patcher, frac=(0.25, 0.75), idx=5):
    cells = patcher.design.combinational_cells
    die = patcher.placement.die
    return {"op": "move_cell", "cell": cells[idx % len(cells)].name,
            "x": float(die.width * frac[0]),
            "y": float(die.height * frac[1])}


def _resize_edit(patcher):
    library = patcher.design.library
    for cell in patcher.design.combinational_cells:
        alts = sizing_alternatives(library, cell.cell_type)
        others = [a for a in alts if a.name != cell.cell_type.name]
        if others:
            return {"op": "resize_cell", "cell": cell.name,
                    "cell_type": others[-1].name}
    pytest.skip("no resizable cell in benchmark")


def _buffer_candidates(patcher):
    for net in patcher.design.nets:
        if net.driver is None or net.driver.is_clock:
            continue
        sinks = [s for s in net.sinks
                 if s.cell is not None and not s.is_clock]
        if len(net.sinks) >= 2 and sinks:
            yield net, sinks[0]


def _buffer_edit(patcher, name="tbuf0"):
    net, sink = next(iter(_buffer_candidates(patcher)))
    return {"op": "insert_buffer", "net": net.name, "sink": sink.name,
            "name": name, "new_net": f"{name}_net"}


# -- edit parsing --------------------------------------------------------------
class TestParseEdits:
    def test_normalizes_every_edit_kind(self):
        edits = parse_edits([
            {"op": "move_cell", "cell": "u1", "x": 1, "y": "2.5"},
            {"op": "resize_cell", "cell": "u1", "cell_type": "INV_X4"},
            {"op": "insert_buffer", "net": "n1", "sink": "u2/A"},
            {"op": "remove_buffer", "name": "b0"},
        ])
        assert edits[0] == {"op": "move_cell", "cell": "u1",
                            "x": 1.0, "y": 2.5}
        assert edits[1]["cell_type"] == "INV_X4"
        assert edits[2]["buffer_cell"] and edits[2]["name"] is None
        assert edits[3] == {"op": "remove_buffer", "name": "b0"}

    def test_rejects_unknown_op_and_missing_fields(self):
        with pytest.raises(EditError):
            parse_edits([{"op": "explode"}])
        with pytest.raises(EditError):
            parse_edits([{"op": "move_cell", "cell": "u1", "x": 0}])
        with pytest.raises(EditError):
            parse_edits(["not a dict"])


# -- edit-kind differentials, both kernel backends -----------------------------
class TestEditDifferential:
    """Every edit kind: incremental session == full rebuild, at 1e-9."""

    @pytest.mark.parametrize("backend", ["fused", "naive"])
    def test_every_edit_kind_matches_full_reextract(self, toy_model,
                                                    backend):
        with nn.use_kernels(backend):
            session = DeltaSession(DESIGN, 1, SCALE, key="diff")
            entry = _entry(toy_model)
            edits = [
                _move_edit(session.patcher),
                _resize_edit(session.patcher),
                _buffer_edit(session.patcher, name="tbuf0"),
                {"op": "remove_buffer", "name": "tbuf0"},
            ]
            for i, edit in enumerate(edits):
                session.apply(parse_edits([edit]))
                state, stats = session.refresh(entry)
                assert session.version == i + 1
                session.materialize()
                ref = full_reextract(session.patcher)
                assert_graph_matches(session.hetero, ref)
                assert_predictions_match(state, ref, toy_model)

    def test_cone_refresh_is_actually_partial(self, toy_model):
        """A single move re-executes a cone, not the whole graph."""
        session = DeltaSession(DESIGN, 1, SCALE, key="cone")
        entry = _entry(toy_model)
        _, stats = session.refresh(entry)
        assert stats["full"]
        session.apply(parse_edits([_move_edit(session.patcher)]))
        _, stats = session.refresh(entry)
        assert not stats["full"]
        assert 0 < stats["dirty_nodes"] < session.hetero.num_nodes

    def test_structural_edit_forces_full_refresh(self, toy_model):
        session = DeltaSession(DESIGN, 1, SCALE, key="full")
        entry = _entry(toy_model)
        session.refresh(entry)
        session.apply(parse_edits([_buffer_edit(session.patcher,
                                                name="tbuf1")]))
        _, stats = session.refresh(entry)
        assert stats["full"]


# -- random edit sequences (hypothesis) ----------------------------------------
def _concretize(patcher, op, rng, stack, i):
    """Turn an abstract op into a valid edit for the *current* design."""
    if op == "remove" and not stack:
        op = "move"
    if op == "insert":
        candidates = list(_buffer_candidates(patcher))
        if not candidates:
            op = "move"
    if op == "move":
        cells = patcher.design.combinational_cells
        cell = cells[int(rng.integers(len(cells)))]
        die = patcher.placement.die
        return {"op": "move_cell", "cell": cell.name,
                "x": float(rng.uniform(0, die.width)),
                "y": float(rng.uniform(0, die.height))}
    if op == "resize":
        library = patcher.design.library
        cells = patcher.design.combinational_cells
        order = rng.permutation(len(cells))
        for j in order:
            cell = cells[int(j)]
            others = [a for a in
                      sizing_alternatives(library, cell.cell_type)
                      if a.name != cell.cell_type.name]
            if others:
                pick = others[int(rng.integers(len(others)))]
                return {"op": "resize_cell", "cell": cell.name,
                        "cell_type": pick.name}
        return _concretize(patcher, "move", rng, stack, i)
    if op == "insert":
        net, sink = candidates[int(rng.integers(len(candidates)))]
        name = f"hbuf{i}"
        stack.append(name)
        return {"op": "insert_buffer", "net": net.name, "sink": sink.name,
                "name": name, "new_net": f"{name}_net"}
    return {"op": "remove_buffer", "name": stack.pop()}


class TestDeltaSequenceProperty:
    @settings(max_examples=3, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(ops=st.lists(st.sampled_from(["move", "move", "resize",
                                         "insert", "remove"]),
                        min_size=1, max_size=20),
           seed=st.integers(0, 2**31 - 1))
    def test_incremental_state_equals_from_scratch(self, toy_model, ops,
                                                   seed):
        """1-20 random mixed deltas: the incrementally maintained session
        equals (a) a fresh session replaying the same edits with a full
        forward and (b) a from-scratch batch re-extraction."""
        rng = np.random.default_rng(seed)
        session = DeltaSession(DESIGN, 1, SCALE, key="prop")
        entry = _entry(toy_model)
        session.refresh(entry)
        stack, applied = [], []
        for i, op in enumerate(ops):
            edit = _concretize(session.patcher, op, rng, stack, i)
            applied.append(edit)
            session.apply(parse_edits([edit]))
            session.refresh(entry)        # refresh per edit: cones chain
        state, _ = session.refresh(entry)
        session.materialize()

        replay = DeltaSession(DESIGN, 1, SCALE, key="prop-replay")
        replay.apply(parse_edits(applied))
        rstate, rstats = replay.refresh(_entry(toy_model))
        assert rstats["full"]             # fresh state: whole-graph pass
        replay.materialize()

        assert session.version == replay.version == len(applied)
        for name in HeteroGraph._ARRAY_FIELDS:
            np.testing.assert_array_equal(
                getattr(session.hetero, name),
                getattr(replay.hetero, name), err_msg=name)
        np.testing.assert_allclose(state.arrival, rstate.arrival,
                                   rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(state.slew, rstate.slew,
                                   rtol=RTOL, atol=ATOL)
        ref = full_reextract(session.patcher)
        assert_graph_matches(session.hetero, ref)
        assert_predictions_match(state, ref, toy_model)


# -- the serving surface -------------------------------------------------------
class TestServiceDelta:
    def test_empty_delta_equals_full_predict(self, service):
        delta = service.predict_delta(
            {"design": DESIGN, "model": "toy", "edits": []})
        full = service.predict({"design": DESIGN, "model": "toy"})
        assert delta.graph_version == 0 and delta.num_edits == 0
        assert delta.prediction == full.prediction
        assert not delta.degraded

    def test_netdelay_model_delta(self, service):
        delta = service.predict_delta(
            {"design": DESIGN, "model": "toy-net", "edits": []})
        full = service.predict({"design": DESIGN, "model": "toy-net"})
        assert delta.prediction == full.prediction

    def test_edit_matches_independent_reextract(self, service, toy_model):
        session = service.delta_session(DESIGN)
        edit = _move_edit(session.patcher)
        response = service.predict_delta(
            {"design": DESIGN, "model": "toy", "edits": [edit]})
        assert response.graph_version == 1 and response.num_edits == 1
        ref = full_reextract(session.patcher)
        with nn.no_grad():
            arrival = toy_model.predict(ref).numpy_arrival()
        assert response.prediction == _timing_payload(ref, arrival, False)

    def test_bad_edit_is_a_request_error(self, service):
        with pytest.raises(RequestError) as err:
            service.predict_delta({"design": DESIGN, "model": "toy",
                                   "edits": [{"op": "move_cell",
                                              "cell": "no-such-cell",
                                              "x": 0.0, "y": 0.0}]})
        assert err.value.status == 400
        assert "session at version" in str(err.value)

    def test_unknown_model_404(self, service):
        with pytest.raises(RequestError) as err:
            service.predict_delta({"design": DESIGN, "model": "nope",
                                   "edits": []})
        assert err.value.status == 404

    def test_delta_metrics_exported(self, service):
        service.predict_delta({"design": DESIGN, "model": "toy",
                               "edits": [_move_edit(
                                   service.delta_session(DESIGN).patcher)]})
        text = service.metrics_text()
        assert "repro_delta_requests_total" in text
        assert "repro_delta_edits_total" in text
        assert "repro_delta_dirty_nodes" in text


class TestPayloadCacheVersioning:
    def test_cache_respects_graph_version(self, service):
        """Regression: cached payloads are keyed by graph version, so an
        edit can never be answered with a stale pre-edit prediction, and
        the base (non-delta) entry is never polluted by a session."""
        base = service.predict({"design": DESIGN, "model": "toy"})
        first = service.predict_delta(
            {"design": DESIGN, "model": "toy", "edits": []})
        again = service.predict_delta(
            {"design": DESIGN, "model": "toy", "edits": []})
        assert not first.cache_hit and again.cache_hit
        assert again.prediction == first.prediction

        edit = _move_edit(service.delta_session(DESIGN).patcher)
        moved = service.predict_delta(
            {"design": DESIGN, "model": "toy", "edits": [edit]})
        assert moved.graph_version == 1
        assert not moved.cache_hit
        assert moved.prediction != first.prediction

        cached = service.predict_delta(
            {"design": DESIGN, "model": "toy", "edits": []})
        assert cached.cache_hit and cached.graph_version == 1
        assert cached.prediction == moved.prediction

        rebase = service.predict({"design": DESIGN, "model": "toy"})
        assert rebase.cache_hit
        assert rebase.prediction == base.prediction


# -- service-driven optimizer loops (opt.use_service) --------------------------
class TestServiceDrivenOpt:
    def test_sizing_keeps_local_and_served_designs_in_sync(self, service):
        from repro.flow import Flow
        from repro.opt import size_for_setup
        from repro.serving import DeltaClient
        flow = Flow.from_benchmark(DESIGN, scale=SCALE).place(seed=1)
        timer = flow.incremental_timer(tolerance=0.0)
        client = DeltaClient(service, DESIGN, model="toy")
        outcome = size_for_setup(timer, max_swaps=3, k_paths=4,
                                 max_rounds=1, use_service=client)
        assert outcome.predicted_wns == pytest.approx(
            client.wns_setup_ps())
        session = service.delta_session(DESIGN)
        rejects = outcome.trials - len(outcome.swaps)
        assert session.version == outcome.trials + rejects
        for ours, theirs in zip(flow.design.cells,
                                session.patcher.design.cells):
            assert ours.name == theirs.name
            assert ours.cell_type.name == theirs.cell_type.name

    def test_buffering_keeps_local_and_served_designs_in_sync(self,
                                                              service):
        from repro.flow import Flow
        from repro.opt import buffer_critical_nets
        from repro.serving import DeltaClient
        flow = Flow.from_benchmark(DESIGN, scale=SCALE).place(seed=1)
        flow.extract()
        client = DeltaClient(service, DESIGN, model="toy")
        _result, outcome = buffer_critical_nets(
            flow.design, flow.placement, flow.result, max_buffers=2,
            use_service=client)
        assert outcome.predicted_wns == pytest.approx(
            client.wns_setup_ps())
        session = service.delta_session(DESIGN)
        rejects = outcome.trials - len(outcome.inserted)
        assert session.version == outcome.trials + rejects
        assert len(session.patcher.design.cells) == len(flow.design.cells)
        assert [c.name for c in session.patcher.design.cells] == \
            [c.name for c in flow.design.cells]


# -- through the pre-fork pool -------------------------------------------------
class TestPooledDelta:
    @pytest.mark.parametrize("backend", ["fused", "naive"])
    def test_pooled_matches_in_process(self, toy_model, backend):
        pooled = PooledPredictionService(
            registry=_toy_registry(toy_model), scale=SCALE, workers=2,
            kernels=backend)
        reference = PredictionService(registry=_toy_registry(toy_model),
                                      scale=SCALE)
        try:
            bodies = [{"design": DESIGN, "model": "toy", "edits": []}]
            edit = _move_edit(reference.delta_session(DESIGN).patcher)
            bodies.append({"design": DESIGN, "model": "toy",
                           "edits": [edit], "no_cache": True})
            for body in bodies:
                ours = pooled.predict_delta(dict(body))
                theirs = reference.predict_delta(dict(body))
                assert ours.graph_version == theirs.graph_version
                assert not ours.degraded
                for key, value in theirs.prediction.items():
                    if isinstance(value, float):
                        assert ours.prediction[key] == \
                            pytest.approx(value, abs=1e-6), key
                    else:
                        assert ours.prediction[key] == value, key
            completed = sum(w["completed"] for w in
                            pooled.router.stats()["per_worker"])
            assert completed >= 1      # the pool actually served deltas
        finally:
            pooled.close()
            reference.close()


# -- worker loop MSG_DELTA handling, driven in-process -------------------------
class TestWorkerDeltaInProcess:
    """Drive PoolWorker's delta branches in this process over plain
    queues (the TestPoolWorker idiom): forked worker processes are
    invisible to the coverage tracer, and the protocol error paths —
    out-of-sync sessions, unpublished models, expired deadlines — are
    directly assertable here."""

    def _drain(self, qout):
        import queue
        out = []
        while True:
            try:
                out.append(qout.get_nowait())
            except queue.Empty:
                return out

    def test_delta_protocol_branches(self, toy_model):
        import os
        import queue

        from repro.parallel import ShmArena
        from repro.serving.pool.worker import (MSG_DELTA, MSG_MODEL,
                                               MSG_STOP, PoolWorker,
                                               R_ERR, R_EXPIRED, R_OK)
        arena = ShmArena(prefix=f"rptest{os.getpid():x}d1")
        params = {n: p.data for n, p in toy_model.named_parameters()}
        model_seg = arena.publish("model", params)
        model_spec = {"kind": "timing", "cls": "TimingGNN",
                      "config": toy_model.cfg}

        local = DeltaSession(DESIGN, 1, SCALE, key="wk")
        entry = _entry(toy_model)
        edit1 = parse_edits([_move_edit(local.patcher, idx=3)])
        edit2 = parse_edits([_move_edit(local.patcher, idx=9,
                                        frac=(0.6, 0.3))])
        spec = {"design": DESIGN, "seed": 1, "scale": SCALE}
        ctx = ("feedfacecafebeef", "1234abcd5678ef00", time.time())

        qin, qout = queue.Queue(), queue.Queue()
        qin.put((MSG_MODEL, "toy", "v1", model_seg, model_spec))
        qin.put((MSG_DELTA, 1, "toy", "wk", dict(spec, version=1),
                 edit1, False, None, ctx))
        qin.put((MSG_DELTA, 2, "toy", "wk", dict(spec, version=2),
                 edit2, False, None))
        qin.put((MSG_DELTA, 3, "toy", "wk", dict(spec, version=99),
                 [], False, None))
        qin.put((MSG_DELTA, 4, "ghost", "wk", dict(spec, version=0),
                 [], False, None))
        qin.put((MSG_DELTA, 5, "toy", "wk", dict(spec, version=0),
                 [], False, time.time() - 1.0))
        qin.put((MSG_STOP,))
        worker = PoolWorker(0, qin, qout, window_s=0.001, poll_s=0.01)
        worker.serve()
        arena.close_all()
        responses = self._drain(qout)

        oks = {r[1]: r for r in responses if r[0] == R_OK}
        errs = {r[1]: r for r in responses if r[0] == R_ERR}
        assert set(oks) == {1, 2} and set(errs) == {3, 4}
        assert (R_EXPIRED, 5) in responses

        # Payload parity with an in-process session replaying the same
        # edit stream (both sessions are deterministic rebuilds).
        local.apply(edit1)
        state, _ = local.refresh(entry)
        expected1 = _timing_payload(local.hetero, state.arrival, False)
        assert oks[1][2] == expected1
        local.apply(edit2)
        state, _ = local.refresh(entry)
        assert oks[2][2] == _timing_payload(local.hetero, state.arrival,
                                            False)

        # Traced request: root span + forward, plus the session build
        # (request 1 created the worker-local session).
        spans = oks[1][4]
        names = [s["name"] for s in spans]
        assert names[0] == "worker.predict_delta"
        assert spans[0]["trace_id"] == "feedfacecafebeef"
        assert "worker.delta_forward" in names
        assert "worker.session_build" in names
        assert oks[2][4] == []          # untraced 8-tuple: no spans
        assert "out of sync" in errs[3][2]
        assert "not published" in errs[4][2]
        # The out-of-sync request dropped the cached session.
        assert worker._sessions == {}


# -- HTTP front-end ------------------------------------------------------------
def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHTTPDelta:
    @pytest.fixture()
    def server(self, toy_model):
        svc = PredictionService(registry=_toy_registry(toy_model),
                                scale=SCALE)
        with ServingServer(svc) as srv:
            yield srv

    def test_delta_endpoint_roundtrip(self, server):
        status, body = _post(server.url + "/predict/delta",
                             {"design": DESIGN, "model": "toy",
                              "edits": []})
        assert status == 200
        assert body["graph_version"] == 0 and body["num_edits"] == 0
        assert body["prediction"]["num_endpoints"] > 0
        assert body["trace_id"]

        status, full = _post(server.url + "/predict",
                             {"design": DESIGN, "model": "toy"})
        assert full["prediction"] == body["prediction"]

    def test_delta_endpoint_applies_edits(self, server, toy_model):
        session = server.service.delta_session(DESIGN)
        edit = _move_edit(session.patcher)
        status, body = _post(server.url + "/predict/delta",
                             {"design": DESIGN, "model": "toy",
                              "edits": [edit]})
        assert status == 200
        assert body["graph_version"] == 1 and body["num_edits"] == 1
        ref = full_reextract(session.patcher)
        with nn.no_grad():
            arrival = toy_model.predict(ref).numpy_arrival()
        assert body["prediction"] == _timing_payload(ref, arrival, False)

    def test_delta_endpoint_4xx(self, server):
        status, body = _post(server.url + "/predict/delta",
                             {"model": "toy", "edits": []})
        assert status == 400 and "error" in body
        status, _ = _post(server.url + "/predict/delta",
                          {"design": DESIGN, "model": "toy",
                           "edits": [{"op": "explode"}]})
        assert status == 400


# -- IncrementalTimer edge cases (satellite: sta substrate) --------------------
@pytest.fixture()
def timer_setup():
    library = make_sky130_like_library()
    design = build_benchmark("zipdiv", library)
    placement = place_design(design, seed=1)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph)
    timer = IncrementalTimer(design, placement, routing, graph, result)
    return design, placement, graph, result, result.clock_period, timer


def _full_reference(design, placement, graph, clock):
    routing = route_design(design, placement)
    return run_sta(design, placement, routing, clock_period=clock,
                   graph=graph)


def _assert_timer_matches(timer, result, reference):
    timer.refresh_required()
    np.testing.assert_allclose(result.arrival, reference.arrival,
                               atol=1e-6)
    np.testing.assert_allclose(result.slew, reference.slew, atol=1e-6)
    np.testing.assert_allclose(result.required, reference.required,
                               atol=1e-6, equal_nan=True)


class TestTimerEdgeCases:
    def test_move_cell_in_primary_input_cone(self, timer_setup):
        """A cell fed directly by a PI: the cone starts at level 0."""
        design, placement, graph, result, clock, timer = timer_setup
        cell = next(
            c for c in design.combinational_cells
            if any(p.direction == "input" and p.net is not None
                   and p.net.driver is not None and p.net.driver.is_port
                   and not p.net.driver.is_clock
                   for p in c.pins.values()))
        timer.move_cell(cell, [placement.die.width * 0.05,
                               placement.die.height * 0.05])
        reference = _full_reference(design, placement, graph, clock)
        _assert_timer_matches(timer, result, reference)

    def test_move_worst_endpoint_driver(self, timer_setup):
        """Editing the critical path's endpoint updates the WNS."""
        design, placement, graph, result, clock, timer = timer_setup
        path = enumerate_worst_paths(result, k=1, mode="setup")[0]
        pin = graph.node_pins[path.endpoint]
        cell = pin.cell if pin.cell is not None else pin.net.driver.cell
        assert cell is not None
        timer.move_cell(cell, [placement.die.width * 0.95,
                               placement.die.height * 0.95])
        reference = _full_reference(design, placement, graph, clock)
        _assert_timer_matches(timer, result, reference)
        assert timer.wns("setup") == pytest.approx(
            reference.wns("setup"), abs=1e-6)

    def test_back_to_back_overlapping_cones(self, timer_setup):
        """Two cells on the same path, edited alternately: the second
        cone overlaps the first and must not resurrect stale state."""
        design, placement, graph, result, clock, timer = timer_setup
        first = next(
            c for c in design.combinational_cells
            if any(p.direction == "output" and p.net is not None
                   and any(s.cell is not None and not s.cell.is_sequential
                           for s in p.net.sinks)
                   for p in c.pins.values()))
        out = next(p for p in first.pins.values()
                   if p.direction == "output" and p.net is not None)
        second = next(s.cell for s in out.net.sinks
                      if s.cell is not None and not s.cell.is_sequential)
        die = placement.die
        timer.move_cell(first, [die.width * 0.2, die.height * 0.2])
        timer.move_cell(second, [die.width * 0.8, die.height * 0.8])
        timer.move_cell(first, [die.width * 0.5, die.height * 0.5])
        reference = _full_reference(design, placement, graph, clock)
        _assert_timer_matches(timer, result, reference)

    def test_move_last_level_cell_empty_downstream_cone(self, timer_setup):
        """A cell whose fanout is all endpoints: the downstream cone is
        empty, so the update must terminate after the touched nodes."""
        design, placement, graph, result, clock, timer = timer_setup
        cell = next(
            c for c in design.combinational_cells
            if all(s.is_port or (s.cell is not None
                                 and s.cell.is_sequential
                                 and not s.is_clock)
                   for p in c.pins.values()
                   if p.direction == "output" and p.net is not None
                   for s in p.net.sinks))
        timer.move_cell(cell, [placement.die.width * 0.4,
                               placement.die.height * 0.6])
        assert 0 < timer.last_update_nodes < graph.num_nodes
        reference = _full_reference(design, placement, graph, clock)
        _assert_timer_matches(timer, result, reference)
