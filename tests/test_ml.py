"""Classical ML: decision trees, random forest, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (DecisionTreeRegressor, RandomForestRegressor,
                      mae, pearson_correlation, r2_score, rmse)


def make_regression(n=400, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 4))
    y = (np.sin(3 * x[:, 0]) + x[:, 1] ** 2 - 0.5 * x[:, 2] +
         noise * rng.normal(size=n))
    return x, y


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        x = np.linspace(0, 1, 200)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=4, n_thresholds=32,
                                     min_samples_leaf=1).fit(x, y)
        pred = tree.predict(x)
        # Quantile-candidate splits land within one grid cell of the
        # step, so a handful of boundary samples may be off.
        assert r2_score(y, pred) > 0.95

    def test_nonlinear_regression(self):
        x, y = make_regression()
        tree = DecisionTreeRegressor(max_depth=10,
                                     min_samples_leaf=2).fit(x, y)
        assert r2_score(y, tree.predict(x)) > 0.9

    def test_depth_limit(self):
        x, y = make_regression()
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_deeper_fits_better(self):
        x, y = make_regression()
        shallow = DecisionTreeRegressor(max_depth=2).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=10).fit(x, y)
        assert r2_score(y, deep.predict(x)) > r2_score(y, shallow.predict(x))

    def test_multi_output(self):
        x, y1 = make_regression(seed=1)
        _x, y2 = make_regression(seed=1)
        y = np.stack([y1, 2 * y2], axis=1)
        tree = DecisionTreeRegressor(max_depth=8).fit(x, y)
        pred = tree.predict(x)
        assert pred.shape == (len(x), 2)
        assert r2_score(y, pred) > 0.8

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(50, 3))
        y = np.full(50, 7.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.depth() == 0
        np.testing.assert_allclose(tree.predict(x), 7.0)

    def test_min_samples_leaf(self):
        x, y = make_regression(n=40)
        tree = DecisionTreeRegressor(max_depth=20,
                                     min_samples_leaf=10).fit(x, y)

        def leaf_sizes(node, x_subset, y_subset):
            if node.is_leaf:
                return [len(x_subset)]
            mask = x_subset[:, node.feature] <= node.threshold
            return (leaf_sizes(node.left, x_subset[mask], y_subset[mask]) +
                    leaf_sizes(node.right, x_subset[~mask], y_subset[~mask]))

        assert min(leaf_sizes(tree.root_, x, y)) >= 10

    def test_1d_y_accepted(self):
        x, y = make_regression(n=60)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.predict(x).shape == (60, 1)


class TestRandomForest:
    def test_outperforms_single_tree_on_holdout(self):
        x, y = make_regression(n=600, noise=0.25)
        x_train, y_train = x[:400], y[:400]
        x_test, y_test = x[400:], y[400:]
        tree = DecisionTreeRegressor(max_depth=12,
                                     min_samples_leaf=2).fit(x_train, y_train)
        forest = RandomForestRegressor(n_estimators=20,
                                       max_depth=12).fit(x_train, y_train)
        r2_tree = r2_score(y_test, tree.predict(x_test))
        r2_forest = r2_score(y_test, forest.predict(x_test))
        assert r2_forest >= r2_tree - 0.02

    def test_deterministic_given_seed(self):
        x, y = make_regression(n=120)
        a = RandomForestRegressor(n_estimators=5, seed=3).fit(x, y)
        b = RandomForestRegressor(n_estimators=5, seed=3).fit(x, y)
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((2, 3)))

    def test_reasonable_accuracy(self):
        x, y = make_regression(n=500)
        forest = RandomForestRegressor(n_estimators=15, max_depth=10)
        forest.fit(x[:350], y[:350])
        assert r2_score(y[350:], forest.predict(x[350:])) > 0.75


class TestMetrics:
    def test_r2_perfect(self):
        y = np.asarray([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_r2_mean_prediction_is_zero(self):
        y = np.asarray([1.0, 2.0, 3.0])
        np.testing.assert_allclose(r2_score(y, np.full(3, 2.0)), 0.0)

    def test_r2_can_be_negative(self):
        y = np.asarray([1.0, 2.0, 3.0])
        assert r2_score(y, np.asarray([3.0, 2.0, 1.0])) < 0

    def test_r2_ignores_nan(self):
        y = np.asarray([1.0, np.nan, 3.0])
        p = np.asarray([1.0, 99.0, 3.0])
        assert r2_score(y, p) == 1.0

    def test_r2_scale_invariant(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=100)
        p = y + 0.1 * rng.normal(size=100)
        np.testing.assert_allclose(r2_score(y, p),
                                   r2_score(10 * y, 10 * p), rtol=1e-9)

    def test_mae_rmse(self):
        y = np.asarray([0.0, 0.0])
        p = np.asarray([3.0, -4.0])
        np.testing.assert_allclose(mae(y, p), 3.5)
        np.testing.assert_allclose(rmse(y, p), np.sqrt(12.5))

    def test_pearson_perfect(self):
        y = np.asarray([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(pearson_correlation(y, 2 * y + 1), 1.0)

    def test_pearson_antiperfect(self):
        y = np.asarray([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(pearson_correlation(y, -y), -1.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(3, 50))
    def test_r2_never_above_one(self, seed, n):
        rng = np.random.default_rng(seed)
        y = rng.normal(size=n)
        p = rng.normal(size=n)
        assert r2_score(y, p) <= 1.0 + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_pearson_bounded(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(size=30)
        p = rng.normal(size=30)
        r = pearson_correlation(y, p)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
