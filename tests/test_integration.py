"""End-to-end integration: full pipeline on fresh designs, cross-layer
consistency between the STA labels and the extracted dataset."""

import numpy as np
import pytest

from repro.graphdata import TIME_SCALE, extract_graph, generate_design
from repro.liberty import make_sky130_like_library
from repro.models import ModelConfig, TimingGNN
from repro.netlist import generate_circuit, validate_design
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import LATE_COLS, build_timing_graph, run_sta
from repro.training import TrainConfig, train_timing_gnn, evaluate_timing_gnn


class TestFullFlow:
    def test_generate_design_record(self):
        record = generate_design("spm", "test")
        graph = record.graph
        assert graph.name == "spm"
        assert graph.split == "test"
        assert record.routing_time > 0
        assert record.sta_time > 0
        assert graph.num_nodes > 100

    def test_labels_match_sta(self, small_design, placed, routed,
                              timing_graph, sta_result, hetero):
        np.testing.assert_allclose(hetero.arrival * TIME_SCALE,
                                   sta_result.arrival)
        np.testing.assert_allclose(hetero.slew * TIME_SCALE,
                                   sta_result.slew)
        np.testing.assert_allclose(hetero.cell_arc_delay * TIME_SCALE,
                                   sta_result.cell_arc_delay)
        np.testing.assert_array_equal(hetero.is_endpoint,
                                      sta_result.endpoint_mask)

    def test_edge_alignment_with_sta_graph(self, timing_graph, hetero):
        for i, edge in enumerate(timing_graph.net_edges):
            assert hetero.net_src[i] == edge.src
            assert hetero.net_dst[i] == edge.dst
        for i, edge in enumerate(timing_graph.cell_edges):
            assert hetero.cell_src[i] == edge.src
            assert hetero.cell_dst[i] == edge.dst

    def test_arrival_dominated_by_path_delays(self, hetero):
        """Each non-source node's arrival is at least the max incoming
        (arrival + edge delay) in the late corner, up to engine rounding
        — the defining recurrence of STA."""
        at = hetero.arrival
        for block in hetero.levels[:10]:
            for pos, eid in enumerate(block.net_eids):
                src = hetero.net_src[eid]
                dst = hetero.net_dst[eid]
                assert at[dst, 2] >= at[src, 2] - 1e-9
            for pos, eid in enumerate(block.cell_eids):
                src = hetero.cell_src[eid]
                dst = hetero.cell_dst[eid]
                # Late arrival must cover this arc's contribution.
                contrib = at[src, 2] + hetero.cell_arc_delay[eid, 2]
                # Non-unate arcs may map rise->fall, so compare against
                # the max over the two late channels.
                assert at[dst, 2:4].max() >= contrib - \
                    hetero.cell_arc_delay[eid, 2] * 0.5 - 1e-9

    def test_train_quickly_on_fresh_design(self):
        """A fresh pipeline + short training run beats the mean
        predictor on the design it trained on."""
        library = make_sky130_like_library(seed=77)
        design = generate_circuit("it_fresh", 250, "datapath", library,
                                  seed=21)
        validate_design(design)
        placement = place_design(design, seed=2)
        routing = route_design(design, placement)
        graph = build_timing_graph(design)
        result = run_sta(design, placement, routing, graph=graph)
        hetero = extract_graph(graph, placement, result)
        cfg = ModelConfig.fast()
        model, history = train_timing_gnn(
            [hetero], cfg, TrainConfig(epochs=30, lr=3e-3))
        metrics = evaluate_timing_gnn(model, hetero)
        assert metrics["arrival_r2"] > 0.25
        assert history.loss[-1] < history.loss[0]

    def test_different_styles_produce_different_timing(self):
        library = make_sky130_like_library(seed=3)
        depths = {}
        for style in ("memory", "cpu"):
            design = generate_circuit(f"it_{style}", 400, style, library,
                                      seed=9)
            placement = place_design(design, seed=0)
            routing = route_design(design, placement)
            result = run_sta(design, placement, routing)
            depths[style] = float(np.nanmax(result.arrival[:, LATE_COLS]))
        assert depths["cpu"] > 2.0 * depths["memory"]

    def test_clock_period_scales_with_depth(self):
        library = make_sky130_like_library(seed=3)
        periods = {}
        for style in ("memory", "cpu"):
            design = generate_circuit(f"it2_{style}", 400, style, library,
                                      seed=10)
            placement = place_design(design, seed=0)
            routing = route_design(design, placement)
            result = run_sta(design, placement, routing)
            periods[style] = result.clock_period
        assert periods["cpu"] > periods["memory"]
