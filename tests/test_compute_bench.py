"""Compute benchmark harness: result structure and JSON artefact schema.

The timings themselves are hardware-dependent and are NOT asserted here
(that is ``repro bench-compute``'s job, tracked via BENCH_compute.json);
these tests pin the harness contract: stages run under both backends,
speedups and summaries are computed, metrics land in the registry, and
the JSON artefact is well-formed and schema-versioned.
"""

import json

import numpy as np
import pytest

from repro.bench import (COMPUTE_BENCH_SCHEMA_VERSION, STAGES,
                         ComputeBenchResult, DesignBench,
                         format_compute_report, run_compute_bench,
                         write_compute_bench_json)
from repro.models import ModelConfig
from repro.obs import get_registry


@pytest.fixture(scope="module")
def bench_result(hetero):
    return run_compute_bench([hetero], cfg=ModelConfig.fast(),
                             reps=1, warmup=0)


CELLS = (("naive", "float64"), ("fused", "float64"), ("fused", "float32"))


class TestRunComputeBench:
    def test_result_structure(self, bench_result):
        assert isinstance(bench_result, ComputeBenchResult)
        assert bench_result.backends == ("naive", "fused")
        assert bench_result.dtypes == ("float64", "float32")
        assert bench_result.stages == STAGES
        assert len(bench_result.designs) == 1
        row = bench_result.designs[0]
        assert isinstance(row, DesignBench)
        assert row.nodes > 0 and row.levels > 0
        # v2 nesting: backend -> dtype -> stage; naive runs the float64
        # reference only, fused runs every requested dtype.
        assert set(row.times_ms["naive"]) == {"float64"}
        assert set(row.times_ms["fused"]) == {"float64", "float32"}
        for backend, dtype in CELLS:
            for stage in STAGES:
                assert row.times_ms[backend][dtype][stage] > 0.0

    def test_instrumentation_columns(self, bench_result):
        row = bench_result.designs[0]
        for backend, dtype in CELLS:
            assert row.allocations_per_step[backend][dtype] > 0
            assert row.peak_rss_mb[backend][dtype] > 0.0
        # The arena-planned fused pass must allocate less than the
        # per-op naive tape.
        assert (row.allocations_per_step["fused"]["float64"]
                < row.allocations_per_step["naive"]["float64"])

    def test_speedups_and_summary(self, bench_result):
        row = bench_result.designs[0]
        summary = bench_result.summary
        for dtype in ("float64", "float32"):
            for stage in STAGES:
                assert row.speedup[dtype][stage] > 0.0
                assert (summary[f"speedup_{stage}_geomean_{dtype}"]
                        == pytest.approx(row.speedup[dtype][stage]))
        for stage in STAGES:
            best_dtype = summary[f"speedup_{stage}_best_dtype"]
            assert best_dtype in ("float64", "float32")
            assert (summary[f"speedup_{stage}_best"]
                    == pytest.approx(row.speedup[best_dtype][stage]))
            assert summary[f"speedup_{stage}_best_design"] == row.name
            assert summary[f"speedup_{stage}_geomean"] > 0.0

    def test_unknown_dtype_rejected(self, hetero):
        with pytest.raises(ValueError):
            run_compute_bench([hetero], dtypes=["float16"])

    def test_metrics_registered(self, bench_result):
        text = get_registry().render_prometheus()
        assert "repro_compute_stage_ms" in text
        assert "repro_compute_speedup" in text

    def test_unknown_stage_rejected(self, hetero):
        with pytest.raises(ValueError):
            run_compute_bench([hetero], stages=["warp_drive"])

    def test_report_renders(self, bench_result):
        report = format_compute_report(bench_result)
        assert "compute benchmark" in report
        assert bench_result.designs[0].name in report


class TestBenchComputeJson:
    def test_artefact_well_formed(self, bench_result, tmp_path):
        path = tmp_path / "BENCH_compute.json"
        write_compute_bench_json(bench_result, path,
                                 params={"reps": 1, "scale": 0.1})
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "compute"
        assert payload["schema_version"] == COMPUTE_BENCH_SCHEMA_VERSION
        assert payload["params"]["reps"] == 1
        assert payload["backends"] == ["naive", "fused"]
        assert payload["stages"] == list(STAGES)
        assert payload["dtypes"] == ["float64", "float32"]
        row = payload["designs"][0]
        for stage in STAGES:
            assert row["times_ms"]["fused"]["float64"][stage] > 0.0
            assert row["speedup"]["float64"][stage] > 0.0
        assert row["allocations_per_step"]["fused"]["float32"] > 0
        assert row["peak_rss_mb"]["naive"]["float64"] > 0.0
        for stage in STAGES:
            assert f"speedup_{stage}_geomean" in payload["summary"]

    def test_geomean_math(self):
        rows = [DesignBench(name=f"d{i}", nodes=1, net_edges=1,
                            cell_edges=1, levels=1,
                            speedup={"float64": {"forward": s}})
                for i, s in enumerate((1.0, 4.0))]
        from repro.bench.compute import _summarize
        summary = _summarize(rows, ("forward",), ("float64",))
        assert summary["speedup_forward_best"] == 4.0
        assert summary["speedup_forward_best_design"] == "d1"
        assert summary["speedup_forward_best_dtype"] == "float64"
        assert summary["speedup_forward_geomean"] == pytest.approx(
            np.sqrt(4.0))
        assert summary["speedup_forward_geomean_float64"] == pytest.approx(
            np.sqrt(4.0))
