"""repro.parallel: differential, cache-integrity and crash-retry tests.

The load-bearing guarantee of the parallel pipeline is *determinism*:
a dataset built on a worker pool must be byte-identical to one built
serially, and a warm artifact cache must return exactly what a cold
build produced.  These tests compare the builds bit-for-bit, corrupt
cache entries on purpose, crash worker processes on purpose, and pin
the seed-determinism property the cache keys rely on.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading

import numpy as np
import pytest

from repro.flow import Flow
from repro.graphdata.dataset import (DATASET_VERSION, generate_design,
                                     load_dataset)
from repro.netlist import BENCHMARKS
from repro.parallel import (ArtifactStore, ParallelExecutor,
                            WorkerCrashError, default_workers)

SMALL = [b for b in BENCHMARKS if b.name in ("spm", "zipdiv", "usb")]
SCALE = 0.25


def graph_bytes(graph):
    """Every array of a HeteroGraph, concatenated, for exact comparison."""
    h = hashlib.sha256()
    for name in graph._ARRAY_FIELDS:
        h.update(getattr(graph, name).tobytes())
    h.update(np.float64(graph.clock_period).tobytes())
    return h.hexdigest()


def assert_records_identical(a, b):
    assert set(a) == set(b)
    for name in a:
        ga, gb = a[name].graph, b[name].graph
        for field in ga._ARRAY_FIELDS:
            va, vb = getattr(ga, field), getattr(gb, field)
            assert va.dtype == vb.dtype, (name, field)
            assert va.tobytes() == vb.tobytes(), (name, field)
        assert ga.clock_period == gb.clock_period
        assert ga.slack().tobytes() == gb.slack().tobytes()


# -- module-level task functions (must be picklable for worker pools) ---------
def _square(x):
    return x * x


def _raise_value_error(x):
    raise ValueError(f"task failure {x}")


def _crash_once(args):
    """Hard-exit the worker process the first time; succeed after.

    The marker file records that the crash already happened, so the
    retried attempt (in a fresh worker) completes.
    """
    value, marker = args
    if value == "crash" and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(13)
    return value


def _crash_always(x):
    os._exit(13)


def _flow_fingerprint(args):
    name, scale, seed = args
    flow = Flow.from_benchmark(name, scale=scale).place(seed=seed)
    return flow.fingerprint()


def _seeded_build(args):
    """(placement bytes, graph hash) of one deterministic small flow."""
    from repro.graphdata import extract_graph
    from repro.liberty import make_sky130_like_library
    from repro.netlist import generate_circuit
    from repro.placement import place_design
    from repro.routing import route_design
    from repro.sta import build_timing_graph, run_sta

    seed = args
    library = make_sky130_like_library()
    design = generate_circuit("prop", 180, "control", library, seed=seed)
    placement = place_design(design, seed=seed)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph)
    hetero = extract_graph(graph, placement, result)
    return (hashlib.sha256(placement.pin_xy.tobytes()).hexdigest(),
            float(routing.total_wirelength), graph_bytes(hetero))


# -- ArtifactStore -------------------------------------------------------------
class TestArtifactStore:
    def test_roundtrip(self, tmp_path, rng):
        store = ArtifactStore(str(tmp_path))
        payload = {"x": rng.normal(size=(7, 3)), "tag": "hello",
                   "nested": [1, 2, {"three": 4.0}]}
        store.put("k1", payload, kind="test", version=5,
                  meta={"design": "d"})
        loaded = store.get("k1", kind="test", version=5)
        assert loaded is not None
        np.testing.assert_array_equal(loaded["x"], payload["x"])
        assert loaded["tag"] == "hello"
        assert loaded["nested"] == payload["nested"]

    def test_miss_returns_default(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.get("nope") is None
        assert store.get("nope", default=42) == 42

    def test_version_and_kind_stamp_mismatch_is_stale(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("k", [1, 2], kind="test", version=1)
        assert store.get("k", kind="test", version=2) is None
        assert store.get("k", kind="other", version=1) is None
        assert store.get("k", kind="test", version=1) == [1, 2]

    def test_contains(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert not store.contains("k", kind="test", version=1)
        store.put("k", "v", kind="test", version=1)
        assert store.contains("k", kind="test", version=1)
        assert not store.contains("k", kind="test", version=2)

    def test_truncated_entry_is_corrupt_and_evicted(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("k", list(range(1000)), kind="test")
        path = store._path("k")
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) - len(data) // 3])
        assert store.get("k", kind="test") is None
        # Evicted: the entry file is gone, a re-put starts clean.
        assert not os.path.exists(path)
        store.put("k", [7], kind="test")
        assert store.get("k", kind="test") == [7]

    def test_garbled_payload_digest_mismatch(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("k", b"payload-bytes", kind="test")
        path = store._path("k")
        with open(path, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            fh.write(b"\xff\x00\xff")
        assert store.get("k", kind="test") is None

    def test_garbled_header(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("k", "v", kind="test")
        with open(store._path("k"), "r+b") as fh:
            fh.write(b"{not an artifact")
        assert store.get("k", kind="test") is None

    def test_verify_reports_without_evicting(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("good", "v", kind="test")
        store.put("bad", list(range(1000)), kind="test")
        path = store._path("bad")
        with open(path, "r+b") as fh:
            fh.seek(-4, os.SEEK_END)
            fh.write(b"\x00\x01\x02\x03")
        problems = store.verify()
        assert [key for key, _ in problems] == ["bad"]
        assert problems[0][1] == "digest mismatch"
        assert os.path.exists(path)  # verify() is read-only
        # A header-smashed entry is reported too.
        with open(store._path("good"), "r+b") as fh:
            fh.write(b"XXXX")
        assert ("good", "unreadable header") in store.verify()

    def test_entries_and_clear(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("a", 1, kind="x", meta={"design": "da"})
        store.put("b", 2, kind="y")
        entries = store.entries()
        assert [e["key"] for e in entries] == ["a", "b"]
        assert entries[0]["meta"] == {"design": "da"}
        assert store.total_bytes() > 0
        assert store.clear(kind="x") == 1
        assert store.keys() == ["b"]
        assert store.clear() == 1
        assert store.keys() == []

    def test_concurrent_same_key_puts_stay_consistent(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        errors = []

        def writer(value):
            try:
                for _ in range(20):
                    store.put("k", [value] * 100, kind="test")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        loaded = store.get("k", kind="test")
        assert loaded is not None and len(set(loaded)) == 1


# -- ParallelExecutor ----------------------------------------------------------
class TestParallelExecutor:
    def test_serial_map_ordered(self):
        ex = ParallelExecutor(workers=1)
        assert ex.map(_square, range(7)) == [x * x for x in range(7)]

    def test_pool_map_ordered(self):
        ex = ParallelExecutor(workers=4)
        assert ex.map(_square, range(13)) == [x * x for x in range(13)]

    def test_default_workers_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_workers() == 6
        assert ParallelExecutor().workers == 6
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        assert default_workers() == 1

    def test_task_exception_propagates(self):
        ex = ParallelExecutor(workers=2)
        with pytest.raises(ValueError, match="task failure"):
            ex.map(_raise_value_error, [1, 2, 3])

    def test_serial_fallback_when_pool_unavailable(self, monkeypatch):
        ex = ParallelExecutor(workers=4)
        monkeypatch.setattr(
            ParallelExecutor, "_make_pool",
            lambda self, n: (_ for _ in ()).throw(OSError("no sem")))
        assert ex.map(_square, range(5)) == [x * x for x in range(5)]

    def test_worker_crash_retried_once(self, tmp_path):
        marker = str(tmp_path / "crashed.marker")
        items = [("a", marker), ("crash", marker), ("b", marker),
                 ("c", marker)]
        ex = ParallelExecutor(workers=2, retries=1)
        assert ex.map(_crash_once, items) == ["a", "crash", "b", "c"]
        assert os.path.exists(marker)

    def test_repeated_crashes_raise(self):
        ex = ParallelExecutor(workers=2, retries=1)
        with pytest.raises(WorkerCrashError, match="crashed 2 times"):
            ex.map(_crash_always, [1, 2, 3])

    def test_start_method_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert ParallelExecutor._start_method() == "spawn"
        monkeypatch.setenv("REPRO_MP_START", "not-a-method")
        assert ParallelExecutor._start_method() in ("fork", "spawn")


# -- differential: parallel == serial -----------------------------------------
class TestParallelSerialIdentical:
    def test_dataset_bitwise_identical_and_cache_roundtrip(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = load_dataset(scale=SCALE, cache_dir=serial_dir,
                              benchmarks=SMALL, workers=1)
        parallel = load_dataset(scale=SCALE, cache_dir=parallel_dir,
                                benchmarks=SMALL, workers=4)
        assert_records_identical(serial, parallel)
        # Warm-cache reload (serial and parallel) returns the same bytes.
        warm_serial = load_dataset(scale=SCALE, cache_dir=serial_dir,
                                   benchmarks=SMALL, workers=1)
        warm_parallel = load_dataset(scale=SCALE, cache_dir=parallel_dir,
                                     benchmarks=SMALL, workers=4)
        assert_records_identical(serial, warm_serial)
        assert_records_identical(serial, warm_parallel)
        # The caches of both builds contain identical record payloads
        # under identical keys.
        store_s = ArtifactStore(os.path.join(serial_dir, "artifacts"))
        store_p = ArtifactStore(os.path.join(parallel_dir, "artifacts"))
        assert store_s.keys() == store_p.keys()
        for key in store_s.keys():
            rec_s = store_s.get(key, kind="design_record",
                                version=DATASET_VERSION)
            rec_p = store_p.get(key, kind="design_record",
                                version=DATASET_VERSION)
            assert graph_bytes(rec_s.graph) == graph_bytes(rec_p.graph)

    def test_flow_fingerprints_match_across_worker_counts(self):
        tasks = [(b.name, SCALE, 1) for b in SMALL]
        serial = ParallelExecutor(workers=1).map(_flow_fingerprint, tasks)
        parallel = ParallelExecutor(workers=4).map(_flow_fingerprint, tasks)
        assert serial == parallel

    def test_no_cache_build_matches_cached_build(self, tmp_path):
        cached = load_dataset(scale=SCALE, cache_dir=str(tmp_path),
                              benchmarks=SMALL[:1], workers=1)
        uncached = load_dataset(scale=SCALE, cache=False,
                                benchmarks=SMALL[:1], workers=1)
        assert_records_identical(cached, uncached)


# -- cache integration: corruption recovery, hit accounting -------------------
class TestDatasetCacheIntegration:
    def test_corrupted_cache_rebuilds_not_crashes(self, tmp_path):
        cache_dir = str(tmp_path)
        first = load_dataset(scale=SCALE, cache_dir=cache_dir,
                             benchmarks=SMALL[:2], workers=1)
        store = ArtifactStore(os.path.join(cache_dir, "artifacts"))
        keys = store.keys()
        assert len(keys) == 2
        # Truncate one entry, garble the other's payload bytes.
        with open(store._path(keys[0]), "wb") as fh:
            fh.write(b"trash")
        with open(store._path(keys[1]), "r+b") as fh:
            fh.seek(-8, os.SEEK_END)
            fh.write(b"\x00\xff\x00\xff")
        rebuilt = load_dataset(scale=SCALE, cache_dir=cache_dir,
                               benchmarks=SMALL[:2], workers=1)
        assert_records_identical(first, rebuilt)
        assert not store.verify()  # rebuilt entries are intact again

    def test_benchmarks_accepts_plain_names(self, tmp_path):
        by_spec = load_dataset(scale=SCALE, cache_dir=str(tmp_path),
                               benchmarks=SMALL[:2], workers=1)
        by_name = load_dataset(scale=SCALE, cache_dir=str(tmp_path),
                               benchmarks=[b.name for b in SMALL[:2]],
                               workers=1)
        assert_records_identical(by_spec, by_name)
        with pytest.raises(KeyError, match="no_such_design"):
            load_dataset(scale=SCALE, cache_dir=str(tmp_path),
                         benchmarks=["no_such_design"], workers=1)

    def test_second_build_hits_cache(self, tmp_path):
        from repro.obs import get_registry

        def hits():
            snap = get_registry().snapshot()
            return sum(e["value"] for e in
                       snap.get("repro_dataset_designs_total", [])
                       if e["labels"]["result"] == "hit")

        cache_dir = str(tmp_path)
        load_dataset(scale=SCALE, cache_dir=cache_dir,
                     benchmarks=SMALL, workers=1)
        before = hits()
        load_dataset(scale=SCALE, cache_dir=cache_dir,
                     benchmarks=SMALL, workers=1)
        assert hits() - before == len(SMALL)

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        import repro.graphdata.dataset as dataset_mod

        cache_dir = str(tmp_path)
        load_dataset(scale=SCALE, cache_dir=cache_dir,
                     benchmarks=SMALL[:1], workers=1)
        store = ArtifactStore(os.path.join(cache_dir, "artifacts"))
        assert len(store.keys()) == 1
        monkeypatch.setattr(dataset_mod, "DATASET_VERSION",
                            DATASET_VERSION + 1)
        load_dataset(scale=SCALE, cache_dir=cache_dir,
                     benchmarks=SMALL[:1], workers=1)
        # New version key written alongside; the stale entry is ignored.
        assert len(store.keys()) == 2


# -- memo keying regression (REPRO_CACHE_DIR flips mid-process) ---------------
class TestExperimentMemoKeying:
    def test_get_dataset_resolves_cache_dir_once(self, monkeypatch,
                                                 tmp_path):
        import repro.experiments.common as common

        seen = []

        def fake_load_dataset(scale=1.0, cache_dir=None, **kwargs):
            seen.append(cache_dir)
            return {"from": cache_dir}

        monkeypatch.setattr(common, "load_dataset", fake_load_dataset)
        dir_a, dir_b = str(tmp_path / "a"), str(tmp_path / "b")
        monkeypatch.setenv("REPRO_CACHE_DIR", dir_a)
        first = common.get_dataset(scale=0.771)
        monkeypatch.setenv("REPRO_CACHE_DIR", dir_b)
        second = common.get_dataset(scale=0.771)
        # The build received exactly the directory its memo key names —
        # not whatever REPRO_CACHE_DIR happened to be at build time.
        assert seen == [dir_a, dir_b]
        assert first == {"from": dir_a}
        assert second == {"from": dir_b}
        # Flipping back returns the original memo without a rebuild.
        monkeypatch.setenv("REPRO_CACHE_DIR", dir_a)
        assert common.get_dataset(scale=0.771) is first
        assert seen == [dir_a, dir_b]

    def test_model_cache_path_honors_resolved_dir(self, monkeypatch,
                                                  tmp_path):
        from repro.experiments.common import (model_cache_path,
                                              model_config, train_config)

        cfg, tcfg = model_config(), train_config(epochs=1)
        explicit = model_cache_path("timing_full", cfg, tcfg, 0.25,
                                    cache_dir=str(tmp_path))
        assert explicit.startswith(str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        via_env = model_cache_path("timing_full", cfg, tcfg, 0.25)
        assert via_env.startswith(str(tmp_path / "env"))
        assert os.path.basename(explicit) == os.path.basename(via_env)


# -- seed-determinism property ------------------------------------------------
class TestSeedDeterminismProperty:
    """Same seed => identical artifacts, in-process and across processes."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_repeated_runs_identical(self, seed):
        assert _seeded_build(seed) == _seeded_build(seed)

    def test_identical_across_processes(self):
        seeds = [0, 3]
        local = [_seeded_build(s) for s in seeds]
        remote = ParallelExecutor(workers=2).map(_seeded_build, seeds)
        assert local == remote

    def test_different_seeds_differ(self):
        assert _seeded_build(0) != _seeded_build(1)

    def test_generate_design_stable_across_calls(self):
        a = generate_design("spm", "test", scale=SCALE)
        b = generate_design("spm", "test", scale=SCALE)
        assert graph_bytes(a.graph) == graph_bytes(b.graph)


# -- instrumentation ----------------------------------------------------------
class TestInstrumentation:
    def test_build_latency_histogram_recorded(self, tmp_path):
        from repro.obs import get_registry

        load_dataset(scale=SCALE, cache_dir=str(tmp_path),
                     benchmarks=SMALL[:1], workers=1)
        hist = get_registry().get("repro_design_build_ms",
                                  design=SMALL[0].name)
        assert hist is not None and hist.count >= 1

    def test_artifact_counters_recorded(self, tmp_path):
        from repro.obs import get_registry

        store = ArtifactStore(str(tmp_path))
        store.get("missing", kind="probe")
        store.put("k", 1, kind="probe")
        store.get("k", kind="probe")
        reg = get_registry()
        assert reg.get("repro_artifact_total", result="miss",
                       kind="probe").value >= 1
        assert reg.get("repro_artifact_total", result="hit",
                       kind="probe").value >= 1

    def test_busy_worker_gauge_settles_to_zero(self):
        from repro.obs import get_registry

        ParallelExecutor(workers=2).map(_square, range(4))
        gauge = get_registry().get("repro_parallel_busy_workers")
        assert gauge is not None and gauge.value == 0


# -- flow artifact hooks ------------------------------------------------------
class TestFlowArtifactHooks:
    def test_run_cached_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        flow = Flow.from_benchmark("spm", scale=SCALE)
        flow.run_cached(store=store, seed=2)
        fresh = Flow.from_benchmark("spm", scale=SCALE)
        assert fresh.load_artifacts(store=store, seed=2)
        assert fresh.fingerprint() == flow.fingerprint()
        assert graph_bytes(fresh.extract()) == graph_bytes(flow.extract())
        assert fresh.timing_summary() == flow.timing_summary()

    def test_artifact_key_is_parameter_sensitive(self):
        flow = Flow.from_benchmark("spm", scale=SCALE)
        base = flow.artifact_key(seed=1)
        assert flow.artifact_key(seed=1) == base
        assert flow.artifact_key(seed=2) != base
        assert flow.artifact_key(seed=1, clock_period=500.0) != base

    def test_load_artifacts_miss_returns_false(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        flow = Flow.from_benchmark("spm", scale=SCALE)
        assert not flow.load_artifacts(store=store, seed=9)
