"""Observability semantics: metrics under concurrency, histogram
quantile accuracy, span nesting/export, structured logging, the
Prometheus ``/metrics`` endpoint and the loadgen benchmark artefact."""

from __future__ import annotations

import io
import json
import re
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.obs import (Counter, Gauge, Histogram, LogManager, Logger,
                       MetricsRegistry, Tracer, format_span_tree,
                       get_registry)


# -- counters / gauges under concurrency ---------------------------------------
class TestCounterGauge:
    def test_concurrent_counter_increments_are_exact(self):
        counter = Counter("test_total")
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("test_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name!")
        with pytest.raises(ValueError):
            Counter("ok_total", **{"bad-label": "x"})


# -- histogram -----------------------------------------------------------------
class TestHistogram:
    def test_quantile_accuracy_exact_within_reservoir(self):
        hist = Histogram("lat_ms", reservoir=4096)
        values = np.arange(1.0, 1001.0)
        for v in values:
            hist.observe(v)
        assert hist.count == 1000
        assert hist.sum == pytest.approx(values.sum())
        for q in (0.5, 0.9, 0.99):
            assert hist.quantile(q) == pytest.approx(
                np.quantile(values, q))

    def test_concurrent_observers_exact_count_sum(self):
        hist = Histogram("lat_ms", reservoir=100000)
        threads = [threading.Thread(
            target=lambda: [hist.observe(1.0) for _ in range(1000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 8000
        assert hist.sum == pytest.approx(8000.0)

    def test_rolling_reservoir_tracks_recent_window(self):
        hist = Histogram("lat_ms", reservoir=100)
        for v in range(1000):
            hist.observe(float(v))
        # count/sum/min/max are exact over the whole stream ...
        assert hist.count == 1000
        assert hist.snapshot()["max"] == 999.0
        assert hist.snapshot()["min"] == 0.0
        # ... while quantiles come from the last `reservoir` samples.
        assert hist.quantile(0.5) == pytest.approx(949.5)

    def test_empty_histogram(self):
        hist = Histogram("lat_ms")
        assert np.isnan(hist.quantile(0.5))
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["p50"] == 0.0


# -- registry ------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", cache="graph")
        b = registry.counter("x_total", cache="graph")
        c = registry.counter("x_total", cache="result")
        assert a is b and a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.histogram("x_total", cache="other")

    def test_concurrent_get_or_create_single_instrument(self):
        registry = MetricsRegistry()
        results = []
        threads = [threading.Thread(
            target=lambda: results.append(registry.counter("c_total")))
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is results[0] for c in results)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.histogram("h_ms").observe(5.0)
        snap = registry.snapshot()
        assert snap["a_total"][0]["value"] == 2
        assert snap["h_ms"][0]["value"]["count"] == 1


# -- Prometheus text format ----------------------------------------------------
class TestPrometheusRender:
    def test_counter_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.").inc(3)
        registry.gauge("depth", model="toy").set(2)
        text = registry.render_prometheus()
        assert "# HELP req_total Requests.\n" in text
        assert "# TYPE req_total counter\n" in text
        assert "\nreq_total 3\n" in text
        assert "# TYPE depth gauge\n" in text
        assert 'depth{model="toy"} 2\n' in text

    def test_summary_lines_and_escaping(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms", quantiles=(0.5, 0.99),
                                  path='a"b\n')
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        text = registry.render_prometheus()
        assert "# TYPE lat_ms summary" in text
        assert re.search(
            r'lat_ms\{path="a\\"b\\n",quantile="0\.5"\} 2', text)
        assert re.search(r'lat_ms_sum\{path="a\\"b\\n"\} 6', text)
        assert re.search(r'lat_ms_count\{path="a\\"b\\n"\} 3', text)

    def test_every_sample_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total", x="1").inc()
        registry.histogram("b_ms").observe(1.5)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$")
        for line in registry.render_prometheus().strip().splitlines():
            if line.startswith("#"):
                continue
            assert sample.match(line), line

    def test_backslash_escapes_before_quote_and_newline(self):
        # label value with a real backslash, quote and newline; the
        # backslash must be doubled FIRST or the other escapes corrupt
        registry = MetricsRegistry()
        registry.gauge("esc_g", path='a\\b"c\nd').set(1)
        text = registry.render_prometheus()
        assert 'esc_g{path="a\\\\b\\"c\\nd"} 1\n' in text
        # round-trips: unescaping yields the original value
        escaped = re.search(r'esc_g\{path="(.*)"\} 1', text).group(1)
        unescaped = escaped.replace("\\n", "\n").replace('\\"', '"') \
                           .replace("\\\\", "\\")
        assert unescaped == 'a\\b"c\nd'

    def test_nan_and_inf_render_prometheus_spellings(self):
        registry = MetricsRegistry()
        registry.gauge("g_nan").set(float("nan"))
        registry.gauge("g_pinf").set(float("inf"))
        registry.gauge("g_ninf").set(float("-inf"))
        text = registry.render_prometheus()
        assert "\ng_nan NaN\n" in text
        assert "\ng_pinf +Inf\n" in text
        assert "\ng_ninf -Inf\n" in text

    def test_empty_histogram_renders_zero_samples(self):
        # snapshot() substitutes 0.0 for quantiles of an empty stream
        # (only quantile() itself reports NaN), so the exposition stays
        # parseable before the first observation
        registry = MetricsRegistry()
        hist = registry.histogram("idle_ms", quantiles=(0.5,))
        text = registry.render_prometheus()
        assert re.search(r'idle_ms\{quantile="0\.5"\} 0', text)
        assert "\nidle_ms_count 0\n" in text
        assert np.isnan(hist.quantile(0.5))


class TestQuantileStreams:
    def test_constant_stream_collapses_all_quantiles(self):
        hist = Histogram("const_ms", quantiles=(0.5, 0.9, 0.99))
        for _ in range(100):
            hist.observe(7.25)
        snap = hist.snapshot()
        assert snap["p50"] == snap["p90"] == snap["p99"] == 7.25
        assert snap["min"] == snap["max"] == snap["mean"] == 7.25
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(725.0)

    def test_two_point_stream_brackets_the_step(self):
        hist = Histogram("two_ms", quantiles=(0.5, 0.99))
        for _ in range(50):
            hist.observe(1.0)
        for _ in range(50):
            hist.observe(9.0)
        assert hist.quantile(0.01) == pytest.approx(1.0)
        assert hist.quantile(0.99) == pytest.approx(9.0)
        # the median falls between the two levels, never outside
        assert 1.0 <= hist.quantile(0.5) <= 9.0
        snap = hist.snapshot()
        assert snap["min"] == 1.0 and snap["max"] == 9.0
        assert snap["mean"] == pytest.approx(5.0)


# -- tracing -------------------------------------------------------------------
class TestTracing:
    def test_nesting_parent_child_and_trace_id(self):
        tracer = Tracer()
        with tracer.span("root", design="spm") as root:
            with tracer.span("child") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
            with tracer.span("sibling") as sib:
                assert sib.parent_id == root.span_id
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["child", "sibling", "root"]
        assert all(s["duration_ms"] >= 0 for s in spans)
        root_rec = spans[-1]
        assert root_rec["parent_id"] is None
        assert root_rec["attrs"] == {"design": "spm"}

    def test_threads_do_not_share_span_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as sp:
                time.sleep(0.01)
                seen[name] = sp.parent_id

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(parent is None for parent in seen.values())

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans()[0]["status"] == "error"

    def test_jsonl_export_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert count == len(records) == 2
        assert {r["name"] for r in records} == {"a", "b"}

    def test_streaming_sink(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "sink.jsonl"
        tracer.set_sink(path)
        with tracer.span("streamed"):
            pass
        tracer.clear_sink()
        record = json.loads(path.read_text().strip())
        assert record["name"] == "streamed"

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as sp:
            sp.set(k=1)
        assert tracer.spans() == []

    def test_format_span_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        tree = format_span_tree(tracer.spans())
        lines = tree.splitlines()
        assert "root" in lines[0] and "  child" in lines[1]


class TestTraceRotation:
    def test_sink_rotates_at_max_lines(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "trace.jsonl"
        tracer.set_sink(path, max_lines=5)
        for i in range(12):
            with tracer.span(f"s{i}"):
                pass
        tracer.clear_sink()
        rotated = tmp_path / "trace.jsonl.1"
        assert rotated.exists()
        kept = path.read_text().splitlines()
        old = rotated.read_text().splitlines()
        assert len(old) == 5
        assert len(kept) <= 5
        # the live file always holds the most recent spans
        assert [json.loads(line)["name"] for line in kept] == \
            ["s10", "s11"]

    def test_append_mode_counts_preexisting_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "old"}\n' * 4)
        tracer = Tracer()
        tracer.set_sink(path, mode="a", max_lines=5)
        with tracer.span("fills"):
            pass                       # fifth line: at the cap, kept
        with tracer.span("rolls"):
            pass                       # past the cap: rotates first
        tracer.clear_sink()
        old = (tmp_path / "trace.jsonl.1").read_text().splitlines()
        assert len(old) == 5
        assert json.loads(old[-1])["name"] == "fills"
        kept = path.read_text().splitlines()
        assert len(kept) == 1
        assert json.loads(kept[0])["name"] == "rolls"

    def test_max_lines_defaults_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_LINES", "2")
        tracer = Tracer()
        path = tmp_path / "t.jsonl"
        tracer.set_sink(path)
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        tracer.clear_sink()
        assert (tmp_path / "t.jsonl.1").exists()
        assert len(path.read_text().splitlines()) == 1

    def test_file_object_sinks_never_rotate(self, tmp_path):
        tracer = Tracer()
        buffer = io.StringIO()
        tracer.set_sink(buffer, max_lines=1)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        tracer.clear_sink()
        assert len(buffer.getvalue().splitlines()) == 4


# -- structured logging --------------------------------------------------------
class TestStructuredLogging:
    def _logger(self, name, **kwargs):
        buf = io.StringIO()
        manager = LogManager(stream=buf, env="", **kwargs)
        return Logger(name, manager), buf

    def test_key_value_format(self):
        log, buf = self._logger("repro.test")
        log.info("epoch", epoch=3, loss=0.5, msg="two words")
        line = buf.getvalue().strip()
        assert "lvl=info" in line and "log=repro.test" in line
        assert "event=epoch" in line and "epoch=3" in line
        assert 'msg="two words"' in line
        assert re.search(r"ts=\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}", line)

    def test_default_level_filters_debug(self):
        log, buf = self._logger("repro.test")
        log.debug("hidden")
        log.info("shown")
        assert "hidden" not in buf.getvalue()
        assert "shown" in buf.getvalue()

    def test_per_module_levels_longest_prefix(self):
        log, buf = self._logger("repro.training.trainer")
        log.manager.configure(**{"repro.training": "debug",
                                 "repro": "warning"})
        log.debug("visible")         # repro.training=debug wins over repro
        other = Logger("repro.sta", log.manager)
        other.info("suppressed")     # repro=warning applies
        out = buf.getvalue()
        assert "visible" in out and "suppressed" not in out

    def test_env_configuration(self):
        buf = io.StringIO()
        manager = LogManager(stream=buf,
                             env="repro.x=debug,default=error")
        assert Logger("repro.x.y", manager).enabled_for("debug")
        assert not Logger("repro.z", manager).enabled_for("warning")

    def test_bind_sticky_fields(self):
        log, buf = self._logger("repro.test")
        log.bind(model="gnn").info("step", n=1)
        assert "model=gnn" in buf.getvalue()

    def test_concurrent_emits_do_not_shear(self):
        log, buf = self._logger("repro.test")
        threads = [threading.Thread(
            target=lambda: [log.info("tick", i=j) for j in range(100)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 400
        assert all(line.startswith("ts=") for line in lines)


# -- serving integration: /metrics endpoint ------------------------------------
SCALE = 0.15


@pytest.fixture(scope="module")
def server():
    from repro.models import ModelConfig, TimingGNN
    from repro.serving import (ModelRegistry, PredictionService,
                               ServingServer)
    from repro.serving.registry import ModelEntry

    registry = ModelRegistry(scale=SCALE, names=[])
    registry.register("toy", lambda: ModelEntry(
        name="toy", kind="timing", version="vtest",
        model=TimingGNN(ModelConfig.benchmark()),
        loaded_at=time.time(), load_seconds=0.0))
    service = PredictionService(registry=registry, scale=SCALE,
                                metrics=MetricsRegistry())
    with ServingServer(service) as srv:
        yield srv


def _get_text(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode()


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=60) as resp:
        return resp.status, json.loads(resp.read())


class TestMetricsEndpoint:
    def test_metrics_exposes_required_families(self, server):
        _post(server.url + "/predict", {"design": "spm", "model": "toy"})
        _post(server.url + "/predict", {"design": "spm", "model": "toy"})
        # include_slack forces a result-cache miss, so the expired
        # deadline is actually consulted and the fallback path taken.
        _post(server.url + "/predict", {"design": "spm", "model": "toy",
                                        "deadline_ms": 0,
                                        "include_slack": True})
        status, content_type, text = _get_text(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        # Batch-size histogram, cache hit/miss counters, latency
        # quantiles, deadline-degradation counter (acceptance criteria).
        assert re.search(
            r'repro_batch_size\{model="toy",quantile="0\.5"\} \d', text)
        assert re.search(
            r'repro_cache_hits_total\{cache="result"\} \d', text)
        assert re.search(
            r'repro_cache_misses_total\{cache="graph"\} \d', text)
        assert re.search(
            r'repro_request_latency_ms\{quantile="0\.99"\} ', text)
        assert re.search(r"repro_deadline_fallbacks_total 1", text)
        assert re.search(r"repro_requests_total 3", text)

    def test_metrics_agrees_with_stats(self, server):
        _post(server.url + "/predict", {"design": "spm", "model": "toy"})
        _status, _ct, text = _get_text(server.url + "/metrics")
        with urllib.request.urlopen(server.url + "/stats",
                                    timeout=30) as resp:
            stats = json.loads(resp.read())
        requests_metric = re.search(r"^repro_requests_total (\d+)$",
                                    text, re.M)
        assert int(requests_metric.group(1)) == stats["counts"]["requests"]
        hits_metric = re.search(
            r'^repro_cache_hits_total\{cache="result"\} (\d+)$', text,
            re.M)
        assert int(hits_metric.group(1)) == stats["result_cache"]["hits"]

    def test_global_registry_families_included(self, server):
        """Flow/STA instrumentation (default registry) rides along."""
        _status, _ct, text = _get_text(server.url + "/metrics")
        # The server extracted at least one graph, so the process-wide
        # flow-stage histogram must be present.
        assert get_registry().get("repro_flow_stage_ms",
                                  stage="place") is not None
        assert 'repro_flow_stage_ms_count{stage="place"}' in text


# -- loadgen benchmark artefact ------------------------------------------------
class TestBenchJson:
    def test_write_bench_json_well_formed(self, tmp_path):
        from repro.serving.loadgen import LoadgenResult, write_bench_json

        result = LoadgenResult(
            clients=2, requests=10, ok=10, errors=0, incorrect=0,
            degraded=0, cache_hits=5, warmup_requests=2, duration_s=1.5,
            throughput_rps=6.6667, latency_p50_ms=3.2,
            latency_p99_ms=9.9, latency_mean_ms=4.0,
            server_stats={"counts": {"requests": 10}})
        path = tmp_path / "BENCH_serving.json"
        write_bench_json(result, path, params={"clients": 2})
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "serving"
        assert payload["schema_version"] == 1
        assert payload["requests"] == 10
        assert payload["warmup_requests"] == 2
        assert payload["throughput_rps"] == pytest.approx(6.6667)
        assert payload["params"]["clients"] == 2
        assert payload["server_stats"]["counts"]["requests"] == 10
