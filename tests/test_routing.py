"""Routing: Steiner tree invariants, RC extraction, Elmore analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.liberty import WireModel
from repro.routing import (RCTree, build_steiner_tree, extract_rc_tree,
                           route_design)


class TestSteinerTree:
    def test_single_pin(self):
        tree = build_steiner_tree(np.asarray([[3.0, 4.0]]))
        assert tree.num_nodes == 1
        assert tree.total_wirelength == 0.0

    def test_two_pins_manhattan(self):
        tree = build_steiner_tree(np.asarray([[0.0, 0.0], [3.0, 4.0]]))
        assert tree.validate()
        np.testing.assert_allclose(tree.total_wirelength, 7.0)

    def test_collinear_pins_no_corner(self):
        tree = build_steiner_tree(np.asarray([[0.0, 0.0], [5.0, 0.0]]))
        assert tree.num_nodes == 2       # no Steiner corner needed

    def test_l_shape_gets_corner(self):
        tree = build_steiner_tree(np.asarray([[0.0, 0.0], [3.0, 4.0]]))
        assert tree.num_nodes == 3       # pin, pin, corner
        corner = tree.xy[2]
        assert (corner[0] in (0.0, 3.0)) and (corner[1] in (0.0, 4.0))

    def test_pin_nodes_alignment(self):
        pins = np.asarray([[0.0, 0.0], [10.0, 2.0], [4.0, 8.0]])
        tree = build_steiner_tree(pins)
        for i, node in enumerate(tree.pin_nodes):
            np.testing.assert_allclose(tree.xy[node], pins[i])

    def test_root_is_driver(self):
        pins = np.asarray([[5.0, 5.0], [1.0, 1.0], [9.0, 9.0]])
        tree = build_steiner_tree(pins)
        assert tree.pin_nodes[0] == 0
        assert tree.parent[0] == -1

    def test_star_topology_wirelength(self):
        # Driver at center, 4 sinks at compass points, distance 2 each.
        pins = np.asarray([[0.0, 0.0], [2.0, 0.0], [-2.0, 0.0],
                           [0.0, 2.0], [0.0, -2.0]])
        tree = build_steiner_tree(pins)
        np.testing.assert_allclose(tree.total_wirelength, 8.0)

    def test_topological_order_parents_first(self):
        pins = np.random.default_rng(3).uniform(0, 50, size=(9, 2))
        tree = build_steiner_tree(pins)
        seen = set()
        for node in tree.topological_order():
            parent = tree.parent[node]
            if parent >= 0:
                assert parent in seen
            seen.add(node)

    def test_path_to_root(self):
        pins = np.random.default_rng(4).uniform(0, 50, size=(6, 2))
        tree = build_steiner_tree(pins)
        for node in range(tree.num_nodes):
            path = tree.path_to_root(node)
            assert path[0] == node
            assert path[-1] == 0

    @settings(max_examples=30, deadline=None)
    @given(k=st.integers(2, 12), seed=st.integers(0, 10_000))
    def test_random_nets_valid_and_bounded(self, k, seed):
        """Any pin set yields a valid tree whose length is at least the
        star lower bound's best single edge and at most the full star."""
        rng = np.random.default_rng(seed)
        pins = rng.uniform(0, 100, size=(k, 2))
        tree = build_steiner_tree(pins)
        assert tree.validate()
        dists = np.abs(pins[1:] - pins[0]).sum(axis=1)
        # Wirelength can't beat the farthest sink's manhattan distance
        # and can't exceed routing every sink individually from the root.
        assert tree.total_wirelength >= dists.max() - 1e-9
        assert tree.total_wirelength <= dists.sum() + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(k=st.integers(3, 10), seed=st.integers(0, 10_000))
    def test_tree_no_worse_than_mst_star_bound(self, k, seed):
        """RSMT length is within the bbox half-perimeter lower bound and
        the MST upper bound behaviour: >= HPWL of the net."""
        rng = np.random.default_rng(seed)
        pins = rng.uniform(0, 100, size=(k, 2))
        tree = build_steiner_tree(pins)
        hpwl = (pins[:, 0].max() - pins[:, 0].min() +
                pins[:, 1].max() - pins[:, 1].min())
        assert tree.total_wirelength >= hpwl - 1e-9


class TestRCTree:
    def _wire(self):
        return WireModel(resistance_per_um=0.01, capacitance_per_um=0.2,
                         early_derate=0.9)

    def test_two_pin_elmore_hand_computed(self):
        # Driver at origin, sink at (100, 0): R = 1 kOhm, Cw = 20 fF.
        tree = build_steiner_tree(np.asarray([[0.0, 0.0], [100.0, 0.0]]))
        rc = extract_rc_tree(tree, sink_pin_caps=[5.0], wire=self._wire(),
                             corner="late")
        # Elmore = R * (Cw/2 + Cpin) = 1.0 * (10 + 5) = 15 ps.
        np.testing.assert_allclose(rc.sink_delays()[1], 15.0, rtol=1e-12)

    def test_total_cap(self):
        tree = build_steiner_tree(np.asarray([[0.0, 0.0], [100.0, 0.0]]))
        rc = extract_rc_tree(tree, sink_pin_caps=[5.0], wire=self._wire(),
                             corner="late")
        np.testing.assert_allclose(rc.total_cap, 20.0 + 5.0)

    def test_early_corner_faster(self):
        tree = build_steiner_tree(np.asarray([[0.0, 0.0], [80.0, 40.0],
                                              [20.0, 90.0]]))
        late = extract_rc_tree(tree, [4.0, 6.0], self._wire(), "late")
        early = extract_rc_tree(tree, [4.0, 6.0], self._wire(), "early")
        assert np.all(early.sink_delays()[1:] < late.sink_delays()[1:])

    def test_elmore_monotone_along_path(self):
        rng = np.random.default_rng(5)
        pins = rng.uniform(0, 200, size=(8, 2))
        tree = build_steiner_tree(pins)
        rc = extract_rc_tree(tree, np.full(7, 3.0), self._wire(), "late")
        delays = rc.elmore_delays()
        for node in range(tree.num_nodes):
            parent = tree.parent[node]
            if parent >= 0 and tree.edge_length[node] > 0:
                assert delays[node] > delays[parent]

    def test_downstream_cap_root_equals_total(self):
        pins = np.random.default_rng(6).uniform(0, 100, size=(5, 2))
        tree = build_steiner_tree(pins)
        rc = extract_rc_tree(tree, np.full(4, 2.0), self._wire(), "late")
        np.testing.assert_allclose(rc.downstream_cap()[0], rc.total_cap)

    def test_farther_sink_has_larger_delay_on_line(self):
        pins = np.asarray([[0.0, 0.0], [50.0, 0.0], [150.0, 0.0]])
        tree = build_steiner_tree(pins)
        rc = extract_rc_tree(tree, [3.0, 3.0], self._wire(), "late")
        delays = rc.sink_delays()
        assert delays[2] > delays[1] > 0


class TestRouteDesign:
    def test_every_net_routed(self, small_design, routed):
        assert set(routed.nets) == {n.name for n in small_design.nets}

    def test_wirelength_positive(self, routed):
        assert routed.total_wirelength > 0

    def test_sink_delays_aligned(self, small_design, routed):
        for net in small_design.nets:
            routed_net = routed.nets[net.name]
            assert len(routed_net.sink_elmore("late")) == len(net.sinks)

    def test_sink_delay_4_shape_and_order(self, small_design, routed):
        net = max(small_design.nets, key=lambda n: n.degree)
        d4 = routed.nets[net.name].sink_delay_4()
        assert d4.shape == (len(net.sinks), 4)
        # Early columns (0, 1) are faster than late columns (2, 3).
        assert np.all(d4[:, 0] <= d4[:, 2] + 1e-12)

    def test_load_cap_late_exceeds_early(self, small_design, routed):
        for routed_net in routed.nets.values():
            assert routed_net.load_cap("late") >= \
                routed_net.load_cap("early")

    def test_load_includes_sink_pin_caps(self, small_design, routed):
        net = max(small_design.nets, key=lambda n: n.degree)
        routed_net = routed.nets[net.name]
        pin_cap_sum = sum(
            small_design.pin_capacitance(s)[2:4].mean()
            for s in net.sinks)
        assert routed_net.load_cap("late") > pin_cap_sum
