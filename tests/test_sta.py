"""STA engine: levelization, propagation semantics, required times, slack.

Includes a hand-constructed buffer chain whose arrival times are checked
against manual LUT + Elmore arithmetic — the engine is the label
generator for every experiment, so it gets the strictest tests.
"""

import numpy as np
import pytest

from repro.liberty import make_sky130_like_library
from repro.netlist.design import Design
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import (CORNER_INDEX, EARLY_COLS, LATE_COLS, LN9,
                       build_timing_graph, degrade_slew, run_sta,
                       timing_summary, format_path_report)
from repro.sta.engine import derive_clock_period


def build_buffer_chain(library, n_buffers=3):
    """in -> BUF -> BUF -> ... -> out, one net per stage."""
    design = Design("chain", library)
    pi = design.add_port("in0", "input")
    prev = pi
    for i in range(n_buffers):
        buf = design.add_cell(f"b{i}", library["BUF_X1"])
        design.add_net(f"n{i}", prev, [buf.pins["A"]])
        prev = buf.pins["Y"]
    po = design.add_port("out0", "output")
    design.add_net("n_out", prev, [po])
    return design


@pytest.fixture(scope="module")
def chain_setup():
    library = make_sky130_like_library(seed=2022)
    design = build_buffer_chain(library, 3)
    placement = place_design(design, seed=0)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, clock_period=3000.0,
                     graph=graph)
    return library, design, placement, routing, graph, result


class TestGraphConstruction:
    def test_nodes_exclude_clock_pins(self, small_design, timing_graph):
        for pin in timing_graph.node_pins:
            assert not pin.is_clock

    def test_edge_counts_match_stats(self, small_design, timing_graph):
        stats = small_design.stats()
        assert len(timing_graph.net_edges) == stats["net_edges"]
        assert len(timing_graph.cell_edges) == stats["cell_edges"]

    def test_levels_strictly_increase_along_edges(self, timing_graph):
        level = timing_graph.level
        for edge in timing_graph.net_edges + timing_graph.cell_edges:
            assert level[edge.dst] > level[edge.src]

    def test_sources_at_level_zero(self, timing_graph):
        for node in timing_graph.source_nodes():
            assert timing_graph.level[node] == 0

    def test_source_nodes_are_startpoints(self, small_design, timing_graph):
        starts = {p.index for p in small_design.startpoints()}
        for node in timing_graph.source_nodes():
            pin = timing_graph.node_pins[node]
            # Sources are startpoints (or degenerate dangling ports).
            assert pin.index in starts or pin.net is None

    def test_endpoints_match_design(self, small_design, timing_graph):
        expected = {p.index for p in small_design.endpoints()}
        got = {timing_graph.node_pins[n].index
               for n in timing_graph.endpoint_nodes()}
        assert got == expected

    def test_nodes_by_level_partition(self, timing_graph):
        buckets = timing_graph.nodes_by_level()
        total = sum(len(b) for b in buckets)
        assert total == timing_graph.num_nodes

    def test_in_out_adjacency_symmetry(self, timing_graph):
        out_total = sum(len(timing_graph.out_net_edges(n))
                        for n in range(timing_graph.num_nodes))
        assert out_total == len(timing_graph.net_edges)


class TestBufferChain:
    def test_arrival_strictly_increases_along_chain(self, chain_setup):
        _lib, design, _pl, _rt, graph, result = chain_setup
        pins = [p for p in design.pins if not p.is_clock]
        ats = [result.arrival[graph.node(p), 2] for p in pins]
        # The chain is a path in pin order; arrivals are non-decreasing.
        assert all(b >= a for a, b in zip(ats, ats[1:]))

    def test_first_stage_hand_computed(self, chain_setup):
        library, design, _pl, routing, graph, result = chain_setup
        buf = design.cells[0]
        arc = buf.cell_type.arc("A", "Y")
        in_node = graph.node(buf.pins["A"])
        out_node = graph.node(buf.pins["Y"])
        load = routing.nets[buf.pins["Y"].net.name].load_cap("late")
        col = CORNER_INDEX[("late", "rise")]
        in_slew = result.slew[in_node, col]
        in_at = result.arrival[in_node, col]
        expected = in_at + float(
            arc.lut("delay", "late", "rise").lookup(in_slew, load))
        np.testing.assert_allclose(result.arrival[out_node, col], expected,
                                   rtol=1e-12)

    def test_net_arc_adds_elmore(self, chain_setup):
        _lib, design, _pl, routing, graph, result = chain_setup
        net = design.nets[0]        # PI -> first buffer A
        src = graph.node(net.driver)
        dst = graph.node(net.sinks[0])
        for corner, col_pair in (("early", EARLY_COLS), ("late", LATE_COLS)):
            elmore = routing.nets[net.name].sink_elmore(corner)[0]
            for col in col_pair:
                np.testing.assert_allclose(
                    result.arrival[dst, col],
                    result.arrival[src, col] + elmore, rtol=1e-12)

    def test_net_slew_degradation(self, chain_setup):
        _lib, design, _pl, routing, graph, result = chain_setup
        net = design.nets[0]
        src = graph.node(net.driver)
        dst = graph.node(net.sinks[0])
        col = CORNER_INDEX[("late", "fall")]
        elmore = routing.nets[net.name].sink_elmore("late")[0]
        np.testing.assert_allclose(
            result.slew[dst, col],
            degrade_slew(result.slew[src, col], elmore), rtol=1e-12)

    def test_primary_input_launch(self, chain_setup):
        library, design, _pl, _rt, graph, result = chain_setup
        node = graph.node(design.primary_inputs[0])
        np.testing.assert_allclose(result.arrival[node], 0.0)
        np.testing.assert_allclose(result.slew[node],
                                   library.default_input_slew)

    def test_po_slack_consistency(self, chain_setup):
        _lib, design, _pl, _rt, graph, result = chain_setup
        node = graph.node(design.primary_outputs[0])
        slack = result.slack
        for col in LATE_COLS:
            np.testing.assert_allclose(
                slack[node, col],
                result.required[node, col] - result.arrival[node, col])
        for col in EARLY_COLS:
            np.testing.assert_allclose(
                slack[node, col],
                result.arrival[node, col] - result.required[node, col])


class TestFullDesignSTA:
    def test_arrival_finite_everywhere(self, sta_result):
        assert np.all(np.isfinite(sta_result.arrival))
        assert np.all(np.isfinite(sta_result.slew))

    def test_early_arrival_not_after_late(self, sta_result):
        at = sta_result.arrival
        assert np.all(at[:, 0] <= at[:, 2] + 1e-9)   # rise
        assert np.all(at[:, 1] <= at[:, 3] + 1e-9)   # fall

    def test_arrivals_nonnegative(self, sta_result):
        assert np.all(sta_result.arrival >= -1e-9)

    def test_slews_positive(self, sta_result):
        assert np.all(sta_result.slew > 0)

    def test_endpoint_required_set(self, sta_result):
        eps = np.nonzero(sta_result.endpoint_mask)[0]
        assert len(eps) > 0
        assert np.all(np.isfinite(sta_result.required[eps]))

    def test_register_rat_from_setup_hold(self, small_design, sta_result):
        graph = sta_result.graph
        period = sta_result.clock_period
        for node in np.nonzero(sta_result.endpoint_mask)[0]:
            pin = graph.node_pins[node]
            if pin.is_primary_output:
                continue
            setup = pin.cell.cell_type.setup
            hold = pin.cell.cell_type.hold
            for col in LATE_COLS:
                np.testing.assert_allclose(sta_result.required[node, col],
                                           period - setup[col])
            for col in EARLY_COLS:
                np.testing.assert_allclose(sta_result.required[node, col],
                                           hold[col])

    def test_required_propagates_backward(self, sta_result):
        """Along the critical path, late slack is non-increasing toward
        the endpoint (the endpoint is the binding constraint)."""
        path = sta_result.critical_path("setup")
        assert len(path) >= 2
        slack = sta_result.slack
        end_node, end_col = path[-1]
        end_slack = slack[end_node, end_col]
        for node, col in path:
            if np.isfinite(slack[node, col]):
                assert slack[node, col] <= end_slack + 1e-6

    def test_critical_path_arrivals_increase(self, sta_result):
        path = sta_result.critical_path("setup")
        ats = [sta_result.arrival[n, c] for n, c in path]
        assert all(b >= a - 1e-9 for a, b in zip(ats, ats[1:]))

    def test_critical_path_starts_at_source(self, sta_result):
        node, _col = sta_result.critical_path("setup")[0]
        assert sta_result.graph.fanin_degree(node) == 0

    def test_clock_period_straddles_slack(self, sta_result):
        """Auto-derived clock period leaves some endpoints violating and
        some meeting timing (the 0.85 quantile rule)."""
        _eps, slack = sta_result.endpoint_slack()
        setup = np.nanmin(slack[:, LATE_COLS], axis=1)
        assert (setup < 0).any()
        assert (setup > 0).any()

    def test_wns_tns_signs(self, sta_result):
        assert sta_result.wns("setup") <= 0
        assert sta_result.tns("setup") <= sta_result.wns("setup")

    def test_summary_keys(self, sta_result):
        summary = timing_summary(sta_result)
        assert summary["num_endpoints"] == int(
            sta_result.endpoint_mask.sum())
        assert summary["setup_wns"] <= 0
        assert summary["setup_violations"] > 0

    def test_path_report_formats(self, sta_result):
        report = format_path_report(sta_result, "setup")
        assert "Critical setup path" in report
        assert "slack" in report

    def test_net_delay_labels_at_sinks(self, small_design, sta_result):
        graph = sta_result.graph
        for edge in graph.net_edges[:25]:
            assert np.all(sta_result.net_delay[edge.dst] >= 0)

    def test_cell_arc_delays_positive(self, sta_result):
        assert np.all(sta_result.cell_arc_delay > 0)

    def test_cell_arc_early_below_late(self, sta_result):
        d = sta_result.cell_arc_delay
        assert np.all(d[:, 0] <= d[:, 2] + 1e-9)
        assert np.all(d[:, 1] <= d[:, 3] + 1e-9)

    def test_fixed_clock_period_respected(self, small_design, placed,
                                          routed, timing_graph):
        result = run_sta(small_design, placed, routed, clock_period=12345.0,
                         graph=timing_graph)
        assert result.clock_period == 12345.0

    def test_deterministic(self, small_design, placed, routed):
        a = run_sta(small_design, placed, routed, clock_period=2000.0)
        b = run_sta(small_design, placed, routed, clock_period=2000.0)
        np.testing.assert_allclose(a.arrival, b.arrival)
        np.testing.assert_allclose(a.required, b.required,
                                   equal_nan=True)


class TestDegradeSlew:
    def test_zero_elmore_identity(self):
        np.testing.assert_allclose(degrade_slew(40.0, 0.0), 40.0)

    def test_monotone_in_delay(self):
        assert degrade_slew(40.0, 20.0) < degrade_slew(40.0, 50.0)

    def test_formula(self):
        np.testing.assert_allclose(degrade_slew(30.0, 10.0),
                                   np.sqrt(900.0 + (LN9 * 10.0) ** 2))
