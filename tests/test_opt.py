"""Physical optimization: sizing, buffering, timing-driven placement."""

import numpy as np
import pytest

from repro.liberty import make_sky130_like_library, sizing_alternatives
from repro.netlist import build_benchmark, validate_design
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import build_timing_graph, run_sta
from repro.sta.incremental import IncrementalTimer
from repro.opt import (buffer_critical_nets, net_criticality_weights,
                       optimize_placement, predicted_pin_slack,
                       size_for_setup)


@pytest.fixture(scope="module")
def flow():
    library = make_sky130_like_library()
    design = build_benchmark("zipdiv", library)
    placement = place_design(design, seed=1)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph)
    return library, design, placement, routing, graph, result


class TestSizingAlternatives:
    def test_variants_sorted_by_drive(self, library):
        variants = sizing_alternatives(library, library["INV_X1"])
        assert [v.name for v in variants] == ["INV_X1", "INV_X2", "INV_X4"]

    def test_eco_variants_available_for_gates(self, library):
        for base in ("NAND2_X1", "XOR2_X1", "MUX2_X1", "AOI21_X1"):
            variants = sizing_alternatives(library, library[base])
            assert len(variants) >= 2, base

    def test_variants_pin_compatible(self, library):
        for cell in library.cells.values():
            for variant in sizing_alternatives(library, cell):
                assert set(variant.pins) == set(cell.pins)

    def test_eco_cells_not_in_generated_designs(self, library):
        design = build_benchmark("usb", library)
        for cell in design.cells:
            assert cell.cell_type.use_in_synthesis


class TestSizing:
    def test_sizing_improves_wns(self, flow):
        library, design, placement, routing, graph, result = flow
        import copy
        timer = IncrementalTimer(design, placement, routing, graph, result)
        before = timer.wns("setup")
        outcome = size_for_setup(timer, max_swaps=10)
        assert outcome.final_wns >= before
        assert outcome.final_wns == pytest.approx(timer.wns("setup"))
        # Kept swaps all actually upsize.
        for _cell, old, new in outcome.swaps:
            assert float(new.rsplit("_X", 1)[1]) > float(
                old.rsplit("_X", 1)[1])

    def test_sizing_result_consistent_with_full_sta(self, flow):
        library, design, placement, _rt, graph, _res = flow
        # The fixture's design was mutated by the previous test; verify
        # the timer's view matches a fresh full analysis.
        routing = route_design(design, placement)
        reference = run_sta(design, placement, routing,
                            clock_period=design.clock_period, graph=graph)
        assert np.isfinite(reference.wns("setup"))


class TestBuffering:
    def test_buffering_never_worsens(self):
        library = make_sky130_like_library()
        design = build_benchmark("salsa20", library, scale=0.4)
        placement = place_design(design, seed=1)
        routing = route_design(design, placement)
        result = run_sta(design, placement, routing)
        before = result.wns("setup")
        result, outcome = buffer_critical_nets(design, placement, result,
                                               max_buffers=3)
        assert outcome.final_wns >= before - 1e-9
        validate_design(design)

    def test_inserted_buffers_in_netlist(self):
        library = make_sky130_like_library()
        design = build_benchmark("salsa20", library, scale=0.4)
        placement = place_design(design, seed=1)
        routing = route_design(design, placement)
        result = run_sta(design, placement, routing)
        n_cells = len(design.cells)
        result, outcome = buffer_critical_nets(design, placement, result,
                                               max_buffers=3)
        assert len(design.cells) == n_cells + len(outcome.inserted)
        assert len(placement.pin_xy) == len(design.pins)


class TestPredictedPinSlack:
    def test_matches_truth_on_perfect_prediction(self, hetero):
        """Feeding ground-truth delays through the backward sweep must
        reproduce the STA's endpoint slack at the endpoints."""
        class _Perfect:
            def numpy_arrival(self):
                return hetero.arrival

            @property
            def net_delay(self):
                from repro import nn
                return nn.Tensor(hetero.net_delay)

            def cell_delay_full(self, n):
                return hetero.cell_arc_delay

        slack = predicted_pin_slack(hetero, _Perfect())
        eps = hetero.is_endpoint
        truth = hetero.slack()[:, 2:4]
        np.testing.assert_allclose(slack[eps], truth, atol=1e-9)

    def test_internal_nodes_finite(self, hetero):
        class _Perfect:
            def numpy_arrival(self):
                return hetero.arrival

            @property
            def net_delay(self):
                from repro import nn
                return nn.Tensor(hetero.net_delay)

            def cell_delay_full(self, n):
                return hetero.cell_arc_delay

        slack = predicted_pin_slack(hetero, _Perfect())
        # Every node on a path to an endpoint has a finite slack.
        frac_finite = np.isfinite(slack).mean()
        assert frac_finite > 0.8


class TestTimingDrivenPlacement:
    def test_weights_increase_for_critical_nets(self, flow):
        _lib, design, _pl, _rt, graph, result = flow
        from repro.graphdata import TIME_SCALE
        node_map = {pin.index: node
                    for node, pin in enumerate(graph.node_pins)}
        pin_slack = result.slack[:, 2:4] / TIME_SCALE
        weights = net_criticality_weights(
            design, node_map, pin_slack,
            result.clock_period / TIME_SCALE, alpha=5.0)
        assert weights
        assert max(weights.values()) > 1.0
        assert min(weights.values()) >= 1.0

    def test_weighted_placement_shrinks_heavy_nets(self, library):
        design = build_benchmark("usb", library)
        base = place_design(design, seed=3)
        target = max(design.nets, key=lambda n: n.degree)
        from repro.placement import net_hpwl
        heavy = place_design(design, seed=3,
                             net_weights={target.name: 50.0})
        assert net_hpwl(target, heavy.pin_xy) < \
            net_hpwl(target, base.pin_xy) + 1e-9

    def test_sta_driven_optimization_improves_wns(self):
        library = make_sky130_like_library()
        design = build_benchmark("usb", library)
        history = optimize_placement(design, evaluator="sta", rounds=2,
                                     seed=2)
        first = history.iterations[0]["wns"]
        assert history.final_wns >= first - 1e-9
        assert history.evaluator_seconds > 0

    def test_gnn_evaluator_requires_model(self):
        library = make_sky130_like_library()
        design = build_benchmark("usb", library)
        with pytest.raises(ValueError):
            optimize_placement(design, evaluator="gnn", model=None)
