"""Run ledger, bench regression gating, tape profiler and HTML report.

The ledger tests prove the durability contract (atomic appends, corrupt
line tolerance, schema stamping); the diff tests prove the regression
gate direction and tolerance semantics on synthetic payloads; the
profiler tests prove patch/unpatch hygiene and that per-op self time
adds up to the real step cost; the report tests prove the stdlib HTML
rendering consumes real ledger records.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bench import (bench_fingerprint, check_bench_file,
                         diff_payloads, find_baseline,
                         format_diff_report, record_bench_payload)
from repro.obs import (RunLedger, config_fingerprint, default_ledger,
                       new_run_id, profile, record_run)
from repro.obs.profile import format_profile_table, profile_train_step
from repro.obs.report import render_html_report


# -- ledger --------------------------------------------------------------------
class TestRunLedger:
    def test_append_read_round_trip(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        record = ledger.append({"kind": "train_timing",
                                "loss": [np.float64(1.5), 0.5],
                                "epochs": np.int64(2)})
        from repro.obs.runs import RUNS_SCHEMA_VERSION
        assert record["schema_version"] == RUNS_SCHEMA_VERSION
        assert record["run_id"].startswith("train_timing-")
        assert record["recorded_at"].endswith("Z")
        back = ledger.read()
        assert len(back) == 1
        assert back[0]["loss"] == [1.5, 0.5]
        assert back[0]["epochs"] == 2
        assert back[0]["run_id"] == record["run_id"]

    def test_appends_accumulate_and_filter_by_kind(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        for kind in ("train_timing", "train_gcnii", "bench_compute"):
            ledger.append({"kind": kind})
        assert len(ledger.read()) == 3
        assert len(ledger.read(kind="train")) == 2
        assert len(ledger.read(kind="bench")) == 1
        latest = ledger.latest(kind="train")
        assert latest["kind"] == "train_gcnii"

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        first = ledger.append({"kind": "train_timing"})
        with open(ledger.path, "a") as fh:
            fh.write('{"kind": "train_timing", "truncat\n')   # torn write
            fh.write("not json at all\n")
            fh.write('"a bare string"\n')                     # not a dict
            fh.write('{"kind": "x"}\n')                       # no run_id
        second = ledger.append({"kind": "bench_compute"})
        records, corrupt = ledger.scan()
        assert [r["run_id"] for r in records] == \
            [first["run_id"], second["run_id"]]
        assert corrupt == 4

    def test_get_by_exact_id_and_unique_prefix(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        record = ledger.append({"kind": "train_timing"})
        ledger.append({"kind": "bench_compute"})
        assert ledger.get(record["run_id"])["kind"] == "train_timing"
        assert ledger.get("train_timing-")["run_id"] == record["run_id"]
        assert ledger.get("no-such-run") is None

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "nowhere"))
        assert ledger.read() == []
        assert ledger.latest() is None

    def test_default_ledger_respects_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "envdir"))
        record = record_run("train_timing", final_loss=1.0)
        assert record is not None
        assert os.path.dirname(default_ledger().path) == \
            str(tmp_path / "envdir")
        assert default_ledger().read()[0]["run_id"] == record["run_id"]

    def test_config_fingerprint_stable_and_order_free(self):
        a = config_fingerprint(lr=1e-3, designs=["b", "a"],
                               arr=np.array([1.0, 2.0]))
        b = config_fingerprint(designs=["b", "a"],
                               arr=np.array([1.0, 2.0]), lr=1e-3)
        assert a == b and len(a) == 16
        assert a != config_fingerprint(lr=2e-3, designs=["b", "a"],
                                       arr=np.array([1.0, 2.0]))

    def test_run_ids_are_unique(self):
        ids = {new_run_id("train") for _ in range(64)}
        assert len(ids) == 64


# -- bench diff gate -----------------------------------------------------------
def _compute_payload(train_step_ms, run_id=None, forward_ms=10.0):
    return {
        "benchmark": "compute", "schema_version": 1,
        "run_id": run_id or new_run_id("bench_compute"),
        "generated_at": "2026-01-01T00:00:00Z",
        "params": {"scale": 1.0},
        "backends": ["naive", "fused"], "stages": ["forward", "train_step"],
        "designs": [{"name": "aes256",
                     "times_ms": {"fused": {"forward": forward_ms,
                                            "train_step": train_step_ms}}}],
        "summary": {"speedup_train_step_geomean": 1.5},
    }


def _serving_payload(rps, p99=20.0, run_id=None):
    return {
        "benchmark": "serving", "schema_version": 1,
        "run_id": run_id or new_run_id("bench_serving"),
        "generated_at": "2026-01-01T00:00:00Z",
        "params": {"designs": ["spm"], "model": "timing-full",
                   "scale": 1.0, "batch_window_ms": 2.0, "max_batch": 16},
        "clients": 8, "throughput_rps": rps,
        "latency_p50_ms": 5.0, "latency_p99_ms": p99,
    }


class TestBenchDiff:
    def test_identical_payloads_pass(self):
        base = _compute_payload(100.0)
        cur = _compute_payload(100.0)
        deltas = diff_payloads(cur, base, tolerance=0.5)
        assert len(deltas) == 2
        assert not any(d.regressed for d in deltas)

    def test_time_regression_fires_past_tolerance_only(self):
        base = _compute_payload(100.0)
        within = diff_payloads(_compute_payload(149.0), base, tolerance=0.5)
        assert not any(d.regressed for d in within)
        past = diff_payloads(_compute_payload(151.0), base, tolerance=0.5)
        bad = [d for d in past if d.regressed]
        assert [d.metric for d in bad] == ["aes256/fused/train_step_ms"]
        assert bad[0].ratio == pytest.approx(1.51)

    def test_faster_is_never_a_regression(self):
        base = _compute_payload(100.0)
        deltas = diff_payloads(_compute_payload(1.0), base, tolerance=0.5)
        assert not any(d.regressed for d in deltas)
        assert any(d.improved for d in deltas)

    def test_serving_throughput_direction_is_inverted(self):
        base = _serving_payload(100.0)
        drop = diff_payloads(_serving_payload(49.0), base, tolerance=0.5)
        assert [d.metric for d in drop if d.regressed] == ["throughput_rps"]
        rise = diff_payloads(_serving_payload(500.0, p99=200.0), base,
                             tolerance=0.5)
        assert [d.metric for d in rise if d.regressed] == ["latency_p99_ms"]

    def test_fingerprint_ignores_timings_but_not_shape(self):
        assert bench_fingerprint(_compute_payload(100.0)) == \
            bench_fingerprint(_compute_payload(999.0))
        other = _compute_payload(100.0)
        other["designs"][0]["name"] = "spm"
        assert bench_fingerprint(other) != \
            bench_fingerprint(_compute_payload(100.0))

    def test_baseline_excludes_own_run_id(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        payload = _compute_payload(100.0)
        record_bench_payload(payload, ledger)
        # only its own record in the ledger -> no baseline to gate on
        assert find_baseline(payload, ledger) is None
        newer = _compute_payload(120.0)
        assert find_baseline(newer, ledger)["run_id"] == payload["run_id"]

    def test_record_is_idempotent_per_run_id(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        payload = _compute_payload(100.0)
        record_bench_payload(payload, ledger)
        record_bench_payload(payload, ledger)
        assert len(ledger.read(kind="bench")) == 1

    def test_check_bench_file_gate(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        path = str(tmp_path / "BENCH_compute.json")
        assert check_bench_file(path, ledger)[0] == "missing"
        with open(path, "w") as fh:
            json.dump(_compute_payload(100.0), fh)
        status, _deltas = check_bench_file(path, ledger, record=True)
        assert status == "no-baseline"
        # identical re-run under a new run id: ok
        with open(path, "w") as fh:
            json.dump(_compute_payload(100.0), fh)
        status, deltas = check_bench_file(path, ledger, tolerance=0.5)
        assert status == "ok" and len(deltas) == 2
        # artificially slowed past the threshold: regression
        with open(path, "w") as fh:
            json.dump(_compute_payload(200.0), fh)
        status, deltas = check_bench_file(path, ledger, tolerance=0.5)
        assert status == "regression"
        report = format_diff_report(path, status, deltas)
        assert "REGRESSION" in report and "train_step" in report

    def test_bench_writers_record_runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        from repro.bench.compute import (ComputeBenchResult, DesignBench,
                                         write_compute_bench_json)

        row = DesignBench(name="unit", nodes=10, net_edges=5,
                          cell_edges=5, levels=3)
        row.times_ms = {"fused": {"float64": {"forward": 1.0}}}
        result = ComputeBenchResult(backends=["fused"],
                                    dtypes=["float64"], stages=["forward"],
                                    reps=1, warmup=0, designs=[row],
                                    summary={})
        path = str(tmp_path / "BENCH_compute.json")
        write_compute_bench_json(result, path, params={"scale": 1.0})
        payload = json.load(open(path))
        assert payload["run_id"].startswith("bench_compute-")
        recorded = default_ledger().read(kind="bench_compute")
        assert [r["run_id"] for r in recorded] == [payload["run_id"]]
        assert recorded[0]["payload"]["designs"][0]["name"] == "unit"


# -- trainer ledger integration ------------------------------------------------
class TestTrainingRuns:
    def test_train_records_run_with_losses_and_eval(self, hetero_pair):
        from repro.models import ModelConfig
        from repro.training import TrainConfig, train_timing_gnn

        cfg = ModelConfig.fast()
        tcfg = TrainConfig(epochs=2, log_every=0)
        _model, history = train_timing_gnn(hetero_pair, cfg, tcfg)
        assert history.run_id.startswith("train_timing-")
        record = default_ledger().get(history.run_id)
        assert record is not None
        assert record["loss"] == pytest.approx(history.loss,
                                               rel=1e-4, abs=1e-5)
        assert record["backend"] in ("fused", "naive")
        assert len(record["fingerprint"]) == 16
        assert set(record["eval"]) == {g.name for g in hetero_pair}
        for metrics in record["eval"].values():
            assert "arrival_r2" in metrics and "slack_r2" in metrics
        scatter = record["slack_scatter"]
        assert scatter["design"] == hetero_pair[0].name
        assert len(scatter["true"]) == len(scatter["pred"]) > 0
        assert all(np.isfinite(scatter["true"]))

    def test_train_metrics_carry_run_label(self, hetero_pair):
        from repro.models import ModelConfig
        from repro.obs import get_registry
        from repro.training import TrainConfig, train_timing_gnn

        _model, history = train_timing_gnn(
            hetero_pair, ModelConfig.fast(), TrainConfig(epochs=1))
        snapshot = get_registry().snapshot()
        runs = {entry["labels"].get("run")
                for entry in snapshot.get("repro_train_epochs_total", [])}
        assert history.run_id in runs

    def test_same_config_same_fingerprint(self, hetero_pair):
        from repro.models import ModelConfig
        from repro.training import TrainConfig, train_timing_gnn

        cfg, tcfg = ModelConfig.fast(), TrainConfig(epochs=1)
        train_timing_gnn(hetero_pair, cfg, tcfg)
        train_timing_gnn(hetero_pair, cfg, tcfg)
        records = default_ledger().read(kind="train_timing")
        assert len(records) == 2
        assert records[0]["fingerprint"] == records[1]["fingerprint"]
        assert records[0]["run_id"] != records[1]["run_id"]


# -- tape profiler -------------------------------------------------------------
class TestProfiler:
    def test_profile_scopes_forward_and_backward_ops(self):
        from repro import nn

        with profile() as prof:
            x = nn.Tensor(np.random.default_rng(0).normal(size=(40, 8)),
                          requires_grad=True)
            w = nn.Tensor(np.random.default_rng(1).normal(size=(8, 4)),
                          requires_grad=True)
            ((x @ w).relu().sum()).backward(free=True)
        names = set(prof.stats)
        assert {"matmul", "relu", "sum", "autograd.backward"} <= names
        assert any(name.startswith("bwd:") for name in names)
        matmul = prof.stats["matmul"]
        assert matmul.calls == 1 and matmul.bytes_out == 40 * 4 * 8
        assert prof.wall_ms > 0
        assert 0 < prof.total_self_ms() <= prof.wall_ms * 1.5

    def test_patches_are_removed_on_exit(self):
        from repro import nn
        from repro.nn import kernels
        from repro.nn.tensor import Tensor

        before = (Tensor.__matmul__, kernels.mlp_chain, nn.segment_minmax)
        with profile():
            assert hasattr(Tensor.__matmul__, "__profiled_original__")
            assert hasattr(kernels.mlp_chain, "__profiled_original__")
            assert hasattr(nn.segment_minmax, "__profiled_original__")
        assert (Tensor.__matmul__, kernels.mlp_chain,
                nn.segment_minmax) == before

    def test_not_reentrant(self):
        with profile():
            with pytest.raises(RuntimeError):
                with profile():
                    pass

    def test_stale_tape_closures_no_op_after_exit(self):
        from repro import nn

        with profile():
            x = nn.Tensor(np.ones((3, 3)), requires_grad=True)
            y = (x * 2.0).sum()
        # backward AFTER the scope: wrapped closures fall through cleanly
        y.backward(free=True)
        assert x.grad is not None

    def test_self_time_excludes_children(self):
        from repro import nn
        from repro.nn import kernels

        t = nn.Tensor(np.random.default_rng(2).normal(size=(6, 4)))
        with profile() as prof:
            kernels.segment_minmax_csr(t, np.array([0, 0, 0, 1, 1, 1]), 2)
        stat = prof.stats.get("segment_minmax_csr")
        assert stat is not None
        assert stat.self_ms <= stat.total_ms

    def test_profile_train_step_total_tracks_wall_time(self, hetero):
        prof, reference_ms = profile_train_step(hetero, backend="fused",
                                                warmup=1, reps=3)
        total = prof.total_self_ms()
        assert reference_ms > 0
        # loose band: CI boxes are noisy; the CLI prints the exact ratio
        assert 0.5 * reference_ms < total < 1.8 * reference_ms
        names = set(prof.stats)
        assert "adam.step" in names and "autograd.backward" in names
        table = format_profile_table(prof, top=5,
                                     reference_ms=reference_ms)
        assert "TOTAL (self)" in table and "% of unprofiled" in table
        assert "more ops" in table

    def test_naive_backend_profiles_composed_ops(self, hetero):
        from repro.models import ModelConfig

        prof, _ref = profile_train_step(hetero, backend="naive",
                                        cfg=ModelConfig.fast(),
                                        warmup=1, reps=1)
        # the naive backend decomposes fused kernels into tensor ops
        assert any(name.startswith("bwd:") for name in prof.stats)
        assert len(prof.stats) > 10
        assert prof.total_self_ms() > 0


# -- HTML report ---------------------------------------------------------------
class TestHtmlReport:
    def _seed_ledger(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        ledger.append({
            "kind": "train_timing", "backend": "fused",
            "loss": [3.0, 2.0, 1.5], "wall_time_s": 1.0,
            "eval": {"spm": {"arrival_r2": 0.91, "slack_r2": 0.8},
                     "aes256": {"arrival_r2": 0.7, "slack_r2": 0.6}},
            "slack_scatter": {"design": "spm", "unit": "ns",
                              "true": [0.1, 0.5, -0.2],
                              "pred": [0.12, 0.44, -0.3]}})
        record_bench_payload(_compute_payload(100.0), ledger)
        record_bench_payload(_serving_payload(80.0), ledger)
        return ledger

    def test_report_renders_all_sections(self, tmp_path):
        page = render_html_report(ledger=self._seed_ledger(tmp_path))
        for probe in ("per-epoch training loss", "Per-design R²",
                      "Bench trajectory", "Figure 4", "<svg",
                      "polyline", "train_timing-", "throughput"):
            assert probe in page
        assert page.startswith("<!doctype html>")

    def test_report_on_empty_ledger_is_valid(self, tmp_path):
        page = render_html_report(ledger=RunLedger(str(tmp_path / "empty")))
        assert "no training runs recorded" in page
        assert "no bench runs recorded" in page

    def test_write_html_report(self, tmp_path):
        from repro.obs import write_html_report

        out = str(tmp_path / "report.html")
        assert write_html_report(out,
                                 ledger=self._seed_ledger(tmp_path)) == out
        assert os.path.getsize(out) > 1000
