"""Autograd correctness: every op's gradient vs. numerical differentiation.

The GNN framework is hand-rolled, so each operation gets an exact
finite-difference check plus shape/semantic tests; hypothesis drives
randomized cases for the structural (gather/scatter/segment) ops.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.nn.tensor import Tensor


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn wrt array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(make_output, x0, atol=1e-5):
    """Compare autograd and numerical gradients for input array x0.

    Always runs at float64 regardless of the session dtype: a central
    difference with eps=1e-6 is meaningless at float32 precision.
    """
    with nn.use_dtype("float64"):
        x = Tensor(x0.copy(), requires_grad=True)
        out = make_output(x)
        out.backward()
        auto = x.grad

        def scalar_fn(arr):
            return float(make_output(Tensor(arr)).data.sum())

        num = numerical_grad(scalar_fn, x0.copy())
    np.testing.assert_allclose(auto, num, atol=atol, rtol=1e-4)


class TestElementwiseGrads:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.x = self.rng.normal(size=(4, 3))

    def test_add(self):
        check_grad(lambda t: (t + 2.5).sum(), self.x)

    def test_add_tensor(self):
        other = Tensor(self.rng.normal(size=(4, 3)))
        check_grad(lambda t: (t + other).sum(), self.x)

    def test_sub(self):
        check_grad(lambda t: (t - 1.2).sum(), self.x)

    def test_rsub(self):
        check_grad(lambda t: (1.2 - t).sum(), self.x)

    def test_mul(self):
        other = Tensor(self.rng.normal(size=(4, 3)))
        check_grad(lambda t: (t * other).sum(), self.x)

    def test_div(self):
        other = Tensor(self.rng.uniform(0.5, 2.0, size=(4, 3)))
        check_grad(lambda t: (t / other).sum(), self.x)

    def test_rdiv(self):
        x = np.abs(self.x) + 0.5
        check_grad(lambda t: (2.0 / t).sum(), x)

    def test_neg(self):
        check_grad(lambda t: (-t).sum(), self.x)

    def test_pow(self):
        x = np.abs(self.x) + 0.5
        check_grad(lambda t: (t ** 3).sum(), x)

    def test_exp(self):
        check_grad(lambda t: t.exp().sum(), self.x)

    def test_log(self):
        x = np.abs(self.x) + 0.5
        check_grad(lambda t: t.log().sum(), x)

    def test_sqrt(self):
        x = np.abs(self.x) + 0.5
        check_grad(lambda t: t.sqrt().sum(), x)

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid().sum(), self.x)

    def test_tanh(self):
        check_grad(lambda t: t.tanh().sum(), self.x)

    def test_softplus(self):
        check_grad(lambda t: t.softplus().sum(), self.x)

    def test_relu(self):
        x = self.x + 0.05  # keep away from the kink
        check_grad(lambda t: t.relu().sum(), x)

    def test_leaky_relu(self):
        x = self.x + 0.05
        check_grad(lambda t: t.leaky_relu(0.1).sum(), x)

    def test_softmax(self):
        weight = Tensor(self.rng.normal(size=(4, 3)))
        check_grad(lambda t: (t.softmax(axis=1) * weight).sum(), self.x)


class TestShapeAndReduceGrads:
    def setup_method(self):
        self.rng = np.random.default_rng(1)
        self.x = self.rng.normal(size=(5, 4))

    def test_sum_all(self):
        check_grad(lambda t: t.sum(), self.x)

    def test_sum_axis0(self):
        w = Tensor(self.rng.normal(size=(4,)))
        check_grad(lambda t: (t.sum(axis=0) * w).sum(), self.x)

    def test_sum_keepdims(self):
        check_grad(lambda t: t.sum(axis=1, keepdims=True).sum(), self.x)

    def test_mean(self):
        check_grad(lambda t: t.mean().sum(), self.x)

    def test_max_axis(self):
        # Perturb to avoid exact ties.
        x = self.x + np.arange(20).reshape(5, 4) * 1e-3
        check_grad(lambda t: t.max(axis=1).sum(), x)

    def test_reshape(self):
        check_grad(lambda t: (t.reshape(2, 10) ** 2).sum(), self.x)

    def test_transpose(self):
        w = Tensor(self.rng.normal(size=(4, 5)))
        check_grad(lambda t: (t.T * w).sum(), self.x)

    def test_getitem(self):
        check_grad(lambda t: (t[1:4] ** 2).sum(), self.x)

    def test_matmul(self):
        w = Tensor(self.rng.normal(size=(4, 3)))
        check_grad(lambda t: (t @ w).sum(), self.x)

    def test_matmul_grad_wrt_weight(self):
        w0 = self.rng.normal(size=(4, 3))
        x = Tensor(self.x)
        check_grad(lambda t: (x @ t).sum(), w0)

    def test_affine(self):
        w = Tensor(self.rng.normal(size=(4, 3)))
        b = Tensor(self.rng.normal(size=(3,)))
        check_grad(lambda t: t.affine(w, b).sum(), self.x)

    def test_affine_matches_unfused(self):
        x = Tensor(self.x, requires_grad=True)
        w = Tensor(self.rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(3,)), requires_grad=True)
        fused = x.affine(w, b)
        manual = x @ w + b
        np.testing.assert_allclose(fused.data, manual.data)
        fused.sum().backward()
        gx, gw, gb = x.grad.copy(), w.grad.copy(), b.grad.copy()
        x.zero_grad(), w.zero_grad(), b.zero_grad()
        manual = x @ w + b
        manual.sum().backward()
        np.testing.assert_allclose(gx, x.grad)
        np.testing.assert_allclose(gw, w.grad)
        np.testing.assert_allclose(gb, b.grad)


class TestBroadcasting:
    def test_add_broadcast_rows(self):
        rng = np.random.default_rng(2)
        bias = rng.normal(size=(3,))
        check_grad(lambda t: (t + Tensor(bias)).sum(),
                   rng.normal(size=(5, 3)))

    def test_add_broadcast_grad_on_small(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(3,))
        big = Tensor(rng.normal(size=(5, 3)))
        check_grad(lambda t: (big + t).sum(), x)

    def test_mul_broadcast_column(self):
        rng = np.random.default_rng(4)
        col = Tensor(rng.normal(size=(5, 1)))
        check_grad(lambda t: (t * col).sum(), rng.normal(size=(5, 3)))

    def test_scalar_ops(self):
        check_grad(lambda t: (3.0 * t + 1.0).sum(),
                   np.random.default_rng(5).normal(size=(2, 2)))


class TestStructuralOps:
    def setup_method(self):
        self.rng = np.random.default_rng(6)

    def test_concat_grad(self):
        b = Tensor(self.rng.normal(size=(4, 2)))
        check_grad(lambda t: nn.concat([t, b], axis=1).sum(),
                   self.rng.normal(size=(4, 3)))

    def test_concat_axis0(self):
        b = Tensor(self.rng.normal(size=(2, 3)))
        check_grad(lambda t: (nn.concat([t, b], axis=0) ** 2).sum(),
                   self.rng.normal(size=(4, 3)))

    def test_stack(self):
        b = Tensor(self.rng.normal(size=(4,)))
        check_grad(lambda t: (nn.stack([t, b], axis=0) ** 2).sum(),
                   self.rng.normal(size=(4,)))

    def test_gather_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_grad(lambda t: (nn.gather_rows(t, idx) ** 2).sum(),
                   self.rng.normal(size=(3, 2)))

    def test_scatter_rows_values_grad(self):
        # base is captured by the lambda, so it must be float64 too —
        # scatter_rows output follows the base dtype, and a float32
        # base would degrade the finite-difference check.
        with nn.use_dtype("float64"):
            base = Tensor(self.rng.normal(size=(5, 2)))
        idx = np.array([1, 3])
        check_grad(lambda t: (nn.scatter_rows(base, idx, t) ** 2).sum(),
                   self.rng.normal(size=(2, 2)))

    def test_scatter_rows_base_grad(self):
        values = Tensor(self.rng.normal(size=(2, 2)))
        idx = np.array([1, 3])
        check_grad(lambda t: (nn.scatter_rows(t, idx, values) ** 2).sum(),
                   self.rng.normal(size=(5, 2)))

    def test_scatter_rows_rejects_duplicates(self):
        base = Tensor(np.zeros((4, 2)))
        values = Tensor(np.ones((2, 2)))
        with pytest.raises(ValueError):
            nn.scatter_rows(base, np.array([1, 1]), values)

    def test_segment_sum_matches_loop(self):
        data = self.rng.normal(size=(6, 3))
        seg = np.array([0, 0, 1, 2, 2, 2])
        out = nn.segment_sum(Tensor(data), seg, 4)
        expected = np.zeros((4, 3))
        for i, s in enumerate(seg):
            expected[s] += data[i]
        rtol, atol = nn.contract_tol()
        np.testing.assert_allclose(out.data, expected, rtol=rtol, atol=atol)

    def test_segment_sum_grad(self):
        seg = np.array([0, 0, 1, 2, 2, 2])
        check_grad(lambda t: (nn.segment_sum(t, seg, 4) ** 2).sum(),
                   self.rng.normal(size=(6, 3)))

    def test_segment_max_matches_loop(self):
        data = self.rng.normal(size=(6, 2))
        seg = np.array([0, 0, 1, 1, 1, 3])
        out = nn.segment_max(Tensor(data), seg, 4)
        assert out.data[2].tolist() == [0.0, 0.0]  # empty segment -> 0
        np.testing.assert_allclose(out.data[0], data[0:2].max(axis=0))
        np.testing.assert_allclose(out.data[1], data[2:5].max(axis=0))

    def test_segment_max_grad(self):
        seg = np.array([0, 0, 1, 1, 1, 3])
        x = self.rng.normal(size=(6, 2)) + \
            np.arange(12).reshape(6, 2) * 1e-3   # no ties
        check_grad(lambda t: (nn.segment_max(t, seg, 4) ** 2).sum(), x)

    def test_segment_mean(self):
        data = self.rng.normal(size=(4, 2))
        seg = np.array([0, 0, 1, 1])
        out = nn.segment_mean(Tensor(data), seg, 3)
        np.testing.assert_allclose(out.data[0], data[0:2].mean(axis=0))
        np.testing.assert_allclose(out.data[2], 0.0)

    def test_batched_outer_values(self):
        a = self.rng.normal(size=(3, 2))
        b = self.rng.normal(size=(3, 4))
        out = nn.batched_outer(Tensor(a), Tensor(b))
        assert out.shape == (3, 8)
        np.testing.assert_allclose(out.data[1],
                                   np.outer(a[1], b[1]).reshape(-1))

    def test_batched_outer_grad(self):
        b = Tensor(self.rng.normal(size=(3, 4)))
        check_grad(lambda t: (nn.batched_outer(t, b) ** 2).sum(),
                   self.rng.normal(size=(3, 2)))

    def test_batched_outer_grad_second(self):
        a = Tensor(self.rng.normal(size=(3, 2)))
        check_grad(lambda t: (nn.batched_outer(a, t) ** 2).sum(),
                   self.rng.normal(size=(3, 4)))

    def test_spmm(self):
        import scipy.sparse as sp
        mat = sp.random(5, 4, density=0.5, random_state=7, format="csr")
        check_grad(lambda t: (nn.spmm(mat, t) ** 2).sum(),
                   self.rng.normal(size=(4, 3)))

    def test_maximum(self):
        a = self.rng.normal(size=(4, 2))
        b = Tensor(self.rng.normal(size=(4, 2)))
        check_grad(lambda t: nn.maximum(t, b).sum(), a)


class TestAutogradMachinery:
    def test_no_grad_blocks_tape(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with nn.no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad
        assert y._backward is None

    def test_grad_enabled_restored(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach()
        assert not y.requires_grad

    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.ones((2,)), requires_grad=True)
        y = (x * 2 + x * 3).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])

    def test_backward_through_diamond(self):
        x = Tensor(np.asarray([2.0]), requires_grad=True)
        a = x * 3
        b = x * 4
        y = (a * b).sum()     # y = 12 x^2, dy/dx = 24 x = 48
        y.backward()
        np.testing.assert_allclose(x.grad, [48.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1e-4
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_mse_loss_masked(self):
        pred = Tensor(np.asarray([[1.0, 2.0], [3.0, 4.0]]),
                      requires_grad=True)
        target = np.asarray([[0.0, 0.0], [0.0, 0.0]])
        mask = np.asarray([True, False])
        loss = nn.mse_loss(pred, target, mask=mask)
        np.testing.assert_allclose(loss.data, (1 + 4) / 2)

    def test_mse_loss_empty_mask(self):
        pred = Tensor(np.ones((2, 2)), requires_grad=True)
        loss = nn.mse_loss(pred, np.zeros((2, 2)),
                           mask=np.asarray([False, False]))
        assert float(loss.data) == 0.0


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(2, 8), cols=st.integers(1, 5),
       segs=st.integers(1, 6), seed=st.integers(0, 10_000))
def test_segment_sum_property(rows, cols, segs, seed):
    """segment_sum equals a naive python accumulation for random inputs."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, cols))
    seg = rng.integers(0, segs, size=rows)
    out = nn.segment_sum(Tensor(data), seg, segs)
    expected = np.zeros((segs, cols))
    for i, s in enumerate(seg):
        expected[s] += data[i]
    rtol, atol = nn.contract_tol()
    np.testing.assert_allclose(out.data, expected, rtol=rtol, atol=atol)


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(2, 8), cols=st.integers(1, 4),
       seed=st.integers(0, 10_000))
def test_gather_scatter_roundtrip(rows, cols, seed):
    """scatter(gather(x)) at the same unique indices is the identity."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(rows, cols)))
    k = rng.integers(1, rows + 1)
    idx = rng.permutation(rows)[:k]
    gathered = nn.gather_rows(x, idx)
    back = nn.scatter_rows(x, idx, gathered)
    np.testing.assert_allclose(back.data, x.data)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 30), seed=st.integers(0, 10_000))
def test_softmax_rows_sum_to_one(n, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(scale=5, size=(n, 4)))
    s = x.softmax(axis=1)
    np.testing.assert_allclose(s.data.sum(axis=1), np.ones(n),
                               atol=100 * np.finfo(nn.active_dtype()).eps)


# -- fused kernel backend ------------------------------------------------------
#
# Every fused op must agree with the naive composed-op path to tight
# tolerance on values AND gradients (the kernels only reorder
# floating-point arithmetic, they never approximate), and the fused
# gradients must also pass the finite-difference check on their own.
# The tolerance is the dtype contract: 1e-9 relative at float64, the
# relaxed float32 bound when the session runs REPRO_DTYPE=float32.
FUSED_RTOL, FUSED_ATOL = nn.contract_tol()


def _run_both_backends(build, inputs):
    """Run ``build(*tensors)`` under each backend; return (out, grads)."""
    results = {}
    for backend in ("fused", "naive"):
        tensors = [Tensor(a.copy(), requires_grad=True) for a in inputs]
        with nn.use_kernels(backend):
            out = build(*tensors)
            out.sum().backward()
        results[backend] = (out.data.copy(),
                            [t.grad.copy() for t in tensors])
    return results


def assert_backends_agree(build, inputs):
    res = _run_both_backends(build, inputs)
    out_f, grads_f = res["fused"]
    out_n, grads_n = res["naive"]
    np.testing.assert_allclose(out_f, out_n, rtol=FUSED_RTOL,
                               atol=FUSED_ATOL)
    for gf, gn in zip(grads_f, grads_n):
        np.testing.assert_allclose(gf, gn, rtol=FUSED_RTOL,
                                   atol=FUSED_ATOL)


class TestFusedKernelEquivalence:
    """Differential tests: fused backend == naive backend bit-for-bit
    within tolerance, for every fused op, values and gradients."""

    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def test_backend_selection(self):
        with nn.use_kernels("naive"):
            assert nn.kernel_backend() == "naive"
            assert not nn.kernels.is_fused()
            with nn.use_kernels("fused"):
                assert nn.kernels.is_fused()
            assert nn.kernel_backend() == "naive"
        with pytest.raises(ValueError):
            nn.kernels.set_default_backend("turbo")

    def test_affine_act(self):
        x = self.rng.normal(size=(6, 5))
        w = self.rng.normal(size=(5, 4))
        b = self.rng.normal(size=4)

        def composed(xt, wt, bt, act):
            out = xt.affine(wt, bt)
            return out if act is None else getattr(out, act)()

        for act in (None, "relu", "tanh"):
            fused = _run_both_backends(
                lambda xt, wt, bt, a=act: nn.affine_act(
                    xt, wt, bt, activation=a), [x, w, b])["fused"]
            naive = _run_both_backends(
                lambda xt, wt, bt, a=act: composed(xt, wt, bt, a),
                [x, w, b])["naive"]
            np.testing.assert_allclose(fused[0], naive[0],
                                       rtol=FUSED_RTOL, atol=FUSED_ATOL)
            for gf, gn in zip(fused[1], naive[1]):
                np.testing.assert_allclose(gf, gn, rtol=FUSED_RTOL,
                                           atol=FUSED_ATOL)

    def test_mlp_module_out_activations(self):
        mlp = nn.MLP(5, 3, np.random.default_rng(3), hidden=8,
                     num_hidden_layers=2)
        x = self.rng.normal(size=(7, 5))
        for act in (None, "tanh", "softplus", "sigmoid", "relu"):
            res = {}
            for backend in ("fused", "naive"):
                xt = Tensor(x.copy(), requires_grad=True)
                mlp.zero_grad()
                with nn.use_kernels(backend):
                    mlp(xt, activation=act).sum().backward()
                res[backend] = (xt.grad.copy(),
                                [p.grad.copy() for p in mlp.parameters()])
            np.testing.assert_allclose(res["fused"][0], res["naive"][0],
                                       rtol=FUSED_RTOL, atol=FUSED_ATOL)
            for gf, gn in zip(res["fused"][1], res["naive"][1]):
                np.testing.assert_allclose(gf, gn, rtol=FUSED_RTOL,
                                           atol=FUSED_ATOL)

    def test_mlp_chain_numerical_grad(self):
        rng = np.random.default_rng(5)
        w1 = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        b1 = Tensor(rng.normal(size=6), requires_grad=True)
        w2 = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        steps = [(w1, b1, "tanh"), (w2, None, None)]
        x0 = rng.normal(size=(5, 4))
        with nn.use_kernels("fused"):
            check_grad(lambda x: nn.mlp_chain(x, steps, out_act="softplus"),
                       x0)

    def test_gather_concat(self):
        a = self.rng.normal(size=(6, 3))
        b = self.rng.normal(size=(6, 2))
        idx = np.array([0, 5, 5, 2])
        plain = self.rng.normal(size=(4, 2))
        assert_backends_agree(
            lambda at, bt, pt: nn.gather_concat(
                [at, bt, pt], [idx, idx, None]),
            [a, b, plain])

    def test_gather_rows_duplicate_index_grad(self):
        x0 = self.rng.normal(size=(5, 3))
        idx = np.array([1, 1, 4, 0, 1])
        with nn.use_kernels("fused"):
            check_grad(lambda x: nn.gather_rows(x, idx) * 2.0, x0)

    def test_gather_add(self):
        t = self.rng.normal(size=(6, 4))
        addend = self.rng.normal(size=(5, 4))
        idx = np.array([3, 3, 0, 1, 5])
        assert_backends_agree(
            lambda tt, at: nn.gather_add(tt, idx, at), [t, addend])

    def test_segment_sum_and_max_csr(self):
        data = self.rng.normal(size=(8, 3))
        seg = np.array([2, 0, 2, 1, 1, 2, 0, 4])
        assert_backends_agree(
            lambda d: nn.segment_sum(d, seg, 5), [data])
        assert_backends_agree(
            lambda d: nn.segment_max(d, seg, 5), [data])

    def test_segment_minmax_one_pass(self):
        data = self.rng.normal(size=(8, 3))
        # Include exact ties so the tie-splitting gradient path runs.
        data[2] = data[0]
        seg = np.array([0, 1, 0, 2, 1, 0, 2, 2])

        def build(d):
            mx, mn = nn.segment_minmax(d, seg, 3)
            return mx * 2.0 + mn

        assert_backends_agree(build, [data])

    def test_segment_minmax_gate(self):
        data = self.rng.normal(size=(9, 4))
        seg = np.array([0, 1, 0, 2, 1, 0, 2, 2, 1])
        logits = self.rng.normal(size=4)
        assert_backends_agree(
            lambda d, g: nn.segment_minmax_gate(d, seg, 3, g), [data, logits])

    def test_segment_minmax_gate_numerical_grad(self):
        seg = np.array([0, 1, 0, 2, 1, 0])
        logits = Tensor(np.array([0.3, -0.7, 1.1]), requires_grad=True)
        x0 = self.rng.normal(size=(6, 3))
        with nn.use_kernels("fused"):
            check_grad(
                lambda x: nn.segment_minmax_gate(x, seg, 3, logits), x0)

    def test_lut_kron_combine(self):
        e = 3
        ax = self.rng.normal(size=(e * 8, 7))
        ay = self.rng.normal(size=(e * 8, 7))
        values = self.rng.normal(size=(e * 8, 49))
        valid = (self.rng.random((e, 8)) > 0.3).astype(float)
        assert_backends_agree(
            lambda a, b: nn.lut_kron_combine(a, b, values, valid), [ax, ay])

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_segment_ops_property(self, rows, num_segments, seed):
        """Randomized: CSR segment reductions match the naive path for
        arbitrary (possibly empty) segment layouts."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(rows, 2))
        seg = rng.integers(0, num_segments, size=rows)
        assert_backends_agree(
            lambda d: nn.segment_sum(d, seg, num_segments), [data])

        def build(d):
            mx, mn = nn.segment_minmax(d, seg, num_segments)
            return mx - 0.5 * mn

        assert_backends_agree(build, [data])

    def test_segment_schedule_reuse(self):
        data = self.rng.normal(size=(7, 2))
        seg = np.array([1, 0, 1, 2, 0, 1, 2])
        sched = nn.SegmentSchedule(seg)
        with nn.use_kernels("fused"):
            direct = nn.segment_sum(Tensor(data), seg, 3)
            cached = nn.segment_sum(Tensor(data), seg, 3, schedule=sched)
        np.testing.assert_array_equal(direct.data, cached.data)

    def test_backward_free_releases_tape(self):
        x = Tensor(self.rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(self.rng.normal(size=(3, 2)), requires_grad=True)
        with nn.use_kernels("fused"):
            out = nn.mlp_chain(x, [(w, None, "tanh")])
            loss = out.sum()
            loss.backward(free=True)
        assert x.grad is not None and w.grad is not None
        # The tape was torn down: parents and closures are gone.
        assert loss._parents == () and loss._backward is None
