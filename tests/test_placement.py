"""Placement: die geometry, placer invariants, wirelength metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.placement import (Die, net_hpwl, place_design, total_hpwl,
                             net_bounding_box)


class TestDie:
    def test_sizing_for_cell_count(self):
        die = Die.for_cell_count(100, pitch=6.0, utilization=0.7)
        assert die.width == die.height
        assert die.width ** 2 >= 100 * 36   # at least the raw cell area

    def test_clamp(self):
        die = Die(100, 50)
        xy = np.asarray([[-5.0, 25.0], [150.0, 60.0], [50.0, 25.0]])
        out = die.clamp(xy)
        assert out[0, 0] == 0.0
        assert out[1].tolist() == [100.0, 50.0]
        assert out[2].tolist() == [50.0, 25.0]

    def test_boundary_distances(self):
        die = Die(100, 50)
        d = die.boundary_distances(np.asarray([[30.0, 10.0]]))
        np.testing.assert_allclose(d[0], [30.0, 70.0, 10.0, 40.0])

    def test_boundary_distances_sum(self):
        die = Die(80, 60)
        pts = np.random.default_rng(0).uniform([0, 0], [80, 60], (20, 2))
        d = die.boundary_distances(pts)
        np.testing.assert_allclose(d[:, 0] + d[:, 1], 80.0)
        np.testing.assert_allclose(d[:, 2] + d[:, 3], 60.0)

    def test_contains(self):
        die = Die(10, 10)
        assert die.contains(np.asarray([[5.0, 5.0]]))
        assert not die.contains(np.asarray([[15.0, 5.0]]))


class TestPlacer:
    def test_all_pins_inside_die(self, small_design, placed):
        assert placed.die.contains(placed.pin_xy)

    def test_deterministic(self, small_design):
        a = place_design(small_design, seed=5)
        b = place_design(small_design, seed=5)
        np.testing.assert_allclose(a.pin_xy, b.pin_xy)

    def test_seed_changes_placement(self, small_design):
        a = place_design(small_design, seed=5)
        b = place_design(small_design, seed=6)
        assert not np.allclose(a.pin_xy, b.pin_xy)

    def test_ports_on_boundary(self, small_design, placed):
        die = placed.die
        for i, port in enumerate(small_design.ports):
            x, y = placed.port_xy[i]
            on_edge = (abs(x) < 1e-6 or abs(x - die.width) < 1e-6 or
                       abs(y) < 1e-6 or abs(y - die.height) < 1e-6)
            assert on_edge

    def test_cells_spread_out(self, small_design, placed):
        """Legalization must prevent pile-ups: cell sites are distinct."""
        xy = placed.cell_xy
        rounded = {tuple(np.round(p, 3)) for p in xy}
        assert len(rounded) == len(xy)

    def test_connected_cells_are_close(self, small_design, placed):
        """Quadratic placement pulls connected cells together: average
        connected-pair distance must beat the random-pair baseline."""
        rng = np.random.default_rng(0)
        xy = placed.pin_xy
        connected = []
        for net in small_design.nets:
            for sink in net.sinks:
                connected.append(np.abs(xy[net.driver.index] -
                                        xy[sink.index]).sum())
        n = len(small_design.pins)
        random_pairs = [np.abs(xy[rng.integers(n)] -
                               xy[rng.integers(n)]).sum()
                        for _ in range(2000)]
        assert np.mean(connected) < 0.8 * np.mean(random_pairs)

    def test_pin_offsets_stay_small(self, small_design, placed):
        cell = small_design.combinational_cells[0]
        pins = list(cell.pins.values())
        base = placed.pin_xy[pins[0].index]
        for pin in pins[1:]:
            assert np.abs(placed.pin_xy[pin.index] - base).max() <= 2.5


class TestHPWL:
    def test_single_net(self, small_design, placed):
        net = max(small_design.nets, key=lambda n: n.degree)
        x0, y0, x1, y1 = net_bounding_box(net, placed.pin_xy)
        assert net_hpwl(net, placed.pin_xy) == (x1 - x0) + (y1 - y0)

    def test_total_positive(self, small_design, placed):
        assert total_hpwl(small_design, placed.pin_xy) > 0

    def test_placer_beats_random_hpwl(self, small_design, placed):
        rng = np.random.default_rng(1)
        random_xy = rng.uniform([0, 0],
                                [placed.die.width, placed.die.height],
                                placed.pin_xy.shape)
        placed_hpwl = total_hpwl(small_design, placed.pin_xy)
        random_hpwl = total_hpwl(small_design, random_xy)
        assert placed_hpwl < random_hpwl

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(2, 8))
    def test_hpwl_invariant_under_translation(self, seed, k):
        class FakeNet:
            def __init__(self, pins):
                self.pins = pins
                self.degree = len(pins)

        class FakePin:
            def __init__(self, index):
                self.index = index

        rng = np.random.default_rng(seed)
        xy = rng.uniform(0, 100, size=(k, 2))
        net = FakeNet([FakePin(i) for i in range(k)])
        base = net_hpwl(net, xy)
        shifted = net_hpwl(net, xy + 13.7)
        np.testing.assert_allclose(base, shifted, rtol=1e-12)


class TestWeightedPlacement:
    def test_weighted_deterministic(self, small_design):
        weights = {net.name: 2.0 for net in small_design.nets[:5]}
        from repro.placement import place_design as _place
        a = _place(small_design, seed=4, net_weights=weights)
        b = _place(small_design, seed=4, net_weights=weights)
        np.testing.assert_allclose(a.pin_xy, b.pin_xy)

    def test_unit_weights_match_unweighted(self, small_design):
        from repro.placement import place_design as _place
        base = _place(small_design, seed=4)
        unit = _place(small_design, seed=4,
                      net_weights={n.name: 1.0 for n in small_design.nets})
        np.testing.assert_allclose(base.pin_xy, unit.pin_xy)

    def test_unknown_net_names_ignored(self, small_design):
        from repro.placement import place_design as _place
        placed = _place(small_design, seed=4,
                        net_weights={"no_such_net": 9.0})
        assert placed.die.contains(placed.pin_xy)
