"""Tape arena, dtype policy and multicore execution.

Three contracts pin the compute-performance layer:

* **Planned == unplanned** — arena-recycled fused execution is
  bit-identical to fresh-allocation fused execution at float64, on
  values AND gradients (buffer recycling must never change arithmetic);
* **No aliasing** — the arena never hands the same buffer to two live
  users, double-release fails loudly, and nothing that escapes a fused
  pass (outputs, parameter gradients) sits in an arena free list;
* **Flat steady state** — after the first planning pass, training holds
  the arena's fresh-allocation count constant across epochs, and
  ``Tensor.backward(free=True)`` feeds the gradient pool.

Plus the dtype axis (float32 parameters/outputs under ``use_dtype``,
naive==fused within :func:`repro.nn.contract_tol`) and the thread axis
(chunked matmul / segment reductions bit-identical to serial).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.models import ModelConfig, TimingGNN
from repro.nn import kernels, threads
from repro.nn.arena import NULL_ARENA, TapeArena
from repro.training.loss import combined_loss


@pytest.fixture()
def cfg():
    return ModelConfig.fast()


def _train_pass(model, graph):
    pred = model(graph)
    loss, _parts = combined_loss(pred, graph)
    model.zero_grad()
    loss.backward(free=True)
    return (pred.atslew.data.copy(), float(loss.data),
            {name: p.grad.copy() for name, p in model.named_parameters()
             if p.grad is not None})


class TestTapeArenaUnit:
    def test_take_recycles_released_buffers(self):
        arena = TapeArena(tag="t")
        a = arena.take((4, 3), np.float64)
        arena.release(a)
        b = arena.take((4, 3), np.float64)
        assert b is a
        assert arena.stats()["fresh_allocs"] == 1
        assert arena.stats()["reuses"] == 1

    def test_two_live_takes_never_alias(self):
        arena = TapeArena(tag="t")
        a = arena.take((4, 3), np.float64)
        b = arena.take((4, 3), np.float64)
        assert a is not b
        assert not np.shares_memory(a, b)

    def test_double_release_raises(self):
        arena = TapeArena(tag="t")
        a = arena.take((2, 2), np.float64)
        arena.release(a)
        with pytest.raises(ValueError, match="double release"):
            arena.release(a)

    def test_foreign_array_release_raises(self):
        arena = TapeArena(tag="t")
        with pytest.raises(ValueError):
            arena.release(np.zeros((2, 2)))

    def test_dtype_keys_are_distinct(self):
        arena = TapeArena(tag="t")
        a = arena.take((4,), np.float64)
        arena.release(a)
        b = arena.take((4,), np.float32)
        assert b is not a and b.dtype == np.float32

    def test_zero_flag(self):
        arena = TapeArena(tag="t")
        a = arena.take((3,), np.float64)
        a[:] = 7.0
        arena.release(a)
        b = arena.take((3,), np.float64, zero=True)
        assert b is a
        np.testing.assert_array_equal(b, 0.0)

    def test_episode_lease(self):
        arena = TapeArena(tag="t")
        token = arena.begin()
        assert token is not None
        assert arena.begin() is None      # busy: caller must go unplanned
        arena.end(token)
        arena.end(token)                  # idempotent
        assert arena.begin() is not None

    def test_null_arena_surface(self):
        a = NULL_ARENA.take((2, 2), np.float64, zero=True)
        np.testing.assert_array_equal(a, 0.0)
        NULL_ARENA.release(a)             # no-op
        NULL_ARENA.release_all([a])


class TestPlannedVsUnplanned:
    """Arena-planned fused execution == fresh-allocation fused execution,
    bitwise, values and gradients."""

    def test_model_bit_identical_and_recycling(self, hetero, cfg):
        with nn.use_kernels("fused"), nn.use_dtype("float64"):
            with nn.use_arena(False):
                model = TimingGNN(cfg)
                ref = _train_pass(model, hetero)
            with nn.use_arena(True):
                model = TimingGNN(cfg)
                first = _train_pass(model, hetero)   # planning pass
                second = _train_pass(model, hetero)  # recycled pass
        for planned in (first, second):
            np.testing.assert_array_equal(planned[0], ref[0])
            assert planned[1] == ref[1]
            assert set(planned[2]) == set(ref[2])
            for name in ref[2]:
                np.testing.assert_array_equal(planned[2][name],
                                              ref[2][name], err_msg=name)

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_mlp_chain_property(self, data):
        """mlp_chain raw kernels with an arena == without, bitwise."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        rows = data.draw(st.integers(1, 12))
        dims = data.draw(st.lists(st.integers(1, 8), min_size=2,
                                  max_size=4))
        acts = [data.draw(st.sampled_from([None, "relu", "tanh"]))
                for _ in dims[1:]]
        out_act = data.draw(st.sampled_from(
            [None, "tanh", "softplus", "sigmoid"]))
        x = rng.normal(size=(rows, dims[0]))
        steps = []
        for d_in, d_out, act in zip(dims[:-1], dims[1:], acts):
            w = nn.Tensor(rng.normal(size=(d_in, d_out)),
                          requires_grad=True)
            b = nn.Tensor(rng.normal(size=(d_out,)), requires_grad=True)
            steps.append((w, b, act))
        g = rng.normal(size=(rows, dims[-1]))

        def run(alloc):
            for w, b, _ in steps:
                w.grad = b.grad = None
            out, saved = kernels.mlp_chain_forward_raw(
                x, steps, out_act=out_act, alloc=alloc)
            gx = kernels.mlp_chain_backward_raw(
                g.copy(), steps, saved, out_act=out_act, alloc=alloc)
            grads = [(w.grad.copy(), b.grad.copy()) for w, b, _ in steps]
            return out.copy(), gx.copy(), grads

        ref = run(None)
        arena = TapeArena(tag="prop")
        for _ in range(2):                # second round runs recycled
            got = run(arena)
            np.testing.assert_array_equal(got[0], ref[0])
            np.testing.assert_array_equal(got[1], ref[1])
            for (gw, gb), (rw, rb) in zip(got[2], ref[2]):
                np.testing.assert_array_equal(gw, rw)
                np.testing.assert_array_equal(gb, rb)

    def test_no_escaping_buffer_in_free_lists(self, hetero, cfg):
        """Nothing a fused pass returns (outputs, parameter gradients)
        may sit in an arena free list — that would alias live tensors
        with recycled slots."""
        with nn.use_kernels("fused"), nn.use_dtype("float64"), \
                nn.use_arena(True):
            model = TimingGNN(cfg)
            for _ in range(2):
                pred = model(hetero)
                loss, _parts = combined_loss(pred, hetero)
                model.zero_grad()
                loss.backward(free=True)
            sched = hetero.compute_schedule(dtype=np.float64)
            pooled_ids = {id(arr)
                          for arena in sched._arenas.values()
                          for stack in arena._free.values()
                          for arr in stack}
            assert id(pred.atslew.data) not in pooled_ids
            for name, p in model.named_parameters():
                assert id(p.data) not in pooled_ids, name
                if p.grad is not None:
                    assert id(p.grad) not in pooled_ids, name


class TestSteadyStateAllocations:
    def test_training_allocation_count_flat_across_epochs(self, hetero,
                                                          cfg):
        with nn.use_kernels("fused"), nn.use_dtype("float64"), \
                nn.use_arena(True):
            model = TimingGNN(cfg)
            optim = nn.Adam(model.parameters(), lr=1e-3)

            def epoch():
                pred = model(hetero)
                loss, _parts = combined_loss(pred, hetero)
                optim.zero_grad()
                loss.backward(free=True)
                optim.step()

            epoch()                       # planning pass
            epoch()                       # warm: pools/grad-pool primed
            arena = hetero.compute_schedule(dtype=np.float64).arena("train")
            warm = arena.stats()
            for _ in range(3):
                epoch()
            steady = arena.stats()
        assert steady["fresh_allocs"] == warm["fresh_allocs"], \
            "steady-state training still allocates fresh arena buffers"
        assert steady["reuses"] > warm["reuses"]
        assert steady["live"] == 0

    def test_backward_free_feeds_grad_pool(self):
        nn.clear_grad_pool()
        before = nn.grad_pool_stats()["given"]
        x = nn.Tensor(np.ones((16, 8)), requires_grad=True)
        w = nn.Tensor(np.ones((8, 4)), requires_grad=True)
        ((x @ w).tanh().sum()).backward(free=True)
        assert nn.grad_pool_stats()["given"] > before

    def test_grad_pool_recycles(self):
        nn.clear_grad_pool()
        from repro.nn.arena import give_grad, grad_buffer
        arr = np.ones((5, 3))
        assert give_grad(arr) is True
        assert grad_buffer((5, 3), np.float64) is arr
        assert nn.grad_pool_stats()["hits"] >= 1


class TestDtypePolicy:
    def test_use_dtype_scopes_tensor_creation(self):
        with nn.use_dtype("float32"):
            assert nn.active_dtype() == np.float32
            assert nn.Tensor(np.zeros(3)).data.dtype == np.float32
        assert nn.Tensor(np.zeros(3)).data.dtype == nn.active_dtype()

    def test_contract_tol_is_dtype_aware(self):
        assert nn.contract_tol(np.float64) == (1e-9, 1e-12)
        rtol32, atol32 = nn.contract_tol(np.float32)
        assert rtol32 > 1e-9 and atol32 > 1e-12
        with nn.use_dtype("float32"):
            assert nn.contract_tol() == (rtol32, atol32)

    def test_float32_model_outputs_and_contract(self, hetero, cfg):
        with nn.use_dtype("float32"):
            rtol, atol = nn.contract_tol()
            with nn.use_kernels("fused"):
                model = TimingGNN(cfg)
                at_f, loss_f, grads_f = _train_pass(model, hetero)
            with nn.use_kernels("naive"):
                model = TimingGNN(cfg)
                at_n, loss_n, grads_n = _train_pass(model, hetero)
        assert at_f.dtype == np.float32
        np.testing.assert_allclose(at_f, at_n, rtol=rtol, atol=atol)
        assert loss_f == pytest.approx(loss_n, rel=rtol)

    def test_schedules_are_per_dtype(self, hetero):
        s64 = hetero.compute_schedule(dtype=np.float64)
        s32 = hetero.compute_schedule(dtype=np.float32)
        assert s64 is not s32
        assert s64.arena("train") is not s32.arena("train")
        assert hetero.compute_schedule(dtype=np.float64) is s64


class TestThreadedExecution:
    def test_matmul_chunked_bit_identical(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(37, 9))
        b = rng.normal(size=(9, 5))
        ref = np.matmul(a, b)
        with nn.use_threads(4, min_rows=1):
            assert threads.parallel_enabled(len(a))
            np.testing.assert_array_equal(threads.matmul(a, b), ref)

    def test_segment_reduce_chunked_bit_identical(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(50, 3))
        ids = rng.integers(0, 7, size=50)
        sched = kernels.SegmentSchedule(ids)
        ref = threads.segment_reduce(np.add, data, sched.order,
                                     sched.starts)
        with nn.use_threads(4, min_rows=1):
            got = threads.segment_reduce(np.add, data, sched.order,
                                         sched.starts)
        np.testing.assert_array_equal(got, ref)

    def test_model_matches_serial_under_threads(self, hetero, cfg):
        """Chunked model pass == serial pass within the fp64 contract.

        Segment reductions chunk at segment boundaries and are exactly
        identical; row-chunked BLAS matmuls may block the within-row
        accumulation differently, so the model-level comparison uses
        the dtype contract tolerance rather than bit equality.
        """
        rtol, atol = nn.contract_tol(np.float64)
        with nn.use_kernels("fused"), nn.use_dtype("float64"):
            model = TimingGNN(cfg)
            ref = _train_pass(model, hetero)
            with nn.use_threads(4, min_rows=1):
                model = TimingGNN(cfg)
                got = _train_pass(model, hetero)
        np.testing.assert_allclose(got[0], ref[0], rtol=rtol, atol=atol)
        assert got[1] == pytest.approx(ref[1], rel=rtol)
        for name in ref[2]:
            np.testing.assert_allclose(got[2][name], ref[2][name],
                                       rtol=rtol, atol=atol, err_msg=name)

    def test_serial_below_threshold(self):
        with nn.use_threads(4, min_rows=10_000):
            assert not threads.parallel_enabled(100)
        with nn.use_threads(1, min_rows=1):
            assert not threads.parallel_enabled(100)
