"""Netlist generation: structure, determinism, styles, benchmark suite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (BENCHMARKS, STYLES, TRAIN_BENCHMARKS,
                           TEST_BENCHMARKS, benchmark_names, build_benchmark,
                           combinational_depth, generate_circuit,
                           validate_design, NetlistError)


class TestGenerator:
    def test_deterministic(self, library):
        a = generate_circuit("d", 300, "cipher", library, seed=9)
        b = generate_circuit("d", 300, "cipher", library, seed=9)
        assert a.stats() == b.stats()
        assert [c.cell_type.name for c in a.cells] == \
               [c.cell_type.name for c in b.cells]

    def test_seed_matters(self, library):
        a = generate_circuit("d", 300, "cipher", library, seed=1)
        b = generate_circuit("d", 300, "cipher", library, seed=2)
        assert [c.cell_type.name for c in a.cells] != \
               [c.cell_type.name for c in b.cells]

    def test_node_count_near_target(self, library):
        for target in (150, 400, 1200):
            design = generate_circuit("d", target, "datapath", library,
                                      seed=3)
            nodes = design.stats()["nodes"]
            assert abs(nodes - target) / target < 0.15

    def test_validates(self, library):
        design = generate_circuit("d", 500, "cpu", library, seed=4)
        assert validate_design(design)

    def test_acyclic(self, library):
        design = generate_circuit("d", 500, "memory", library, seed=5)
        assert combinational_depth(design) >= 0

    def test_depth_tracks_style_target(self, library):
        shallow = generate_circuit("d", 900, "memory", library, seed=6)
        deep = generate_circuit("d", 900, "cpu", library, seed=6)
        assert combinational_depth(deep) > 2 * combinational_depth(shallow)

    def test_every_net_driven_and_loaded(self, library):
        design = generate_circuit("d", 300, "control", library, seed=7)
        for net in design.nets:
            assert net.driver is not None
            assert len(net.sinks) >= 1

    def test_fanout_within_bounds(self, library):
        style = STYLES["control"]
        design = generate_circuit("d", 600, style, library, seed=8)
        # The generator may overload a driver only when saturated, which
        # should be rare: allow a small tolerance above max_fanout.
        for net in design.nets:
            assert len(net.sinks) <= style.max_fanout + 2

    def test_seq_fraction_respected(self, library):
        design = generate_circuit("d", 1000, "control", library, seed=9)
        frac = len(design.sequential_cells) / len(design.cells)
        assert abs(frac - STYLES["control"].seq_fraction) < 0.08

    def test_xor_bias_shapes_cell_mix(self, library):
        cipher = generate_circuit("d", 1200, "cipher", library, seed=10)
        control = generate_circuit("d", 1200, "control", library, seed=10)

        def xor_frac(design):
            n = sum(1 for c in design.cells
                    if c.cell_type.name.startswith(("XOR", "XNOR")))
            return n / len(design.cells)

        assert xor_frac(cipher) > 2 * xor_frac(control)

    def test_endpoints_are_dff_d_and_pos(self, library):
        design = generate_circuit("d", 300, "control", library, seed=11)
        for pin in design.endpoints():
            ok = pin.is_primary_output or (
                pin.cell is not None and pin.cell.is_sequential
                and pin.direction == "input")
            assert ok

    def test_startpoints_are_pis_and_qs(self, library):
        design = generate_circuit("d", 300, "control", library, seed=11)
        for pin in design.startpoints():
            ok = pin.is_primary_input or (
                pin.cell is not None and pin.cell.is_sequential
                and pin.direction == "output")
            assert ok

    def test_clock_port_present_and_ideal(self, library):
        design = generate_circuit("d", 300, "control", library, seed=12)
        clocks = [p for p in design.ports if p.is_clock]
        assert len(clocks) == 1
        assert clocks[0].net is None     # ideal clock, not routed

    def test_pin_indices_dense(self, library):
        design = generate_circuit("d", 300, "cipher", library, seed=13)
        for i, pin in enumerate(design.pins):
            assert pin.index == i

    @settings(max_examples=10, deadline=None)
    @given(target=st.integers(120, 800),
           style=st.sampled_from(sorted(STYLES)),
           seed=st.integers(0, 1000))
    def test_generated_designs_always_valid(self, library, target, style,
                                            seed):
        design = generate_circuit("h", target, style, library, seed=seed)
        assert validate_design(design)
        assert combinational_depth(design) > 0


class TestValidation:
    def test_detects_missing_driver(self, library):
        design = generate_circuit("d", 200, "control", library, seed=14)
        design.nets[0].driver = None
        with pytest.raises(NetlistError):
            validate_design(design)

    def test_detects_dangling_pin(self, library):
        design = generate_circuit("d", 200, "control", library, seed=15)
        victim = design.combinational_cells[0].pins["A"]
        victim.net.sinks.remove(victim)
        victim.net = None
        with pytest.raises(NetlistError):
            validate_design(design)


class TestBenchmarkSuite:
    def test_21_benchmarks(self):
        assert len(BENCHMARKS) == 21
        assert len(TRAIN_BENCHMARKS) == 14
        assert len(TEST_BENCHMARKS) == 7

    def test_paper_names(self):
        names = benchmark_names()
        for expected in ("aes256", "picorv32a", "jpeg_encoder", "spm",
                         "usbf_device", "synth_ram"):
            assert expected in names

    def test_split_matches_paper(self):
        assert benchmark_names("test") == [
            "jpeg_encoder", "usbf_device", "aes192", "xtea", "spm",
            "y_huff", "synth_ram"]

    def test_paper_totals(self):
        # The statistics columns of Table 1 sum to the paper's totals.
        assert sum(b.paper_nodes for b in TRAIN_BENCHMARKS) == 920301
        assert sum(b.paper_nodes for b in TEST_BENCHMARKS) == 624232
        assert sum(b.paper_endpoints for b in TRAIN_BENCHMARKS) == 34067
        assert sum(b.paper_endpoints for b in TEST_BENCHMARKS) == 21977

    def test_build_benchmark(self, library):
        design = build_benchmark("zipdiv", library)
        assert design.name == "zipdiv"
        assert validate_design(design)

    def test_scale_shrinks(self, library):
        full = build_benchmark("des", library, scale=1.0)
        half = build_benchmark("des", library, scale=0.5)
        assert half.stats()["nodes"] < 0.7 * full.stats()["nodes"]

    def test_relative_sizes_preserved(self, library):
        small = build_benchmark("spm", library)
        large = build_benchmark("aes256", library)
        assert large.stats()["nodes"] > 10 * small.stats()["nodes"]

    def test_stable_seeds(self):
        spec = next(b for b in BENCHMARKS if b.name == "des")
        assert spec.seed == spec.seed        # deterministic property
        assert isinstance(spec.seed, int)


class TestDesignStats:
    def test_stats_consistency(self, small_design):
        stats = small_design.stats()
        assert stats["net_edges"] == sum(len(n.sinks)
                                         for n in small_design.nets)
        assert stats["endpoints"] == len(small_design.endpoints())
        clock_pins = sum(1 for p in small_design.pins if p.is_clock)
        assert stats["nodes"] == len(small_design.pins) - clock_pins

    def test_pin_capacitance_zero_for_outputs(self, small_design):
        for cell in small_design.combinational_cells:
            out_pin = cell.pins["Y"]
            np.testing.assert_allclose(
                small_design.pin_capacitance(out_pin), 0.0)

    def test_pin_capacitance_positive_for_inputs(self, small_design):
        cell = small_design.combinational_cells[0]
        name = cell.cell_type.input_pins[0]
        assert np.all(small_design.pin_capacitance(cell.pins[name]) > 0)
