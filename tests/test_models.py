"""Models: shapes, determinism, gradient flow, architectural invariants."""

import numpy as np
import pytest

from repro import nn
from repro.models import (GCNII, DelayPropagation, LUTInterpolation,
                          ModelConfig, NetEmbedding, TimingGNN,
                          normalized_adjacency)


@pytest.fixture(scope="module")
def cfg():
    return ModelConfig.fast()


class TestNetEmbedding:
    def test_output_shapes(self, hetero, cfg):
        model = NetEmbedding(cfg)
        emb, net_delay = model(hetero)
        assert emb.shape == (hetero.num_nodes, cfg.embedding_dim)
        assert net_delay.shape == (hetero.num_nodes, 4)

    def test_three_layers_by_default(self):
        model = NetEmbedding(ModelConfig.paper())
        assert len(model.layers) == 3

    def test_deterministic_given_seed(self, hetero, cfg):
        a = NetEmbedding(cfg)
        b = NetEmbedding(cfg)
        np.testing.assert_allclose(a(hetero)[0].data, b(hetero)[0].data)

    def test_embedding_bounded(self, hetero, cfg):
        emb, _nd = NetEmbedding(cfg)(hetero)
        assert np.all(np.abs(emb.data) <= 1.0)

    def test_gradient_reaches_every_parameter(self, hetero, cfg):
        model = NetEmbedding(cfg)
        _emb, net_delay = model(hetero)
        net_delay.sum().backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_broadcast_uses_driver_features(self, hetero, cfg):
        """Perturbing one driver's features must change its sinks'
        embeddings (information flows driver -> sink)."""
        model = NetEmbedding(cfg)
        base, _ = model(hetero)
        driver = int(hetero.net_src[0])
        sink = int(hetero.net_dst[0])
        perturbed = hetero.node_features.copy()
        perturbed[driver, 2] += 0.5
        import dataclasses
        hetero2 = dataclasses.replace(hetero, node_features=perturbed)
        out2, _ = model(hetero2)
        assert not np.allclose(base.data[sink], out2.data[sink])

    def test_reduction_uses_sink_features(self, hetero, cfg):
        """Perturbing a sink's features must change its driver's
        embedding (information flows sink -> driver)."""
        model = NetEmbedding(cfg)
        base, _ = model(hetero)
        driver = int(hetero.net_src[0])
        sink = int(hetero.net_dst[0])
        perturbed = hetero.node_features.copy()
        perturbed[sink, 6] += 0.5
        import dataclasses
        hetero2 = dataclasses.replace(hetero, node_features=perturbed)
        out2, _ = model(hetero2)
        assert not np.allclose(base.data[driver], out2.data[driver])


class TestLUTInterpolation:
    def test_output_shape(self, cfg, rng):
        module = LUTInterpolation(cfg, rng)
        e = 5
        out = module(
            nn.Tensor(rng.normal(size=(e, cfg.prop_dim))),
            nn.Tensor(rng.normal(size=(e, cfg.embedding_dim))),
            np.ones((e, 8)), rng.normal(size=(e, 112)),
            rng.normal(size=(e, 392)))
        assert out.shape == (e, 8)

    def test_invalid_tables_masked(self, cfg, rng):
        module = LUTInterpolation(cfg, rng)
        e = 3
        valid = np.ones((e, 8))
        valid[:, 4:] = 0.0
        out = module(
            nn.Tensor(rng.normal(size=(e, cfg.prop_dim))),
            nn.Tensor(rng.normal(size=(e, cfg.embedding_dim))),
            valid, rng.normal(size=(e, 112)), rng.normal(size=(e, 392)))
        np.testing.assert_allclose(out.data[:, 4:], 0.0)
        assert np.any(out.data[:, :4] != 0.0)

    def test_linear_in_lut_values(self, cfg, rng):
        """For fixed coefficients, the output is linear in LUT values —
        the Kronecker coefficient matrix is a dot product with them."""
        module = LUTInterpolation(cfg, rng)
        e = 4
        h_s = nn.Tensor(rng.normal(size=(e, cfg.prop_dim)))
        h_d = nn.Tensor(rng.normal(size=(e, cfg.embedding_dim)))
        valid = np.ones((e, 8))
        idx = rng.normal(size=(e, 112))
        vals = rng.normal(size=(e, 392))
        out1 = module(h_s, h_d, valid, idx, vals).data
        out2 = module(h_s, h_d, valid, idx, 2.0 * vals).data
        np.testing.assert_allclose(out2, 2.0 * out1, rtol=1e-9)


class TestDelayPropagation:
    def test_shapes(self, hetero, cfg, rng):
        emb = nn.Tensor(rng.normal(size=(hetero.num_nodes,
                                         cfg.embedding_dim)))
        model = DelayPropagation(cfg)
        atslew, cell_delay, order = model(hetero, emb)
        assert atslew.shape == (hetero.num_nodes, 8)
        assert cell_delay.shape == (hetero.num_cell_edges, 4)
        assert set(order.tolist()) == set(range(hetero.num_cell_edges))

    def test_cell_delays_positive(self, hetero, cfg, rng):
        emb = nn.Tensor(rng.normal(size=(hetero.num_nodes,
                                         cfg.embedding_dim)))
        _a, cell_delay, _o = DelayPropagation(cfg)(hetero, emb)
        assert np.all(cell_delay.data > 0)

    def test_slew_positive(self, hetero, cfg, rng):
        emb = nn.Tensor(rng.normal(size=(hetero.num_nodes,
                                         cfg.embedding_dim)))
        atslew, _c, _o = DelayPropagation(cfg)(hetero, emb)
        assert np.all(atslew.data[:, 4:8] > 0)

    def test_arrival_grows_with_depth(self, hetero, cfg, rng):
        """Positive increments force deeper nodes to (weakly) larger
        accumulated arrivals on average — the monotone STA structure."""
        emb = nn.Tensor(rng.normal(size=(hetero.num_nodes,
                                         cfg.embedding_dim)))
        atslew, _c, _o = DelayPropagation(cfg)(hetero, emb)
        arrival = atslew.data[:, 0]
        shallow = arrival[hetero.level <= 1].mean()
        deep = arrival[hetero.level >= hetero.level.max() - 1].mean()
        assert deep > shallow


class TestTimingGNN:
    def test_full_forward_shapes(self, hetero, cfg):
        pred = TimingGNN(cfg)(hetero)
        assert pred.atslew.shape == (hetero.num_nodes, 8)
        assert pred.net_delay.shape == (hetero.num_nodes, 4)
        assert pred.arrival.shape == (hetero.num_nodes, 4)
        assert pred.slew.shape == (hetero.num_nodes, 4)

    def test_predict_has_no_tape(self, hetero, cfg):
        pred = TimingGNN(cfg).predict(hetero)
        assert not pred.atslew.requires_grad

    def test_gradient_reaches_every_parameter(self, hetero, cfg):
        from repro.training import combined_loss
        model = TimingGNN(cfg)
        loss, _parts = combined_loss(model(hetero), hetero)
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no grad for: {missing[:5]}"

    def test_cell_delay_full_reorders(self, hetero, cfg):
        pred = TimingGNN(cfg).predict(hetero)
        full = pred.cell_delay_full(hetero.num_cell_edges)
        assert full.shape == (hetero.num_cell_edges, 4)
        # Row for the first visited edge matches the chunked output.
        first_edge = pred.edge_order[0]
        np.testing.assert_allclose(full[first_edge], pred.cell_delay.data[0])

    def test_state_dict_roundtrip_preserves_output(self, hetero, cfg):
        a = TimingGNN(cfg)
        state = a.state_dict()
        b = TimingGNN(ModelConfig.fast())
        b.load_state_dict(state)
        np.testing.assert_allclose(a.predict(hetero).atslew.data,
                                   b.predict(hetero).atslew.data)

    def test_works_on_multiple_designs(self, hetero_pair, cfg):
        model = TimingGNN(cfg)
        for graph in hetero_pair:
            pred = model.predict(graph)
            assert np.all(np.isfinite(pred.atslew.data))


class TestGCNII:
    def test_normalized_adjacency_symmetric(self, hetero):
        p = normalized_adjacency(hetero)
        diff = (p - p.T)
        assert abs(diff).max() < 1e-12

    def test_normalized_adjacency_spectrum_bounded(self, hetero):
        p = normalized_adjacency(hetero)
        # Symmetric normalization keeps eigenvalues in [-1, 1]; check via
        # power iteration upper bound using the infinity norm of P^k x.
        x = np.ones(hetero.num_nodes) / np.sqrt(hetero.num_nodes)
        for _ in range(20):
            x = p @ x
            norm = np.linalg.norm(x)
            assert norm <= 1.0 + 1e-9
            if norm == 0:
                break
            x /= norm

    def test_self_loops_present(self, hetero):
        p = normalized_adjacency(hetero).tocsr()
        assert np.all(p.diagonal() > 0)

    def test_forward_shape(self, hetero, cfg):
        model = GCNII(4, cfg)
        out = model(hetero)
        assert out.shape == (hetero.num_nodes, 8)

    def test_layer_count_respected(self, cfg):
        assert len(GCNII(8, cfg).weights) == 8

    def test_deeper_model_more_params(self, cfg):
        assert GCNII(16, cfg).num_parameters() > GCNII(4, cfg).num_parameters()

    def test_gradients_flow(self, hetero, cfg):
        model = GCNII(4, cfg)
        model(hetero).sum().backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_alpha_zero_removes_initial_residual(self, hetero, cfg):
        """With alpha=1 every layer output is dominated by H0 — the
        initial residual connection of Eq. (3) is live."""
        m_residual = GCNII(4, cfg, alpha=1.0, beta=0.0)
        out = m_residual(hetero)
        h0 = m_residual.input_proj(nn.Tensor(hetero.node_features)).relu()
        np.testing.assert_allclose(out.data,
                                   m_residual.head(h0.relu()).data)


class TestAblationConfigs:
    """The ablation switches produce working models (benchmarked in
    benchmarks/test_ablations.py)."""

    def _forward_backward(self, hetero, cfg):
        from repro.training import combined_loss
        model = TimingGNN(cfg)
        loss, _parts = combined_loss(model(hetero), hetero)
        loss.backward()
        assert np.isfinite(float(loss.data))
        assert all(p.grad is not None for p in model.parameters())
        return model

    def test_sum_only_reduction(self, hetero):
        import dataclasses
        cfg = dataclasses.replace(ModelConfig.fast(), reduction="sum")
        self._forward_backward(hetero, cfg)

    def test_max_only_reduction(self, hetero):
        import dataclasses
        cfg = dataclasses.replace(ModelConfig.fast(), reduction="max")
        self._forward_backward(hetero, cfg)

    def test_invalid_reduction_rejected(self, hetero):
        import dataclasses
        cfg = dataclasses.replace(ModelConfig.fast(), reduction="median")
        with pytest.raises(ValueError):
            TimingGNN(cfg)(hetero)

    def test_lut_mlp_mode(self, hetero):
        import dataclasses
        cfg = dataclasses.replace(ModelConfig.fast(), lut_mode="mlp")
        self._forward_backward(hetero, cfg)

    def test_invalid_lut_mode_rejected(self):
        import dataclasses
        cfg = dataclasses.replace(ModelConfig.fast(), lut_mode="bilinear")
        with pytest.raises(ValueError):
            TimingGNN(cfg)

    def test_variants_differ_in_output(self, hetero):
        import dataclasses
        base = TimingGNN(ModelConfig.fast()).predict(hetero).atslew.data
        alt_cfg = dataclasses.replace(ModelConfig.fast(), reduction="sum")
        alt = TimingGNN(alt_cfg).predict(hetero).atslew.data
        assert not np.allclose(base, alt)


class TestFusedModelDifferential:
    """Full-model fused vs. naive backend equivalence.

    The fused backend (mlp_chain, gather_concat, CSR segment kernels,
    the level-fused propagation mega-op) must reproduce the composed
    op-by-op path to 1e-9 relative tolerance on outputs, loss and every
    parameter gradient — the kernels reorder floating point arithmetic
    but never approximate.
    """

    # Dtype contract tolerance: 1e-9 relative at float64, relaxed under
    # REPRO_DTYPE=float32 (see repro.nn.contract_tol).
    RTOL, ATOL = nn.contract_tol()

    def _run(self, model, hetero, backend):
        from repro.training.loss import combined_loss
        model.zero_grad()
        with nn.use_kernels(backend):
            pred = model(hetero)
            loss, _parts = combined_loss(pred, hetero)
            loss.backward()
        return (pred.atslew.data.copy(), float(loss.data),
                {name: p.grad.copy()
                 for name, p in model.named_parameters()
                 if p.grad is not None})

    def test_forward_backward_match(self, hetero, cfg):
        model = TimingGNN(cfg)
        at_f, loss_f, grads_f = self._run(model, hetero, "fused")
        at_n, loss_n, grads_n = self._run(model, hetero, "naive")
        np.testing.assert_allclose(at_f, at_n, rtol=self.RTOL,
                                   atol=self.ATOL)
        assert loss_f == pytest.approx(loss_n, rel=self.RTOL)
        assert set(grads_f) == set(grads_n)
        for name in grads_n:
            np.testing.assert_allclose(
                grads_f[name], grads_n[name], rtol=self.RTOL,
                atol=self.ATOL, err_msg=f"gradient mismatch: {name}")

    def test_fused_propagate_dispatch(self, hetero, cfg):
        """kron-mode propagation takes the level-fused path; predictions
        carry no tape (inference) and match the naive path."""
        model = TimingGNN(cfg)
        with nn.use_kernels("fused"):
            pred_f = model.predict(hetero)
        with nn.use_kernels("naive"):
            pred_n = model.predict(hetero)
        assert pred_f.atslew._parents == ()  # no_grad: tape-free
        for field in ("atslew", "net_delay", "cell_delay"):
            np.testing.assert_allclose(
                getattr(pred_f, field).data, getattr(pred_n, field).data,
                rtol=self.RTOL, atol=self.ATOL)
        np.testing.assert_array_equal(pred_f.edge_order, pred_n.edge_order)
