"""Fleet observability semantics: quantile-sketch merging (property-
tested with hypothesis), registry-state merges, the fleet aggregator's
generation folding, SLO tracking, trace-record streaming/ingest and the
``repro top`` frame renderer."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (FleetAggregator, Histogram, MetricsRegistry,
                       SloTracker, Tracer, format_span_tree,
                       iter_trace_records, make_span_record,
                       merge_sketches, merge_states, mint_trace_id,
                       render_top, sketch_quantile)


def _registry_state(counts=(), gauge=None, observations=()):
    registry = MetricsRegistry()
    for outcome, value in counts:
        registry.counter("repro_worker_requests_total", "reqs",
                         outcome=outcome).inc(value)
    if gauge is not None:
        registry.gauge("repro_worker_graphs", "graphs").set(gauge)
    if observations:
        hist = registry.histogram("repro_worker_request_ms", "lat")
        for value in observations:
            hist.observe(value)
    return registry.export_state()


# -- histogram sketches ----------------------------------------------------------
class TestSketch:
    def test_sketch_exact_within_max_points(self):
        hist = Histogram("lat_ms")
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for v in values:
            hist.observe(v)
        sketch = hist.sketch(max_points=16)
        assert sketch["count"] == 5
        assert sketch["sum"] == pytest.approx(15.0)
        assert sketch["min"] == 1.0 and sketch["max"] == 5.0
        assert sketch["sample"] == sorted(values)

    def test_sketch_bounded_past_max_points(self):
        hist = Histogram("lat_ms")
        values = np.arange(1.0, 1001.0)
        for v in values:
            hist.observe(v)
        sketch = hist.sketch(max_points=64)
        assert len(sketch["sample"]) == 64
        assert sketch["count"] == 1000
        # The grid spans the reservoir and stays sorted.
        assert sketch["sample"][0] == pytest.approx(1.0)
        assert sketch["sample"][-1] == pytest.approx(1000.0)
        assert sketch["sample"] == sorted(sketch["sample"])

    def test_empty_sketch_merges_to_empty(self):
        assert merge_sketches([])["count"] == 0
        assert math.isnan(sketch_quantile(merge_sketches([]), 0.5))
        assert math.isnan(sketch_quantile(None, 0.5))

    def test_merge_counts_sums_extrema_exact(self):
        h1, h2 = Histogram("a"), Histogram("b")
        for v in (1.0, 2.0, 3.0):
            h1.observe(v)
        for v in (10.0, 20.0):
            h2.observe(v)
        merged = merge_sketches([h1.sketch(), h2.sketch()])
        assert merged["count"] == 5
        assert merged["sum"] == pytest.approx(36.0)
        assert merged["min"] == 1.0 and merged["max"] == 20.0

    def test_merge_weights_by_count(self):
        # A sketch that summarizes 900 observations with few points must
        # pull the merged median ~9x harder than a 100-observation one.
        big = {"count": 900, "sum": 900.0, "min": 1.0, "max": 1.0,
               "sample": [1.0] * 10}
        small = {"count": 100, "sum": 10000.0, "min": 100.0,
                 "max": 100.0, "sample": [100.0] * 10}
        merged = merge_sketches([big, small])
        assert sketch_quantile(merged, 0.5) == pytest.approx(1.0, abs=1.0)
        assert sketch_quantile(merged, 0.99) >= 50.0

    @settings(max_examples=40, deadline=None)
    @given(a=st.lists(st.floats(0.0, 1e6), min_size=20, max_size=120),
           b=st.lists(st.floats(0.0, 1e6), min_size=20, max_size=120))
    def test_merged_quantiles_match_pooled_stream(self, a, b):
        # Satellite: merged p50/p99 of two disjoint streams must land
        # within (rank) tolerance of the pooled stream's quantiles.
        h1, h2 = Histogram("s1"), Histogram("s2")
        for v in a:
            h1.observe(v)
        for v in b:
            h2.observe(v)
        merged = merge_sketches([h1.sketch(), h2.sketch()])
        pooled = np.sort(np.asarray(a + b, dtype=float))
        n = len(pooled)
        for q in (0.5, 0.99):
            estimate = sketch_quantile(merged, q)
            lo = pooled[max(0, int(math.floor(q * (n - 1))) - 3)]
            hi = pooled[min(n - 1, int(math.ceil(q * (n - 1))) + 3)]
            assert lo - 1e-6 <= estimate <= hi + 1e-6, \
                (q, estimate, lo, hi)


# -- registry-state merging ------------------------------------------------------
class TestMergeStates:
    def test_counters_sum_gauges_last_write(self):
        s1 = _registry_state(counts=[("ok", 3)], gauge=2)
        s2 = _registry_state(counts=[("ok", 4), ("error", 1)], gauge=7)
        merged = merge_states([s1, s2])
        by_outcome = {
            tuple(sorted(series["labels"].items())): series["value"]
            for series in merged["repro_worker_requests_total"]["series"]}
        assert by_outcome[(("outcome", "ok"),)] == 7
        assert by_outcome[(("outcome", "error"),)] == 1
        assert merged["repro_worker_graphs"]["series"][0]["value"] == 7

    def test_summaries_merge_sketches(self):
        s1 = _registry_state(observations=[1.0, 2.0])
        s2 = _registry_state(observations=[3.0])
        merged = merge_states([s1, s2])
        value = merged["repro_worker_request_ms"]["series"][0]["value"]
        assert value["count"] == 3
        assert value["sum"] == pytest.approx(6.0)

    def test_inputs_not_mutated(self):
        s1 = _registry_state(counts=[("ok", 3)])
        s2 = _registry_state(counts=[("ok", 4)])
        merge_states([s1, s2])
        assert s1["repro_worker_requests_total"]["series"][0]["value"] == 3
        assert s2["repro_worker_requests_total"]["series"][0]["value"] == 4


# -- fleet aggregator ------------------------------------------------------------
class TestFleetAggregator:
    def test_merged_sums_across_sources(self):
        fleet = FleetAggregator()
        fleet.update(0, _registry_state(counts=[("ok", 5)]), pid=100)
        fleet.update(1, _registry_state(counts=[("ok", 7)]), pid=101)
        assert fleet.counter_total("repro_worker_requests_total") == 12
        assert fleet.sources() == ["0", "1"]
        assert sorted(fleet.live_sources()) == ["0", "1"]

    def test_cumulative_snapshots_replace_not_accumulate(self):
        # Workers republish cumulative counters; the aggregator must
        # treat each snapshot as the latest truth, not an increment.
        fleet = FleetAggregator()
        fleet.update(0, _registry_state(counts=[("ok", 5)]), pid=100)
        fleet.update(0, _registry_state(counts=[("ok", 9)]), pid=100)
        assert fleet.counter_total("repro_worker_requests_total") == 9

    def test_restart_folds_dead_generation(self):
        # Counters survive a crash/restart: the dead generation's totals
        # fold into a base the new generation adds on top of.
        fleet = FleetAggregator()
        fleet.update(0, _registry_state(counts=[("ok", 5)], gauge=3),
                     pid=100)
        fleet.retire(0)
        fleet.update(0, _registry_state(counts=[("ok", 2)]), pid=200)
        assert fleet.counter_total("repro_worker_requests_total") == 7
        # Gauges of the dead generation are dropped, not frozen.
        merged = fleet.merged()
        assert "repro_worker_graphs" not in merged

    def test_pid_change_auto_folds(self):
        fleet = FleetAggregator()
        fleet.update(0, _registry_state(counts=[("ok", 5)]), pid=100)
        fleet.update(0, _registry_state(counts=[("ok", 2)]), pid=200)
        assert fleet.counter_total("repro_worker_requests_total") == 7

    def test_expiry_then_resurrection_does_not_double_count(self):
        # A worker that publishes slowly enough to be expired, then
        # resumes with the same pid, is one generation: its folded base
        # entry must be shadowed by the live cumulative snapshot.
        fleet = FleetAggregator(max_age_s=1.0)
        fleet.update(0, _registry_state(counts=[("ok", 5)]), pid=100,
                     ts=0.0)
        assert fleet.expire(now=10.0) == ["0"]
        assert fleet.counter_total("repro_worker_requests_total") == 5
        fleet.update(0, _registry_state(counts=[("ok", 8)]), pid=100,
                     ts=11.0)
        assert fleet.counter_total("repro_worker_requests_total") == 8

    def test_histogram_quantiles_and_summary(self):
        fleet = FleetAggregator()
        fleet.update(0, _registry_state(counts=[("ok", 2)],
                                        observations=[10.0, 20.0]),
                     pid=1)
        fleet.update(1, _registry_state(counts=[("error", 1)],
                                        observations=[30.0]), pid=2)
        quantiles = fleet.histogram_quantiles("repro_worker_request_ms")
        assert quantiles["count"] == 3
        assert 10.0 <= quantiles["p50"] <= 30.0
        summary = fleet.summary()
        assert summary["worker_requests"] == {"ok": 2, "error": 1}
        assert summary["worker_requests_total"] == 3
        assert summary["latency_ms"]["count"] == 3

    def test_render_prometheus_worker_labels(self):
        fleet = FleetAggregator()
        fleet.update(1, _registry_state(counts=[("ok", 5)], gauge=2,
                                        observations=[1.0, 2.0]), pid=9)
        text = fleet.render_prometheus()
        assert 'repro_worker_requests_total{outcome="ok",worker="1"} 5' \
            in text
        assert 'repro_worker_graphs{worker="1"} 2' in text
        assert '# TYPE repro_worker_request_ms summary' in text
        assert 'repro_worker_request_ms_count{worker="1"} 2' in text
        assert 'quantile="0.5"' in text


# -- SLO tracker -----------------------------------------------------------------
class TestSloTracker:
    def test_good_bad_classification(self):
        slo = SloTracker(objective_ms=100.0, window=10)
        assert slo.record(50.0) is True
        assert slo.record(150.0) is False        # over objective
        assert slo.record(None, ok=False) is False   # shed/fault
        summary = slo.summary()
        assert summary == {"objective_ms": 100.0, "window": 10,
                           "total": 3, "good": 1, "bad": 2,
                           "good_ratio": pytest.approx(1 / 3, abs=1e-3)}

    def test_window_is_rolling(self):
        slo = SloTracker(objective_ms=100.0, window=2)
        slo.record(500.0)
        slo.record(10.0)
        slo.record(10.0)
        assert slo.summary()["good_ratio"] == 1.0

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLO_LATENCY_MS", "250")
        monkeypatch.setenv("REPRO_SLO_WINDOW", "32")
        slo = SloTracker()
        assert slo.objective_ms == 250.0
        assert slo.window == 32

    def test_empty_window_is_healthy(self):
        assert SloTracker().summary()["good_ratio"] == 1.0


# -- trace record streaming / ingest ---------------------------------------------
class TestTraceRecords:
    def test_iter_reads_rotated_generation_first(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        older = make_span_record("old", "t1", None, 1.0, 2.0)
        newer = make_span_record("new", "t2", None, 3.0, 4.0)
        with open(str(path) + ".1", "w") as fh:
            fh.write(json.dumps(older) + "\n")
        with open(path, "w") as fh:
            fh.write("not json\n\n")
            fh.write(json.dumps({"no": "span_id"}) + "\n")
            fh.write(json.dumps(newer) + "\n")
        records = list(iter_trace_records(path))
        assert [r["name"] for r in records] == ["old", "new"]

    def test_trace_id_filter(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as fh:
            for name, tid in (("a", "t1"), ("b", "t2"), ("c", "t1")):
                fh.write(json.dumps(
                    make_span_record(name, tid, None, 0.0, 1.0)) + "\n")
        records = list(iter_trace_records(path, trace_id="t1"))
        assert [r["name"] for r in records] == ["a", "c"]
        assert list(iter_trace_records(path, trace_id="zzz")) == []

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_trace_records(tmp_path / "absent.jsonl")) == []

    def test_ingest_stitches_foreign_spans_under_parent(self):
        tracer = Tracer()
        with tracer.span("pool.submit") as sp:
            worker_root = make_span_record(
                "worker.predict", sp.trace_id, sp.span_id, 0.0, 5.0,
                worker=1)
            child = make_span_record(
                "worker.forward", sp.trace_id, worker_root["span_id"],
                0.001, 3.0)
            assert tracer.ingest([worker_root, child,
                                  {"not": "a span"}, None]) == 2
        spans = tracer.spans()
        assert {s["trace_id"] for s in spans} == {sp.trace_id}
        tree = format_span_tree(spans)
        lines = tree.splitlines()
        submit = next(i for i, l in enumerate(lines) if "pool.submit" in l)
        predict = next(i for i, l in enumerate(lines)
                       if "worker.predict" in l)
        forward = next(i for i, l in enumerate(lines)
                       if "worker.forward" in l)
        assert submit < predict < forward
        # Children are indented under their parents.
        assert lines[predict].index("worker.predict") > \
            lines[submit].index("pool.submit")
        assert lines[forward].index("worker.forward") > \
            lines[predict].index("worker.predict")

    def test_mint_trace_id_shape(self):
        ids = {mint_trace_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)


# -- repro top frame renderer ----------------------------------------------------
class TestRenderTop:
    def _stats(self, requests=100, shed=4):
        return {
            "counts": {"requests": requests, "errors": 1, "degraded": 2,
                       "shed": shed},
            "latency": {"p50_ms": 12.5, "p99_ms": 80.0, "mean_ms": 20.0},
            "uptime_s": 42.0,
            "result_cache": {"hits": 5, "misses": 7},
            "graph_cache": {"hits": 9, "misses": 3},
            "pool": {
                "workers": 2, "pending": 1, "shed": shed, "restarts": 1,
                "shm_bytes": 2_000_000, "shm_segments": 3,
                "per_worker": [
                    {"worker": 0, "alive": True, "completed": 60,
                     "batches": 30, "mean_batch": 2.0, "batch_max": 4,
                     "restarts": 0, "latency_p50_ms": 10.0,
                     "latency_p99_ms": 50.0},
                    {"worker": 1, "alive": False, "completed": 40,
                     "batches": 25, "mean_batch": 1.6, "batch_max": 3,
                     "restarts": 1, "latency_p50_ms": 15.0,
                     "latency_p99_ms": 90.0},
                ],
            },
        }

    def test_pool_frame_contents(self):
        healthz = {"status": "degraded",
                   "slo": {"objective_ms": 500.0, "window": 512,
                           "total": 100, "good": 97, "bad": 3,
                           "good_ratio": 0.97}}
        frame = render_top(self._stats(), healthz,
                           url="http://127.0.0.1:8080")
        assert "status degraded" in frame
        assert "SLO 97.0% good" in frame
        assert "pool: 2 workers" in frame
        assert "DOWN" in frame            # worker 1 is dead
        assert "restarts" in frame
        assert "p50 12.5 ms" in frame

    def test_rates_from_previous_sample(self):
        prev = self._stats(requests=50, shed=0)
        frame = render_top(self._stats(requests=100, shed=4),
                           prev=prev, dt=5.0)
        assert "qps 10.0" in frame
        assert "(0.8/s)" in frame         # shed rate
        worker0 = next(l for l in frame.splitlines()
                       if l.strip().startswith("0 "))
        # worker 0: 60 completed now vs 60 before -> 0 qps... the prev
        # sample carried 60 too, so the delta is zero.
        assert " 0.0 " in worker0

    def test_single_process_frame(self):
        stats = {"counts": {"requests": 10, "errors": 0, "degraded": 0,
                            "shed": 0},
                 "latency": {"p50_ms": 1.0, "p99_ms": 2.0,
                             "mean_ms": 1.5},
                 "uptime_s": 5.0,
                 "batching": {"timing-full": {
                     "batches": 4, "mean_batch": 2.5, "max_batch": 4,
                     "queue_depth": 0}}}
        frame = render_top(stats, {})
        assert "batcher[timing-full]" in frame
        assert "pool:" not in frame
