"""Training: loss semantics (Eqs. 4-7), trainers, evaluation protocol."""

import numpy as np
import pytest

from repro import nn
from repro.models import ModelConfig, TimingGNN
from repro.training import (TrainConfig, atslew_loss, cell_delay_loss,
                            combined_loss, evaluate_gcnii_output,
                            evaluate_timing_gnn, net_delay_loss,
                            slack_from_arrival, train_gcnii,
                            train_net_embedding, train_timing_gnn)


@pytest.fixture(scope="module")
def cfg():
    return ModelConfig.fast()


@pytest.fixture(scope="module")
def prediction(hetero_pair, cfg):
    model = TimingGNN(cfg)
    return model, model(hetero_pair[0]), hetero_pair[0]


class TestLosses:
    def test_atslew_zero_on_perfect(self, hetero, cfg):
        pred = TimingGNN(cfg)(hetero)
        perfect = np.concatenate([hetero.arrival, hetero.slew], axis=1)
        pred.atslew = nn.Tensor(perfect)
        assert float(atslew_loss(pred, hetero).data) == 0.0

    def test_atslew_positive_otherwise(self, prediction):
        _model, pred, graph = prediction
        assert float(atslew_loss(pred, graph).data) > 0

    def test_cell_delay_loss_matches_manual(self, prediction):
        _model, pred, graph = prediction
        loss = float(cell_delay_loss(pred, graph).data)
        manual = float(np.mean(
            (pred.cell_delay.data -
             graph.cell_arc_delay[pred.edge_order]) ** 2))
        np.testing.assert_allclose(loss, manual, rtol=1e-9)

    def test_net_delay_loss_masked_to_sinks(self, prediction):
        _model, pred, graph = prediction
        loss = float(net_delay_loss(pred, graph).data)
        mask = graph.is_net_sink
        manual = float(np.mean(
            (pred.net_delay.data[mask] - graph.net_delay[mask]) ** 2))
        np.testing.assert_allclose(loss, manual, rtol=1e-9)

    def test_combined_sums_parts(self, prediction):
        _model, pred, graph = prediction
        loss, parts = combined_loss(pred, graph, net_weight=1.0,
                                    cell_weight=1.0)
        np.testing.assert_allclose(
            float(loss.data),
            parts["atslew"] + parts["cell_delay"] + parts["net_delay"],
            rtol=1e-9)

    def test_ablation_flags(self, prediction):
        _model, pred, graph = prediction
        _loss, parts = combined_loss(pred, graph, use_net_aux=False,
                                     use_cell_aux=True)
        assert "net_delay" not in parts and "cell_delay" in parts
        _loss, parts = combined_loss(pred, graph, use_net_aux=True,
                                     use_cell_aux=False)
        assert "net_delay" in parts and "cell_delay" not in parts

    def test_gradients_from_combined(self, hetero, cfg):
        model = TimingGNN(cfg)
        loss, _ = combined_loss(model(hetero), hetero)
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)


class TestTrainers:
    def test_timing_gnn_loss_decreases(self, hetero_pair, cfg):
        tcfg = TrainConfig(epochs=8, lr=3e-3)
        _model, history = train_timing_gnn(hetero_pair, cfg, tcfg)
        assert history.loss[-1] < 0.5 * history.loss[0]
        assert len(history.loss) == 8

    def test_timing_gnn_improves_r2(self, hetero_pair, cfg):
        graph = hetero_pair[0]
        fresh = TimingGNN(cfg)
        before = evaluate_timing_gnn(fresh, graph)["arrival_r2"]
        model, _history = train_timing_gnn([graph], cfg,
                                           TrainConfig(epochs=25, lr=3e-3))
        after = evaluate_timing_gnn(model, graph)["arrival_r2"]
        assert after > before

    def test_gcnii_trains(self, hetero_pair, cfg):
        _model, history = train_gcnii(hetero_pair, 4, cfg,
                                      TrainConfig(epochs=8, lr=3e-3))
        assert history.loss[-1] < history.loss[0]

    def test_net_embedding_trains(self, hetero_pair, cfg):
        _model, history = train_net_embedding(hetero_pair, cfg,
                                              TrainConfig(epochs=8, lr=3e-3))
        assert history.loss[-1] < history.loss[0]

    def test_training_deterministic(self, hetero_pair, cfg):
        tcfg = TrainConfig(epochs=3, lr=1e-3, seed=5)
        a, ha = train_timing_gnn(hetero_pair, cfg, tcfg)
        b, hb = train_timing_gnn(hetero_pair, cfg, tcfg)
        np.testing.assert_allclose(ha.loss, hb.loss)
        np.testing.assert_allclose(
            a.predict(hetero_pair[0]).atslew.data,
            b.predict(hetero_pair[0]).atslew.data)

    def test_lr_decay_applied(self, hetero_pair, cfg):
        from repro import nn as _nn
        tcfg = TrainConfig(epochs=2, lr=1e-3, lr_decay=0.5)
        model, _h = train_timing_gnn(hetero_pair[:1], cfg, tcfg)
        # Indirect check: training ran and produced finite params.
        assert all(np.all(np.isfinite(p.data)) for p in model.parameters())


class TestEvaluation:
    def test_metric_keys(self, prediction):
        model, _pred, graph = prediction
        metrics = evaluate_timing_gnn(model, graph)
        for key in ("arrival_r2", "slew_r2", "slack_r2", "net_delay_r2",
                    "cell_delay_r2", "at_slack_r2"):
            assert key in metrics

    def test_perfect_arrival_gives_perfect_slack(self, hetero):
        slack = slack_from_arrival(hetero, hetero.arrival)
        np.testing.assert_allclose(slack, hetero.slack())

    def test_gcnii_eval_protocol(self, hetero):
        perfect = np.concatenate([hetero.arrival, hetero.slew], axis=1)
        metrics = evaluate_gcnii_output(hetero, perfect)
        np.testing.assert_allclose(metrics["arrival_r2"], 1.0)
        np.testing.assert_allclose(metrics["slack_r2"], 1.0)

    def test_constant_prediction_scores_zero_or_less(self, hetero):
        const = np.zeros((hetero.num_nodes, 8))
        const[:, 0:4] = hetero.arrival.mean()
        metrics = evaluate_gcnii_output(hetero, const)
        assert metrics["arrival_r2"] <= 0.01
