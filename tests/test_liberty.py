"""Cell library: LUT interpolation, arcs, unateness, corner ordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.liberty import (EL_RF, LUT_SIZE, Sense, TimingLUT,
                           make_sky130_like_library)
from repro.liberty.library import SLEW_AXIS, LOAD_AXIS


class TestTimingLUT:
    def make_lut(self):
        return TimingLUT.from_model(SLEW_AXIS, LOAD_AXIS, intrinsic=30.0,
                                    load_coeff=2.0, slew_coeff=0.15,
                                    cross_coeff=0.1)

    def test_exact_at_grid_points(self):
        lut = self.make_lut()
        for i in range(LUT_SIZE):
            for j in range(LUT_SIZE):
                got = lut.lookup(SLEW_AXIS[i], LOAD_AXIS[j])
                np.testing.assert_allclose(got, lut.values[i, j], rtol=1e-12)

    def test_interpolation_between_grid_points(self):
        lut = self.make_lut()
        s = 0.5 * (SLEW_AXIS[2] + SLEW_AXIS[3])
        c = LOAD_AXIS[4]
        expected = 0.5 * (lut.values[2, 4] + lut.values[3, 4])
        np.testing.assert_allclose(lut.lookup(s, c), expected, rtol=1e-12)

    def test_bilinear_midpoint(self):
        lut = self.make_lut()
        s = 0.5 * (SLEW_AXIS[1] + SLEW_AXIS[2])
        c = 0.5 * (LOAD_AXIS[1] + LOAD_AXIS[2])
        expected = 0.25 * (lut.values[1, 1] + lut.values[1, 2] +
                           lut.values[2, 1] + lut.values[2, 2])
        np.testing.assert_allclose(lut.lookup(s, c), expected, rtol=1e-12)

    def test_vectorized_lookup(self):
        lut = self.make_lut()
        s = np.asarray([10.0, 50.0, 200.0])
        c = np.asarray([2.0, 30.0, 100.0])
        out = lut.lookup(s, c)
        assert out.shape == (3,)
        for i in range(3):
            np.testing.assert_allclose(out[i], lut.lookup(s[i], c[i]))

    def test_extrapolation_is_linear(self):
        lut = self.make_lut()
        # Beyond the last load point the table continues linearly.
        c1, c2 = LOAD_AXIS[-2], LOAD_AXIS[-1]
        v1 = lut.lookup(SLEW_AXIS[0], c1)
        v2 = lut.lookup(SLEW_AXIS[0], c2)
        slope = (v2 - v1) / (c2 - c1)
        beyond = lut.lookup(SLEW_AXIS[0], c2 + 50.0)
        np.testing.assert_allclose(beyond, v2 + slope * 50.0, rtol=1e-9)

    def test_monotone_in_load(self):
        lut = self.make_lut()
        loads = np.linspace(LOAD_AXIS[0], LOAD_AXIS[-1], 40)
        vals = lut.lookup(np.full(40, 50.0), loads)
        assert np.all(np.diff(vals) > 0)

    def test_scaled(self):
        lut = self.make_lut()
        np.testing.assert_allclose(lut.scaled(2.0).values, lut.values * 2)

    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError):
            TimingLUT(np.ones(LUT_SIZE), LOAD_AXIS,
                      np.zeros((LUT_SIZE, LUT_SIZE)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TimingLUT(SLEW_AXIS, LOAD_AXIS, np.zeros((3, 3)))

    @settings(max_examples=30, deadline=None)
    @given(s=st.floats(5.0, 320.0), c=st.floats(1.0, 180.0))
    def test_lookup_within_table_bounds(self, s, c):
        """Inside the grid, bilinear interpolation stays within the
        min/max of the table values."""
        lut = self.make_lut()
        val = float(lut.lookup(s, c))
        assert lut.values.min() - 1e-9 <= val <= lut.values.max() + 1e-9


class TestLibrary:
    def test_deterministic(self):
        a = make_sky130_like_library(seed=1)
        b = make_sky130_like_library(seed=1)
        la = a["NAND2_X1"].arc("A", "Y").lut("delay", "late", "rise")
        lb = b["NAND2_X1"].arc("A", "Y").lut("delay", "late", "rise")
        np.testing.assert_allclose(la.values, lb.values)

    def test_seed_changes_library(self):
        a = make_sky130_like_library(seed=1)
        b = make_sky130_like_library(seed=2)
        la = a["NAND2_X1"].arc("A", "Y").lut("delay", "late", "rise")
        lb = b["NAND2_X1"].arc("A", "Y").lut("delay", "late", "rise")
        assert not np.allclose(la.values, lb.values)

    def test_cell_roster(self, library):
        assert "INV_X1" in library
        assert "DFF_X1" in library
        assert len(library.sequential_cells) == 2
        assert len(library.combinational_cells) >= 15

    def test_arity_buckets(self, library):
        for arity in (1, 2, 3):
            cells = library.cells_with_inputs(arity)
            assert cells, f"no cells with {arity} inputs"
            for cell in cells:
                assert len(cell.input_pins) == arity

    def test_early_faster_than_late(self, library):
        arc = library["NAND2_X1"].arc("A", "Y")
        early = arc.lut("delay", "early", "rise").values
        late = arc.lut("delay", "late", "rise").values
        assert np.all(early < late)

    def test_all_arcs_have_8_luts(self, library):
        for cell in library.cells.values():
            for arc in cell.arcs:
                assert len(arc.luts) == 8

    def test_stacked_luts_shapes_and_order(self, library):
        arc = library["XOR2_X1"].arc("A", "Y")
        valid, indices, values = arc.stacked_luts()
        assert valid.shape == (8,)
        assert indices.shape == (8, 14)
        assert values.shape == (8, 49)
        assert np.all(valid == 1.0)
        # First LUT in the stack is (delay, early, rise).
        lut = arc.lut("delay", "early", "rise")
        np.testing.assert_allclose(values[0], lut.values.reshape(-1))
        np.testing.assert_allclose(indices[0, :7], lut.slew_axis)
        np.testing.assert_allclose(indices[0, 7:], lut.load_axis)

    def test_unateness_mapping(self):
        lib = make_sky130_like_library()
        inv = lib["INV_X1"].arc("A", "Y")
        assert inv.sense == Sense.NEGATIVE
        assert inv.input_transition_for("rise") == ("fall",)
        assert inv.input_transition_for("fall") == ("rise",)
        buf = lib["BUF_X1"].arc("A", "Y")
        assert buf.input_transition_for("rise") == ("rise",)
        xor = lib["XOR2_X1"].arc("A", "Y")
        assert set(xor.input_transition_for("rise")) == {"rise", "fall"}

    def test_drive_strength_reduces_load_sensitivity(self, library):
        x1 = library["INV_X1"].arc("A", "Y").lut("delay", "late", "rise")
        x4 = library["INV_X4"].arc("A", "Y").lut("delay", "late", "rise")
        # Delay increase from min to max load should be much smaller for
        # the stronger driver.
        slope1 = x1.values[0, -1] - x1.values[0, 0]
        slope4 = x4.values[0, -1] - x4.values[0, 0]
        assert slope4 < 0.6 * slope1

    def test_input_capacitance_scales_with_drive(self, library):
        c1 = library["INV_X1"].pin_capacitance("A").mean()
        c4 = library["INV_X4"].pin_capacitance("A").mean()
        assert c4 > 2.0 * c1

    def test_dff_has_constraints(self, library):
        dff = library["DFF_X1"]
        assert dff.is_sequential
        assert dff.setup.shape == (4,)
        assert dff.hold.shape == (4,)
        assert np.all(dff.setup > dff.hold)
        assert dff.pins["CK"].is_clock

    def test_el_rf_order(self):
        assert EL_RF == (("early", "rise"), ("early", "fall"),
                         ("late", "rise"), ("late", "fall"))

    def test_wire_model_derating(self, library):
        wire = library.wire
        assert wire.unit_r("early") < wire.unit_r("late")
        assert wire.unit_c("early") < wire.unit_c("late")

    def test_missing_arc_raises(self, library):
        with pytest.raises(KeyError):
            library["NAND2_X1"].arc("Z", "Y")
