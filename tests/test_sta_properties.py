"""Physics/property tests of the STA substrate.

These check *relationships* a real timing engine must respect —
monotonicity in parasitics, clock period, drive strength, load —
on freshly generated circuits, plus degenerate-topology edge cases.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.liberty import WireModel, make_sky130_like_library
from repro.netlist import generate_circuit
from repro.netlist.design import Design
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import LATE_COLS, build_timing_graph, run_sta


def analyse(design, seed=0, clock_period=None, placement=None):
    placement = placement or place_design(design, seed=seed)
    routing = route_design(design, placement)
    return run_sta(design, placement, routing, clock_period=clock_period)


class TestMonotonicity:
    def test_heavier_wires_slow_the_design(self, library):
        design = generate_circuit("mono_w", 220, "datapath", library,
                                  seed=5)
        result_base = analyse(design, clock_period=3000.0)
        heavy = dataclasses.replace(
            library.wire,
            resistance_per_um=library.wire.resistance_per_um * 3,
            capacitance_per_um=library.wire.capacitance_per_um * 2)
        original = design.library.wire
        design.library.wire = heavy
        try:
            result_heavy = analyse(design, clock_period=3000.0)
        finally:
            design.library.wire = original
        # Arrival can only get later with heavier parasitics.
        assert np.nanmean(result_heavy.arrival[:, LATE_COLS]) > \
            np.nanmean(result_base.arrival[:, LATE_COLS])
        assert result_heavy.wns("setup") < result_base.wns("setup")

    def test_longer_clock_period_more_slack(self, library):
        design = generate_circuit("mono_t", 200, "control", library,
                                  seed=6)
        fast = analyse(design, clock_period=1000.0)
        slow = analyse(design, clock_period=3000.0)
        np.testing.assert_allclose(slow.wns("setup"),
                                   fast.wns("setup") + 2000.0, atol=1e-6)
        # Hold slack is independent of the clock period.
        np.testing.assert_allclose(slow.wns("hold"), fast.wns("hold"),
                                   atol=1e-6)

    def test_spread_placement_slower_than_compact(self, library):
        """The same netlist placed on a larger die (longer wires) is
        slower — the geometric signal the models learn from."""
        design = generate_circuit("mono_p", 220, "cipher", library, seed=7)
        compact = place_design(design, seed=1, pitch=6.0)
        spread = place_design(design, seed=1, pitch=18.0)
        r_compact = analyse(design, clock_period=4000.0,
                            placement=compact)
        r_spread = analyse(design, clock_period=4000.0, placement=spread)
        assert np.nanmean(r_spread.arrival[:, LATE_COLS]) > \
            np.nanmean(r_compact.arrival[:, LATE_COLS])

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_arrival_monotone_along_every_net_edge(self, library, seed):
        design = generate_circuit("hprop", 180, "control", library,
                                  seed=seed)
        placement = place_design(design, seed=seed)
        routing = route_design(design, placement)
        result = run_sta(design, placement, routing, clock_period=2500.0)
        graph = result.graph
        for edge in graph.net_edges:
            # Wire only adds delay.
            assert np.all(result.arrival[edge.dst, LATE_COLS] >=
                          result.arrival[edge.src, LATE_COLS] - 1e-9)


class TestDegenerateTopologies:
    def test_purely_combinational_design(self, library):
        design = Design("comb_only", library)
        a = design.add_port("a", "input")
        b = design.add_port("b", "input")
        y = design.add_port("y", "output")
        g = design.add_cell("g0", library["NAND2_X1"])
        design.add_net("na", a, [g.pins["A"]])
        design.add_net("nb", b, [g.pins["B"]])
        design.add_net("ny", g.pins["Y"], [y])
        result = analyse(design, clock_period=1000.0)
        assert result.endpoint_mask.sum() == 1    # the output port
        assert np.all(np.isfinite(result.arrival))

    def test_single_wire_design(self, library):
        design = Design("wire_only", library)
        a = design.add_port("a", "input")
        y = design.add_port("y", "output")
        design.add_net("n", a, [y])
        result = analyse(design, clock_period=1000.0)
        graph = result.graph
        assert result.arrival[graph.node(y), 2] >= 0

    def test_register_to_register_only(self, library):
        design = Design("reg2reg", library)
        design.add_port("clk", "input", is_clock=True)
        r1 = design.add_cell("r1", library["DFF_X1"])
        r2 = design.add_cell("r2", library["DFF_X1"])
        inv = design.add_cell("g", library["INV_X1"])
        design.add_net("q1", r1.pins["Q"], [inv.pins["A"]])
        design.add_net("d2", inv.pins["Y"], [r2.pins["D"]])
        # r2.Q dangles; give it an observation port as the generator does.
        po = design.add_port("obs", "output")
        design.add_net("q2", r2.pins["Q"], [po])
        # r1.D needs a driver: tie to an input port.
        pi = design.add_port("din", "input")
        design.add_net("d1", pi, [r1.pins["D"]])
        result = analyse(design, clock_period=2000.0)
        graph = result.graph
        d2_node = graph.node(r2.pins["D"])
        assert result.endpoint_mask[d2_node]
        # Launch (CK->Q) + inv + wires must all be included.
        assert result.arrival[d2_node, 2] > 0

    def test_high_fanout_net(self, library):
        design = Design("fanout", library)
        a = design.add_port("a", "input")
        sinks = []
        for i in range(24):
            inv = design.add_cell(f"g{i}", library["INV_X1"])
            sinks.append(inv.pins["A"])
            po = design.add_port(f"y{i}", "output")
            design.add_net(f"n{i}", inv.pins["Y"], [po])
        design.add_net("fan", a, sinks)
        result = analyse(design, clock_period=2000.0)
        assert np.all(np.isfinite(result.arrival))
        # The shared net's sinks see nonzero interconnect delay.
        graph = result.graph
        delays = [result.net_delay[graph.node(s), 2] for s in sinks]
        assert max(delays) > 0


class TestCornerConsistency:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_early_never_after_late_anywhere(self, library, seed):
        design = generate_circuit("hcorner", 160, "cipher", library,
                                  seed=seed)
        result = analyse(design, seed=seed, clock_period=2500.0)
        at = result.arrival
        assert np.all(at[:, 0] <= at[:, 2] + 1e-9)
        assert np.all(at[:, 1] <= at[:, 3] + 1e-9)

    def test_derate_widens_corner_spread(self, library):
        design = generate_circuit("spread", 200, "datapath", library,
                                  seed=9)
        result = analyse(design, clock_period=3000.0)
        gap = result.arrival[:, 2] - result.arrival[:, 0]
        assert np.all(gap >= -1e-9)
        assert gap.mean() > 0
