"""Prediction-quality observability: shadow-STA audits, endpoint
accuracy metrics, feature drift and the accuracy SLO.

The headline differential here mirrors the delta harness's discipline:
the *online* audit loop and the *offline* ``training.evaluate`` path
must produce identical endpoint metrics (to 1e-9) for the same
(model, design) pair, because they share one implementation
(``repro.ml.endpoint_metrics``).  The rest pins down the operational
contract: auditing never blocks the request path, respects its token
budget, rotates its log like a trace sink, and merges losslessly
through the fleet aggregator after a pooled shutdown.

Models are untrained (random init): every property under test is
independent of model quality.
"""

from __future__ import annotations

import json
import math
import os
import queue
import time

import numpy as np
import pytest

from repro.flow import Flow
from repro.graphdata.hetero import HeteroGraph
from repro.ml import (endpoint_slack_metrics, spearman_correlation,
                      top_k_negative_recall, worst_slack_per_endpoint)
from repro.models import ModelConfig, TimingGNN
from repro.obs.quality import (AccuracySlo, AuditLog, DriftTracker,
                               FeatureProfile, QualityMonitor)
from repro.parallel import ShmArena
from repro.serving import (ModelRegistry, PooledPredictionService,
                           PredictionService)
from repro.serving.pool.worker import (MSG_MODEL, MSG_PREDICT, MSG_STOP,
                                       PoolWorker, R_OK)
from repro.serving.registry import ModelEntry
from repro.training.evaluate import endpoint_metrics_for, evaluate_timing_gnn

SCALE = 0.15
DESIGNS = ["spm", "usb_cdc_core"]


# -- fixtures ------------------------------------------------------------------
@pytest.fixture(scope="module")
def graphs():
    out = {}
    for name in DESIGNS:
        out[name] = Flow.from_benchmark(name, scale=SCALE).place(
            seed=1).extract()
    return out


@pytest.fixture(scope="module")
def toy_model():
    return TimingGNN(ModelConfig.benchmark())


def toy_registry(toy_model):
    registry = ModelRegistry(scale=SCALE, names=[])
    registry.register("toy", lambda: ModelEntry(
        name="toy", kind="timing", version="vtest", model=toy_model,
        loaded_at=time.time(), load_seconds=0.0))
    return registry


def _arrival(toy_model, graph):
    return toy_model.predict(graph).numpy_arrival()


# -- rank correlation ----------------------------------------------------------
class TestSpearman:
    def test_perfect_monotone(self):
        x = np.array([1.0, 2.0, 5.0, 9.0])
        assert spearman_correlation(x, x ** 3) == pytest.approx(1.0)
        assert spearman_correlation(x, -x) == pytest.approx(-1.0)

    def test_ties_get_fractional_ranks(self):
        # ranks of [1, 1, 2] are [1.5, 1.5, 3]; Spearman equals the
        # Pearson correlation of the hand-computed rank vectors.
        t = np.array([1.0, 1.0, 2.0])
        p = np.array([1.0, 2.0, 3.0])
        rt = np.array([1.5, 1.5, 3.0])
        rp = np.array([1.0, 2.0, 3.0])
        expected = np.corrcoef(rt, rp)[0, 1]
        assert spearman_correlation(t, p) == pytest.approx(expected)

    def test_nan_pairs_ignored(self):
        t = np.array([1.0, np.nan, 3.0, 4.0])
        p = np.array([2.0, 9.0, 5.0, np.nan])
        assert spearman_correlation(t, p) == pytest.approx(
            spearman_correlation([1.0, 3.0], [2.0, 5.0]))

    def test_degenerate_is_nan(self):
        assert math.isnan(spearman_correlation([1.0], [2.0]))


# -- endpoint metrics ----------------------------------------------------------
class TestEndpointMetrics:
    def _slack(self, values):
        return np.array(values, dtype=np.float64)

    def test_identical_predictions_are_perfect(self):
        slack = self._slack([[0.1, 0.2, -0.3, 0.4],
                             [0.5, 0.1, 0.2, -0.6],
                             [0.2, 0.9, 0.7, 0.3]])
        m = endpoint_slack_metrics(slack, slack)
        for mode in ("setup", "hold"):
            assert m[f"wns_{mode}_err"] == 0.0
            assert m[f"tns_{mode}_err"] == 0.0
            assert m[f"slack_mae_{mode}"] == 0.0
            assert m[f"rank_{mode}"] == pytest.approx(1.0)
            assert m[f"recall_{mode}"] == 1.0
        assert m["slack_mae"] == 0.0

    def test_worst_slack_and_shape_validation(self):
        slack = self._slack([[1.0, 2.0, 3.0, 4.0], [0.5, -1.0, 2.0, 0.0]])
        np.testing.assert_allclose(
            worst_slack_per_endpoint(slack, "hold"), [1.0, -1.0])
        np.testing.assert_allclose(
            worst_slack_per_endpoint(slack, "setup"), [3.0, 0.0])
        with pytest.raises(ValueError):
            worst_slack_per_endpoint(np.zeros((3, 2)))

    def test_known_errors(self):
        true = self._slack([[9, 9, -2.0, 9], [9, 9, 1.0, 9],
                            [9, 9, 3.0, 9]])
        pred = self._slack([[9, 9, -1.0, 9], [9, 9, 2.0, 9],
                            [9, 9, 2.5, 9]])
        m = endpoint_slack_metrics(true, pred, time_scale=10.0)
        # WNS: -20 vs -10 ps; TNS likewise (one violating endpoint).
        assert m["wns_setup_err"] == pytest.approx(10.0)
        assert m["tns_setup_err"] == pytest.approx(10.0)
        assert m["slack_mae_setup"] == pytest.approx(
            (10.0 + 10.0 + 5.0) / 3.0)
        assert m["rank_setup"] == pytest.approx(1.0)
        # k = 1 violating endpoint, recovered by the prediction.
        assert m["recall_setup"] == 1.0

    def test_top_k_recall(self):
        t = np.array([-3.0, -2.0, 1.0, 5.0])
        # Worst-2 true = {0, 1}; prediction swaps one of them out.
        p = np.array([-3.0, 4.0, -1.0, 5.0])
        assert top_k_negative_recall(t, p) == pytest.approx(0.5)
        assert top_k_negative_recall(t, t) == 1.0
        assert math.isnan(top_k_negative_recall([], []))


# -- feature drift -------------------------------------------------------------
class TestFeatureDrift:
    def test_psi_of_reference_is_zero(self, graphs):
        profile = FeatureProfile.from_graphs([graphs["spm"]])
        counts = profile.bin_counts(graphs["spm"].node_features)
        np.testing.assert_allclose(profile.psi(counts), 0.0, atol=1e-12)

    def test_shifted_features_score_positive(self, graphs):
        profile = FeatureProfile.from_graphs([graphs["spm"]])
        shifted = np.asarray(graphs["spm"].node_features,
                             dtype=np.float64) * 3.0 + 1.0
        psi = profile.psi(profile.bin_counts(shifted))
        assert psi.max() > 0.25

    def test_constant_channel_never_drifts(self):
        X = np.zeros((100, 2))
        X[:, 1] = np.linspace(0.0, 1.0, 100)

        class _G:
            node_features = X
        profile = FeatureProfile.from_graphs([_G()])
        psi = profile.psi(profile.bin_counts(X))
        assert psi[0] == pytest.approx(0.0, abs=1e-12)

    def test_save_load_roundtrip(self, graphs, tmp_path):
        profile = FeatureProfile.from_graphs([graphs["spm"]])
        path = str(tmp_path / "p.profile.json")
        profile.save(path)
        loaded = FeatureProfile.load(path)
        np.testing.assert_array_equal(loaded.edges, profile.edges)
        np.testing.assert_array_equal(loaded.probs, profile.probs)
        assert loaded.count == profile.count

    def test_tracker_accumulates(self, graphs):
        profile = FeatureProfile.from_graphs([graphs["spm"]])
        tracker = DriftTracker(profile)
        assert tracker.score()["graphs"] == 0
        tracker.observe(graphs["usb_cdc_core"].node_features)
        score = tracker.score()
        assert score["graphs"] == 1
        assert score["max"] >= score["mean"] >= 0.0
        assert len(score["channels"]) == profile.num_channels


# -- the audit log -------------------------------------------------------------
class TestAuditLog:
    def test_append_scan_roundtrip(self, tmp_path):
        log = AuditLog(path=str(tmp_path / "audits.jsonl"))
        stamped = log.append({"design": "spm", "slack_mae_ps": 1.25})
        assert stamped["audit_id"].startswith("audit-")
        records, corrupt = log.scan()
        assert corrupt == 0 and len(records) == 1
        assert records[0]["design"] == "spm"
        assert log.get(stamped["audit_id"]) == records[0]
        # Unique-prefix lookup, run-ledger style.
        assert log.get(stamped["audit_id"][:12]) == records[0]

    def test_corrupt_lines_skipped(self, tmp_path):
        path = str(tmp_path / "audits.jsonl")
        log = AuditLog(path=path)
        log.append({"design": "a"})
        with open(path, "a") as fh:
            fh.write("{truncated\n")
            fh.write('{"no_audit_id": true}\n')
        log.append({"design": "b"})
        records, corrupt = log.scan()
        assert [r["design"] for r in records] == ["a", "b"]
        assert corrupt == 2

    def test_rotation_mirrors_trace_sinks(self, tmp_path):
        path = str(tmp_path / "audits.jsonl")
        log = AuditLog(path=path, max_lines=5)
        for i in range(7):
            log.append({"design": f"d{i}"})
        with open(path) as fh:
            live = fh.readlines()
        with open(path + ".1") as fh:
            rotated = fh.readlines()
        assert len(rotated) == 5 and len(live) == 2
        assert json.loads(rotated[0])["design"] == "d0"
        assert json.loads(live[0])["design"] == "d5"


# -- the accuracy SLO ----------------------------------------------------------
class TestAccuracySlo:
    def test_window_and_ratio(self):
        slo = AccuracySlo(objective_ps=10.0, window=4, min_ratio=0.75)
        for value in (1.0, 2.0, 3.0, 4.0):
            assert slo.record(value)
        assert slo.ok()
        slo.record(100.0)    # 3/4 good in the window: exactly at ratio
        assert slo.ok()
        slo.record(100.0)    # 2/4: below
        assert not slo.ok()
        summary = slo.summary()
        assert summary["total"] == 4 and summary["bad"] == 2
        assert summary["good_ratio"] == pytest.approx(0.5)

    def test_rolling_mae_ignores_nonfinite(self):
        slo = AccuracySlo(objective_ps=10.0, window=8)
        assert slo.rolling_mae() is None
        slo.record(4.0)
        slo.record(float("nan"))
        slo.record(8.0)
        assert slo.rolling_mae() == pytest.approx(6.0)

    def test_empty_window_is_ok(self):
        assert AccuracySlo().ok()


# -- the monitor ---------------------------------------------------------------
class TestQualityMonitor:
    def _monitor(self, tmp_path, **kwargs):
        kwargs.setdefault("rate", 1.0)
        kwargs.setdefault("log_path", str(tmp_path / "audits.jsonl"))
        return QualityMonitor(**kwargs)

    def test_disabled_by_default_rate(self, graphs, toy_model, tmp_path):
        monitor = self._monitor(tmp_path, rate=0.0)
        assert not monitor.enabled
        assert monitor.maybe_audit(graphs["spm"],
                                   _arrival(toy_model, graphs["spm"])) \
            is False
        assert monitor.stats() == {"enabled": False, "samples": 0}
        assert monitor.healthz() == {"ok": True, "enabled": False}
        monitor.close()

    def test_audit_scores_and_logs(self, graphs, toy_model, tmp_path):
        monitor = self._monitor(tmp_path)
        graph = graphs["spm"]
        arrival = _arrival(toy_model, graph)
        assert monitor.maybe_audit(graph, arrival, model="toy",
                                   request_id="r-1")
        assert monitor.flush()
        stats = monitor.stats()
        assert stats["samples"] == 1
        expected = endpoint_metrics_for(graph, arrival)
        assert stats["slack_mae_ps"] == pytest.approx(
            expected["slack_mae"], abs=1e-3)
        records, corrupt = monitor.log.scan()
        assert corrupt == 0 and len(records) == 1
        assert records[0]["model"] == "toy"
        assert records[0]["request_id"] == "r-1"
        assert records[0]["design"] == "spm"
        monitor.close()

    def test_arrival_copied_at_enqueue(self, graphs, toy_model, tmp_path):
        """Served outputs live in arena-recycled buffers: the audit must
        score the values at enqueue time, not whatever the buffer holds
        when the background thread gets to it."""
        monitor = self._monitor(tmp_path)
        graph = graphs["spm"]
        arrival = _arrival(toy_model, graph)
        expected = endpoint_metrics_for(graph, arrival)
        assert monitor.maybe_audit(graph, arrival)
        arrival[:] = 0.0            # simulate arena reuse
        assert monitor.flush()
        record = monitor.log.scan()[0][0]
        assert record["endpoint"]["slack_mae"] == pytest.approx(
            expected["slack_mae"], abs=1e-9)
        monitor.close()

    def test_budget_cap_respected(self, graphs, toy_model, tmp_path):
        monitor = self._monitor(tmp_path, budget_per_min=3)
        graph = graphs["spm"]
        arrival = _arrival(toy_model, graph)
        sampled = sum(monitor.maybe_audit(graph, arrival)
                      for _ in range(10))
        # The bucket starts full at 3 tokens and refills at 3/min —
        # nowhere near a token over this test's lifetime.
        assert sampled == 3
        assert monitor.flush()
        stats = monitor.stats()
        assert stats["samples"] == 3
        assert stats["dropped"]["budget"] == 7
        monitor.close()

    def test_queue_full_drops_instead_of_blocking(self, graphs, toy_model,
                                                  tmp_path):
        monitor = self._monitor(tmp_path, queue_size=1,
                                budget_per_min=1e9)
        monitor._ensure_thread = lambda: None   # keep the queue parked
        graph = graphs["spm"]
        arrival = _arrival(toy_model, graph)
        results = [monitor.maybe_audit(graph, arrival) for _ in range(3)]
        assert results == [True, False, False]
        assert monitor.stats()["dropped"]["queue_full"] == 2
        monitor._stopped = True

    def test_never_blocks_request_path(self, graphs, toy_model, tmp_path):
        """The request-path cost of an audit is one array copy and a
        non-blocking put — even with the audit thread wedged mid-score,
        ``maybe_audit`` must return immediately."""
        monitor = self._monitor(tmp_path, queue_size=64,
                                budget_per_min=1e9)
        slow = {"entered": 0}
        original = monitor._process

        def wedged(item):
            slow["entered"] += 1
            time.sleep(0.25)
            original(item)
        monitor._process = wedged
        graph = graphs["spm"]
        arrival = _arrival(toy_model, graph)
        monitor.maybe_audit(graph, arrival)     # wedges the thread
        deadline = time.monotonic() + 2.0
        while not slow["entered"] and time.monotonic() < deadline:
            time.sleep(0.005)
        t0 = time.perf_counter()
        for _ in range(5):
            assert monitor.maybe_audit(graph, arrival)
        elapsed = time.perf_counter() - t0
        # 5 enqueues while the scorer sleeps 250 ms per item: anything
        # close to even one processing interval means we blocked.
        assert elapsed < 0.2, f"maybe_audit blocked for {elapsed:.3f}s"
        monitor.flush(timeout=10.0)
        monitor.close()

    def test_drift_alert_and_healthz_breach(self, graphs, toy_model,
                                            tmp_path):
        profile = FeatureProfile.from_graphs([graphs["spm"]])
        monitor = self._monitor(tmp_path, threshold=1e-4,
                                slo=AccuracySlo(objective_ps=1e12))
        other = graphs["usb_cdc_core"]
        assert monitor.maybe_audit(other, _arrival(toy_model, other),
                                   model="toy", profile=profile)
        assert monitor.flush()
        stats = monitor.stats()
        assert stats["drift_score"] > 1e-4
        assert stats["drift_alerts"] >= 1
        health = monitor.healthz()
        assert health["breached"] == ["drift"]
        assert not health["ok"]
        record = monitor.log.scan()[0][0]
        assert record["drift_score"] == pytest.approx(
            stats["drift_score"])
        monitor.close()

    def test_accuracy_slo_breach(self, graphs, toy_model, tmp_path):
        monitor = self._monitor(
            tmp_path, slo=AccuracySlo(objective_ps=0.0, window=8,
                                      min_ratio=0.9))
        graph = graphs["spm"]
        assert monitor.maybe_audit(graph, _arrival(toy_model, graph))
        assert monitor.flush()
        health = monitor.healthz()
        assert health["breached"] == ["accuracy_slo"]
        assert health["accuracy_slo"]["bad"] == 1
        monitor.close()


# -- online == offline (the headline differential) -----------------------------
class TestOnlineOfflineDifferential:
    def test_audit_metrics_equal_training_evaluate(self, graphs, toy_model,
                                                   monkeypatch, tmp_path):
        """The shadow auditor and ``training.evaluate`` must report
        *identical* endpoint metrics (1e-9) for the same model/design:
        both call repro.ml.endpoint_metrics on a batch-of-1 forward that
        is bit-identical to ``model.predict``."""
        monkeypatch.setenv("REPRO_AUDIT_RATE", "1")
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        service = PredictionService(registry=toy_registry(toy_model),
                                    scale=SCALE)
        try:
            response = service.predict({"design": "spm", "model": "toy",
                                        "no_cache": True})
            assert not response.degraded
            assert service.quality.flush()
            records, corrupt = service.quality.log.scan()
        finally:
            service.close()
        assert corrupt == 0 and len(records) == 1
        online = records[0]["endpoint"]
        offline = evaluate_timing_gnn(toy_model,
                                      graphs["spm"])["endpoint"]
        assert set(online) == set(offline)
        for key, offline_value in offline.items():
            online_value = online[key]
            if isinstance(offline_value, float) \
                    and math.isnan(offline_value):
                assert math.isnan(online_value), key
            else:
                assert online_value == pytest.approx(
                    offline_value, abs=1e-9), key

    def test_service_stats_and_healthz_surface_quality(
            self, toy_model, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_AUDIT_RATE", "1")
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        service = PredictionService(registry=toy_registry(toy_model),
                                    scale=SCALE)
        try:
            service.predict({"design": "spm", "model": "toy",
                             "no_cache": True})
            assert service.quality.flush()
            stats = service.stats()
            assert stats["quality"]["enabled"]
            assert stats["quality"]["samples"] == 1
            assert stats["quality"]["slack_mae_ps"] is not None
            health = service.healthz()
            assert health["quality"]["samples"] == 1
        finally:
            service.close()

    def test_degraded_on_accuracy_slo_breach(self, toy_model, monkeypatch,
                                             tmp_path):
        # An untrained model against a 0-ps objective: every audit is
        # bad, so /healthz must flip to degraded.
        monkeypatch.setenv("REPRO_AUDIT_RATE", "1")
        monkeypatch.setenv("REPRO_SLO_SLACK_MAE_PS", "0")
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        service = PredictionService(registry=toy_registry(toy_model),
                                    scale=SCALE)
        try:
            service.predict({"design": "spm", "model": "toy",
                             "no_cache": True})
            assert service.quality.flush()
            health = service.healthz()
            assert health["status"] == "degraded"
            assert "accuracy_slo" in health["quality"]["breached"]
        finally:
            service.close()


# -- worker-side auditing and fleet merge --------------------------------------
class TestWorkerAudits:
    def test_worker_audits_in_process(self, graphs, toy_model, monkeypatch,
                                      tmp_path):
        """Drive the worker serve loop in-process: every timing item gets
        audited after its R_OK, and the final forced stats publish
        carries the audit counters (that ordering is what makes the
        fleet merge lossless post-shutdown)."""
        monkeypatch.setenv("REPRO_AUDIT_RATE", "1")
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        arena = ShmArena(prefix=f"rpqual{os.getpid():x}")
        graph = graphs["spm"]
        params = {n: p.data for n, p in toy_model.named_parameters()}
        model_seg = arena.publish("model", params)
        spec = {"kind": "timing", "cls": "TimingGNN",
                "config": toy_model.cfg}
        graph_seg = arena.publish("graph", {
            n: getattr(graph, n) for n in HeteroGraph._ARRAY_FIELDS},
            meta={"name": graph.name, "split": graph.split,
                  "clock_period": float(graph.clock_period)})
        qin, qout, stats_q = queue.Queue(), queue.Queue(), queue.Queue()
        qin.put((MSG_MODEL, "toy", "v1", model_seg, spec))
        for i in range(3):
            qin.put((MSG_PREDICT, i, "toy", "gkey", graph_seg, False,
                     None))
        qin.put((MSG_STOP,))
        worker = PoolWorker(0, qin, qout, window_s=0.001, poll_s=0.01,
                            stats_q=stats_q, stats_interval_s=0.0)
        worker.serve()
        arena.close_all()
        oks = []
        while True:
            try:
                response = qout.get_nowait()
            except queue.Empty:
                break
            if response[0] == R_OK:
                oks.append(response)
        assert len(oks) == 3
        state = None
        while True:
            try:
                _wid, _pid, _ts, state = stats_q.get_nowait()
            except queue.Empty:
                break
        assert state is not None
        series = state["repro_worker_quality_audits_total"]["series"]
        assert sum(s["value"] for s in series) == 3

    def test_pooled_fleet_merge_lossless_post_shutdown(
            self, toy_model, monkeypatch, tmp_path):
        """Acceptance: pool-worker audit counters merge losslessly —
        after close(), the fleet-summed audit count equals the number of
        timing requests the pool served, and the parent's folded stats
        agree."""
        monkeypatch.setenv("REPRO_AUDIT_RATE", "1")
        monkeypatch.setenv("REPRO_AUDIT_BUDGET", "100000")
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        stream = 6
        service = PooledPredictionService(
            registry=toy_registry(toy_model), scale=SCALE, workers=2)
        try:
            for _ in range(stream):
                response = service.predict({"design": "spm",
                                            "model": "toy",
                                            "no_cache": True})
                assert not response.degraded
        finally:
            service.close()
        # Workers drain their audit queues before the forced final
        # stats publish, and the router drains the stats queue before
        # close() returns: nothing in flight can be lost.
        fleet = service.router.fleet
        assert fleet.counter_total(
            "repro_worker_quality_audits_total") == stream
        stats = service.stats()
        assert stats["quality"]["worker_audits"] == stream
        assert stats["quality"]["samples"] == stream
        assert stats["quality"]["slack_mae_ps"] is not None
        summary = fleet.summary()
        assert summary["worker_quality"]["audits"] == stream
        assert summary["worker_quality"]["scored"] == stream


# -- CLI surfacing -------------------------------------------------------------
class TestAuditCli:
    def test_ls_and_show(self, monkeypatch, tmp_path, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        log = AuditLog()
        stamped = log.append({"design": "spm", "model": "toy",
                              "slack_mae_ps": 12.5, "drift_score": 0.01})
        log.append({"design": "aes128", "model": "toy",
                    "slack_mae_ps": None})
        assert main(["audit", "ls"]) == 0
        out = capsys.readouterr().out
        assert "spm" in out and "aes128" in out
        assert "2 audits" in out
        assert main(["audit", "show", stamped["audit_id"]]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["design"] == "spm"
        assert shown["slack_mae_ps"] == 12.5
        assert main(["audit", "show", "audit-nope"]) == 1
        capsys.readouterr()

    def test_show_requires_id(self, monkeypatch, tmp_path, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["audit", "show"]) == 2
        capsys.readouterr()


# -- schema compatibility ------------------------------------------------------
class TestLedgerSchemaCompat:
    def test_v1_records_still_parse(self, tmp_path):
        """The schema bump to v2 is additive (eval gains a nested
        ``endpoint`` dict): v1 records without it must scan and render
        exactly as before."""
        from repro.obs.runs import RUNS_SCHEMA_VERSION, RunLedger
        assert RUNS_SCHEMA_VERSION == 2
        ledger = RunLedger(root=str(tmp_path))
        ledger.append({"run_id": "train-20250101-abcd1234",
                       "kind": "train_timing", "schema_version": 1,
                       "eval": {"spm": {"arrival_r2": 0.5}}})
        records, corrupt = ledger.scan()
        assert corrupt == 0 and len(records) == 1
        assert records[0]["eval"]["spm"]["arrival_r2"] == 0.5

    def test_evaluate_records_endpoint_metrics(self, graphs, toy_model):
        metrics = evaluate_timing_gnn(toy_model, graphs["spm"])
        endpoint = metrics["endpoint"]
        for key in ("wns_setup_err", "tns_setup_err", "slack_mae_setup",
                    "rank_setup", "recall_setup", "wns_hold_err",
                    "slack_mae", "recall_hold"):
            assert key in endpoint, key
        assert endpoint["slack_mae"] >= 0.0
        # Everything the trainer puts in the ledger must JSON-serialize.
        json.dumps(endpoint)
