"""High-level Flow façade: staging, invalidation, artefact wiring."""

import numpy as np
import pytest

from repro.flow import Flow
from repro.netlist import write_verilog


class TestConstruction:
    def test_from_benchmark(self):
        flow = Flow.from_benchmark("spm")
        assert flow.design.name == "spm"
        assert flow.design.stats()["nodes"] > 100

    def test_from_verilog_roundtrip(self, library, small_design):
        text = write_verilog(small_design)
        flow = Flow.from_verilog(text, library)
        assert flow.design.stats() == small_design.stats()


class TestStaging:
    def test_accessors_auto_run(self):
        flow = Flow.from_benchmark("spm")
        hetero = flow.extract()       # triggers place+route+sta
        assert hetero.num_nodes == flow.graph.num_nodes
        assert np.all(np.isfinite(hetero.arrival))

    def test_run_chains_all_stages(self):
        flow = Flow.from_benchmark("usb").run(seed=2)
        summary = flow.timing_summary()
        assert summary["num_endpoints"] > 0
        assert flow.hpwl() > 0

    def test_replace_invalidates_downstream(self):
        flow = Flow.from_benchmark("spm").run(seed=1)
        result_a = flow.result
        arrivals_a = result_a.arrival.copy()
        flow.place(seed=9)
        assert flow._result is None
        result_b = flow.sta().result
        assert result_b is not result_a
        assert not np.allclose(arrivals_a, result_b.arrival)

    def test_clock_period_sticky_across_reanalysis(self):
        flow = Flow.from_benchmark("spm").run(seed=1)
        period = flow.result.clock_period
        flow.place(seed=2).route().sta()
        assert flow.result.clock_period == period

    def test_explicit_clock_period(self):
        flow = Flow.from_benchmark("spm").run(clock_period=1234.0)
        assert flow.result.clock_period == 1234.0


class TestConveniences:
    def test_incremental_timer_bound(self):
        flow = Flow.from_benchmark("spm").run()
        timer = flow.incremental_timer()
        wns = timer.wns("setup")
        cell = flow.design.combinational_cells[0]
        timer.move_cell(cell, [1.0, 1.0])
        assert np.isfinite(timer.wns("setup"))
        assert timer.result is flow.result

    def test_sdf_and_spef_export(self):
        flow = Flow.from_benchmark("spm").run()
        assert flow.sdf().startswith("(DELAYFILE")
        assert "*D_NET" in flow.spef()

    def test_predict_with_fresh_model(self):
        from repro.models import ModelConfig, TimingGNN
        flow = Flow.from_benchmark("spm")
        model = TimingGNN(ModelConfig.fast())
        pred = flow.predict(model)
        assert pred.atslew.shape == (flow.extract().num_nodes, 8)
