"""Serving-layer semantics: batching equivalence, concurrency, caches,
deadlines, degradation, the HTTP front-end and the load generator.

Models here are deliberately *untrained* (random initialization): every
serving property under test — numerical equivalence of micro-batched
forwards, cache identity, thread-safety, fallback behaviour — is
independent of model quality, and skipping training keeps the suite
fast.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.flow import Flow
from repro.graphdata import batch_graphs, split_rows
from repro.models import ModelConfig, NetEmbedding, TimingGNN
from repro.serving import (LRUCache, ModelRegistry, PredictionService,
                           RequestError, ServingServer, run_loadgen)
from repro.serving.registry import ModelEntry, ModelLoadError

SCALE = 0.15
DESIGNS = ["spm", "usb_cdc_core", "wbqspiflash"]


# -- fixtures ------------------------------------------------------------------
@pytest.fixture(scope="module")
def graphs():
    out = {}
    for name in DESIGNS:
        out[name] = Flow.from_benchmark(name, scale=SCALE).place(
            seed=1).extract()
    return out


@pytest.fixture(scope="module")
def toy_model():
    return TimingGNN(ModelConfig.benchmark())


def _toy_registry(toy_model):
    registry = ModelRegistry(scale=SCALE, names=[])
    registry.register("toy", lambda: ModelEntry(
        name="toy", kind="timing", version="vtest", model=toy_model,
        loaded_at=time.time(), load_seconds=0.0))
    registry.register("toy-net", lambda: ModelEntry(
        name="toy-net", kind="netdelay", version="vtest",
        model=NetEmbedding(ModelConfig.benchmark()),
        loaded_at=time.time(), load_seconds=0.0))

    def broken():
        raise RuntimeError("checkpoint corrupted")
    registry.register("broken", broken)
    return registry


@pytest.fixture()
def service(toy_model):
    svc = PredictionService(registry=_toy_registry(toy_model), scale=SCALE)
    yield svc
    svc.close()


# -- graph batching ------------------------------------------------------------
class TestBatchGraphs:
    def test_union_shapes(self, graphs):
        members = list(graphs.values())
        union, slices = batch_graphs(members)
        assert union.num_nodes == sum(g.num_nodes for g in members)
        assert union.num_net_edges == sum(g.num_net_edges for g in members)
        assert union.num_cell_edges == sum(g.num_cell_edges
                                           for g in members)
        assert len(slices) == len(members)
        for g, sl in zip(members, slices):
            assert sl.num_nodes == g.num_nodes
            assert sl.name == g.name
        # Edge indices stay inside their member's node range.
        for sl in slices:
            src = union.net_src[sl.net_lo:sl.net_hi]
            assert src.min() >= sl.node_lo and src.max() < sl.node_hi

    def test_split_rows_roundtrip(self, graphs):
        members = list(graphs.values())
        union, slices = batch_graphs(members)
        parts = split_rows(union.node_features, slices)
        for g, part in zip(members, parts):
            np.testing.assert_array_equal(part, g.node_features)

    def test_singleton_batch_is_identity(self, graphs):
        g = next(iter(graphs.values()))
        union, slices = batch_graphs([g])
        assert union is g
        assert slices[0].num_nodes == g.num_nodes

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])


class TestBatchedEquivalence:
    """Micro-batched predictions == single-request predictions."""

    def test_timing_gnn(self, graphs, toy_model):
        members = list(graphs.values())
        singles = [toy_model.predict(g) for g in members]
        batched = toy_model.predict_batch(members)
        for single, out in zip(singles, batched):
            np.testing.assert_allclose(out["arrival"],
                                       single.numpy_arrival(),
                                       rtol=1e-7, atol=1e-9)
            np.testing.assert_allclose(out["slew"], single.numpy_slew(),
                                       rtol=1e-7, atol=1e-9)

    def test_net_embedding(self, graphs):
        import repro.nn as nn
        model = NetEmbedding(ModelConfig.benchmark())
        members = list(graphs.values())
        batched = model.predict_batch(members)
        for g, out in zip(members, batched):
            with nn.no_grad():
                _, single = model.forward(g)
            np.testing.assert_allclose(out["net_delay"], single.data,
                                       rtol=1e-7, atol=1e-9)

    def test_batch_order_invariance(self, graphs, toy_model):
        members = list(graphs.values())
        fwd = toy_model.predict_batch(members)
        rev = toy_model.predict_batch(members[::-1])[::-1]
        for a, b in zip(fwd, rev):
            np.testing.assert_allclose(a["arrival"], b["arrival"],
                                       rtol=1e-7, atol=1e-9)


# -- LRU cache -----------------------------------------------------------------
class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refresh "a"
        cache.put("c", 3)                # evicts "b"
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_hit_miss_accounting(self):
        cache = LRUCache(capacity=4)
        cache.put("x", 1)
        cache.get("x")
        cache.get("y")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_get_or_create_runs_factory_once_concurrently(self):
        cache = LRUCache(capacity=4)
        calls = []

        def factory():
            calls.append(1)
            time.sleep(0.05)
            return "value"

        results = []
        threads = [threading.Thread(
            target=lambda: results.append(
                cache.get_or_create("k", factory)))
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(value == "value" for value, _hit in results)
        assert sum(1 for _v, hit in results if not hit) == 1


# -- service semantics ---------------------------------------------------------
class TestPredictionService:
    def test_predict_and_cache_hit_same_payload(self, service):
        first = service.predict({"design": "spm", "model": "toy"})
        second = service.predict({"design": "spm", "model": "toy"})
        assert not first.cache_hit and second.cache_hit
        assert not first.degraded and not second.degraded
        assert second.prediction == first.prediction
        assert service.stats()["result_cache"]["hit_rate"] > 0

    def test_deadline_exceeded_degrades_not_500(self, service, graphs):
        response = service.predict({"design": "spm", "model": "toy",
                                    "deadline_ms": 0})
        assert response.degraded
        # The degraded path answers from ground-truth STA labels.
        truth = graphs["spm"]
        from repro.graphdata import TIME_SCALE
        expected = float(np.nanmin(truth.slack()[:, 2:4])) * TIME_SCALE
        assert response.prediction["wns_setup_ps"] == pytest.approx(
            expected, abs=1e-2)
        assert service.stats()["counts"]["deadline_fallbacks"] == 1

    def test_model_load_failure_degrades(self, service):
        response = service.predict({"design": "spm", "model": "broken"})
        assert response.degraded
        assert response.model_version == "unavailable"
        assert response.prediction["num_endpoints"] > 0

    def test_unknown_model_is_request_error(self, service):
        with pytest.raises(RequestError):
            service.predict({"design": "spm", "model": "nope"})

    def test_unknown_design_is_request_error(self, service):
        with pytest.raises(RequestError) as err:
            service.predict({"design": "not_a_benchmark", "model": "toy"})
        assert err.value.status == 404

    def test_validation_rejects_ambiguous_source(self, service):
        with pytest.raises(RequestError):
            service.predict({"model": "toy"})
        with pytest.raises(RequestError):
            service.predict({"design": "spm", "verilog": "module m; "
                             "endmodule", "model": "toy"})

    def test_netdelay_model_payload(self, service):
        response = service.predict({"design": "spm", "model": "toy-net"})
        assert response.kind == "netdelay"
        assert response.prediction["num_net_sinks"] > 0

    def test_include_slack_payload(self, service, graphs):
        response = service.predict({"design": "spm", "model": "toy",
                                    "include_slack": True})
        slacks = response.prediction["endpoint_setup_slack_ps"]
        assert len(slacks) == graphs["spm"].num_endpoints

    def test_concurrent_requests_correct_per_design(self, service,
                                                    toy_model, graphs):
        """>= 8 threads, mixed designs: every answer matches its own
        design's single-request prediction."""
        from repro.graphdata import TIME_SCALE
        from repro.training import slack_from_arrival
        expected = {}
        for name, graph in graphs.items():
            arrival = toy_model.predict(graph).numpy_arrival()
            setup = slack_from_arrival(graph, arrival)[:, 2:4] * TIME_SCALE
            expected[name] = float(np.nanmin(setup))

        results, errors = {}, []

        def worker(i):
            design = DESIGNS[i % len(DESIGNS)]
            try:
                response = service.predict({"design": design,
                                            "model": "toy"})
                results[i] = (design, response)
            except Exception as exc:   # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 12
        for i, (design, response) in results.items():
            assert response.design == design
            assert not response.degraded
            assert response.prediction["wns_setup_ps"] == pytest.approx(
                expected[design], abs=1e-2)

    def test_verilog_request_roundtrip(self, service):
        from repro.netlist import write_verilog
        design = Flow.from_benchmark("spm", scale=SCALE).design
        text = write_verilog(design)
        response = service.predict({"verilog": text, "model": "toy"})
        assert not response.degraded
        assert response.prediction["num_endpoints"] > 0


# -- HTTP front-end ------------------------------------------------------------
def _get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHTTPServer:
    @pytest.fixture()
    def server(self, toy_model):
        svc = PredictionService(registry=_toy_registry(toy_model),
                                scale=SCALE)
        with ServingServer(svc) as srv:
            yield srv

    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_models_endpoint(self, server):
        status, body = _get(server.url + "/models")
        assert status == 200
        names = {m["name"] for m in body}
        assert {"toy", "toy-net", "broken"} <= names

    def test_predict_roundtrip_and_stats(self, server):
        status, body = _post(server.url + "/predict",
                             {"design": "spm", "model": "toy"})
        assert status == 200
        assert body["design"] == "spm" and not body["degraded"]
        status, again = _post(server.url + "/predict",
                              {"design": "spm", "model": "toy"})
        assert again["cache_hit"]
        assert again["prediction"] == body["prediction"]
        status, stats = _get(server.url + "/stats")
        assert status == 200
        assert stats["result_cache"]["hit_rate"] > 0
        assert stats["counts"]["requests"] >= 2

    def test_bad_requests_are_4xx(self, server):
        status, body = _post(server.url + "/predict", {"model": "toy"})
        assert status == 400 and "error" in body
        status, _ = _post(server.url + "/predict",
                          {"design": "nope", "model": "toy"})
        assert status == 404
        status, _ = _get(server.url + "/stats")
        assert status == 200

    def test_unknown_route_404(self, server):
        try:
            status, _ = _get(server.url + "/nope")
        except urllib.error.HTTPError as err:
            status = err.code
        assert status == 404


class TestLoadgen:
    def test_loadgen_zero_incorrect_and_cache_hits(self, toy_model):
        svc = PredictionService(registry=_toy_registry(toy_model),
                                scale=SCALE)
        svc.warm(models=["toy"], designs=DESIGNS[:2])
        with ServingServer(svc) as server:
            result = run_loadgen(server.url, DESIGNS[:2], clients=8,
                                 requests_per_client=7, model="toy")
        assert result.clients == 8
        assert result.requests == 56
        assert result.ok == 56
        assert result.errors == 0 and result.incorrect == 0
        # default warmup: one untimed request per design, before timing.
        assert result.warmup_requests == 2
        assert result.throughput_rps > 0
        assert result.server_stats["result_cache"]["hit_rate"] > 0


# -- experiments.common thread-safety -----------------------------------------
class TestCommonThreadSafety:
    def test_concurrent_get_dataset_loads_once(self, monkeypatch, tmp_path):
        import repro.experiments.common as common
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def fake_load_dataset(scale=1.0, **kwargs):
            calls.append(scale)
            time.sleep(0.05)
            return {"fake": scale}

        monkeypatch.setattr(common, "load_dataset", fake_load_dataset)
        results = []
        threads = [threading.Thread(
            target=lambda: results.append(common.get_dataset(scale=0.123)))
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(r == {"fake": 0.123} for r in results)

    def test_memo_keyed_by_cache_dir(self, monkeypatch, tmp_path):
        import repro.experiments.common as common

        def fake_load_dataset(scale=1.0, **kwargs):
            return {"dir": common.default_cache_dir()}

        monkeypatch.setattr(common, "load_dataset", fake_load_dataset)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        first = common.get_dataset(scale=0.456)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        second = common.get_dataset(scale=0.456)
        assert first["dir"] != second["dir"]
