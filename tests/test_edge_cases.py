"""Edge cases and defensive behaviour across the library."""

import numpy as np
import pytest

from repro import nn
from repro.liberty import TimingLUT, make_sky130_like_library
from repro.liberty.library import SLEW_AXIS, LOAD_AXIS
from repro.netlist.design import Design
from repro.routing import build_steiner_tree, extract_rc_tree


class TestTensorEdges:
    def test_scalar_tensor(self):
        t = nn.Tensor(3.0, requires_grad=True)
        (t * 2).backward()
        np.testing.assert_allclose(t.grad, 2.0)
        assert t.item() == 3.0

    def test_repr(self):
        t = nn.Tensor(np.zeros((2, 3)), requires_grad=True)
        assert "shape=(2, 3)" in repr(t)
        assert "requires_grad=True" in repr(t)

    def test_len(self):
        assert len(nn.Tensor(np.zeros((5, 2)))) == 5

    def test_nested_no_grad(self):
        with nn.no_grad():
            with nn.no_grad():
                assert not nn.is_grad_enabled()
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_requires_grad_suppressed_inside_no_grad(self):
        with nn.no_grad():
            t = nn.Tensor(np.ones(2), requires_grad=True)
        assert not t.requires_grad

    def test_matmul_rejects_1d(self):
        a = nn.Tensor(np.ones(3))
        b = nn.Tensor(np.ones(3))
        with pytest.raises(ValueError):
            a @ b

    def test_pow_rejects_tensor_exponent(self):
        t = nn.Tensor(np.ones(2))
        with pytest.raises(TypeError):
            t ** nn.Tensor(np.ones(2))

    def test_max_keepdims(self):
        t = nn.Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = t.max(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(t.grad.sum(), 2.0)

    def test_gather_empty_index(self):
        t = nn.Tensor(np.ones((4, 2)), requires_grad=True)
        out = nn.gather_rows(t, np.asarray([], dtype=np.int64))
        assert out.shape == (0, 2)

    def test_segment_sum_empty_data(self):
        out = nn.segment_sum(nn.Tensor(np.zeros((0, 3))),
                             np.asarray([], dtype=np.int64), 4)
        assert out.shape == (4, 3)
        np.testing.assert_allclose(out.data, 0.0)

    def test_segment_max_all_empty_segments(self):
        out = nn.segment_max(nn.Tensor(np.zeros((0, 2))),
                             np.asarray([], dtype=np.int64), 3)
        np.testing.assert_allclose(out.data, 0.0)

    def test_spmm_rejects_dense(self):
        with pytest.raises(TypeError):
            nn.spmm(np.eye(3), nn.Tensor(np.ones((3, 1))))

    def test_softmax_axis0(self):
        t = nn.Tensor(np.random.default_rng(0).normal(size=(4, 2)))
        s = t.softmax(axis=0)
        np.testing.assert_allclose(s.data.sum(axis=0), np.ones(2),
                                   atol=1e-12)


class TestLibertyEdges:
    def test_lut_lookup_below_grid_extrapolates(self):
        lut = TimingLUT.from_model(SLEW_AXIS, LOAD_AXIS, 20.0, 1.0, 0.1)
        below = float(lut.lookup(SLEW_AXIS[0] / 2, LOAD_AXIS[0] / 2))
        at_corner = float(lut.lookup(SLEW_AXIS[0], LOAD_AXIS[0]))
        assert below < at_corner

    def test_library_contains_protocol(self, library):
        assert "INV_X1" in library
        assert "NOT_A_CELL" not in library

    def test_cell_pin_queries(self, library):
        nand = library["NAND2_X1"]
        assert nand.input_pins == ["A", "B"]
        assert nand.output_pins == ["Y"]
        assert nand.clock_pins == []
        dff = library["DFF_X1"]
        assert dff.clock_pins == ["CK"]
        assert dff.input_pins == ["D"]

    def test_arcs_to(self, library):
        arcs = library["NAND2_X1"].arcs_to("Y")
        assert {a.input_pin for a in arcs} == {"A", "B"}


class TestDesignEdges:
    def test_empty_design_stats(self, library):
        design = Design("empty", library)
        stats = design.stats()
        assert stats["nodes"] == 0
        assert stats["endpoints"] == 0

    def test_port_only_design(self, library):
        design = Design("ports", library)
        a = design.add_port("a", "input")
        y = design.add_port("y", "output")
        design.add_net("n", a, [y])
        assert design.stats()["nodes"] == 2
        assert len(design.endpoints()) == 1
        assert len(design.startpoints()) == 1

    def test_net_degree(self, library):
        design = Design("deg", library)
        a = design.add_port("a", "input")
        y = design.add_port("y", "output")
        net = design.add_net("n", a, [y])
        assert net.degree == 2
        assert net.pins == [a, y]


class TestRoutingEdges:
    def test_coincident_pins(self):
        pins = np.asarray([[5.0, 5.0], [5.0, 5.0], [5.0, 5.0]])
        tree = build_steiner_tree(pins)
        assert tree.validate()
        assert tree.total_wirelength == 0.0

    def test_zero_length_rc_tree(self, library):
        pins = np.asarray([[5.0, 5.0], [5.0, 5.0]])
        tree = build_steiner_tree(pins)
        rc = extract_rc_tree(tree, [4.0], library.wire, "late")
        np.testing.assert_allclose(rc.sink_delays()[1], 0.0)
        np.testing.assert_allclose(rc.total_cap, 4.0)

    def test_two_pins_same_row(self):
        tree = build_steiner_tree(np.asarray([[0.0, 7.0], [9.0, 7.0]]))
        assert tree.num_nodes == 2
        np.testing.assert_allclose(tree.total_wirelength, 9.0)
