"""Pre-fork serving pool: shared-memory state, worker loop semantics,
end-to-end pooled prediction, crash recovery, admission control, and
leak-free shutdown.

Layering of the tests mirrors the subsystem:

* ``TestShmArena`` exercises the publish/attach/unlink substrate alone;
* ``TestPoolWorker`` drives the worker serve loop *in this process*
  over plain ``queue.Queue`` transports (the loop is duck-typed on
  purpose), so its batching/deadline/error branches are directly
  testable (and traceable by the coverage harness);
* ``TestPooledService`` runs real 2-worker pools: bit-identity of
  shm-attached predictions against in-process ones on both kernel
  backends, crash injection with restart-and-retry, overload shedding,
  and no-leak shutdown;
* ``TestServeShutdown`` SIGTERMs an actual ``repro serve --workers``
  process and asserts nothing survives it.
"""

from __future__ import annotations

import glob
import os
import queue
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.flow import Flow
from repro.graphdata.hetero import HeteroGraph
from repro.models import ModelConfig, NetEmbedding, TimingGNN
from repro.parallel import ShmArena, attach
from repro.serving import (Overloaded, PooledPredictionService,
                           PredictionService, ModelRegistry)
from repro.serving.pool.worker import (MSG_MODEL, MSG_PREDICT, MSG_STOP,
                                       PoolWorker, R_BATCH, R_ERR,
                                       R_EXPIRED, R_MODEL_ERR, R_OK,
                                       R_READY)
from repro.serving.registry import ModelEntry
from repro.serving.service import _timing_payload

SCALE = 0.15
DESIGNS = ["spm", "usb_cdc_core", "wbqspiflash"]


def shm_segments(prefix):
    return glob.glob(f"/dev/shm/{prefix}*")


# -- fixtures ------------------------------------------------------------------
@pytest.fixture(scope="module")
def graphs():
    out = {}
    for name in DESIGNS:
        out[name] = Flow.from_benchmark(name, scale=SCALE).place(
            seed=1).extract()
    return out


@pytest.fixture(scope="module")
def toy_model():
    return TimingGNN(ModelConfig.benchmark())


def toy_registry(toy_model):
    registry = ModelRegistry(scale=SCALE, names=[])
    registry.register("toy", lambda: ModelEntry(
        name="toy", kind="timing", version="vtest", model=toy_model,
        loaded_at=time.time(), load_seconds=0.0))
    registry.register("toy-net", lambda: ModelEntry(
        name="toy-net", kind="netdelay", version="vtest",
        model=NetEmbedding(ModelConfig.benchmark()),
        loaded_at=time.time(), load_seconds=0.0))
    return registry


# -- shared-memory arena -------------------------------------------------------
class TestShmArena:
    def test_roundtrip_bit_identical(self):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}a")
        arrays = {
            "f64": np.arange(24, dtype=np.float64).reshape(4, 6),
            "i32": np.array([[1, -2], [3, -4]], dtype=np.int32),
            "flags": np.array([True, False, True]),
            "scalarish": np.array(3.25),
        }
        name = arena.publish("bundle", arrays, meta={"n": 7, "s": "x"})
        att = attach(name)
        try:
            assert att.meta == {"n": 7, "s": "x"}
            for key, array in arrays.items():
                view = att.arrays[key]
                assert view.dtype == array.dtype
                assert view.shape == array.shape
                np.testing.assert_array_equal(view, array)
                assert not view.flags.writeable
        finally:
            att.close()
            arena.close_all()

    def test_republish_unlinks_old_generation(self):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}b")
        first = arena.publish("k", {"x": np.zeros(4)})
        second = arena.publish("k", {"x": np.ones(4)})
        assert first != second
        assert len(arena) == 1
        assert arena.segment_name("k") == second
        with pytest.raises(FileNotFoundError):
            attach(first)
        np.testing.assert_array_equal(attach(second).arrays["x"],
                                      np.ones(4))
        arena.close_all()

    def test_close_all_unlinks_everything(self):
        prefix = f"rptest{os.getpid():x}c"
        arena = ShmArena(prefix=prefix)
        arena.publish("a", {"x": np.zeros(8)})
        arena.publish("b", {"y": np.ones(16)})
        assert arena.total_bytes() > 0
        assert len(shm_segments(prefix)) == 2
        arena.close_all()
        assert shm_segments(prefix) == []
        arena.close_all()   # idempotent

    def test_unpublish_single_key(self):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}d")
        arena.publish("a", {"x": np.zeros(4)})
        assert arena.unpublish("a") is True
        assert arena.unpublish("a") is False
        assert len(arena) == 0
        arena.close_all()

    def test_attach_in_child_does_not_steal_segment(self):
        """An attaching process exiting must not unlink the segment
        (the CPython resource tracker would, unless unregistered)."""
        import multiprocessing
        arena = ShmArena(prefix=f"rptest{os.getpid():x}e")
        name = arena.publish("k", {"x": np.arange(8.0)})
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_attach_and_exit, args=(name,))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == 0
        # The parent's segment must still be attachable afterwards.
        att = attach(name)
        np.testing.assert_array_equal(att.arrays["x"], np.arange(8.0))
        att.close()
        arena.close_all()


def _attach_and_exit(segment):
    att = attach(segment)
    assert float(att.arrays["x"][3]) == 3.0
    att.close()


# -- worker loop, driven in-process --------------------------------------------
class TestPoolWorker:
    def _publish(self, arena, toy_model, graph):
        params = {n: p.data for n, p in toy_model.named_parameters()}
        model_seg = arena.publish("model", params)
        spec = {"kind": "timing", "cls": "TimingGNN",
                "config": toy_model.cfg}
        graph_seg = arena.publish("graph", {
            n: getattr(graph, n) for n in HeteroGraph._ARRAY_FIELDS},
            meta={"name": graph.name, "split": graph.split,
                  "clock_period": float(graph.clock_period)})
        return model_seg, spec, graph_seg

    def _drain(self, qout):
        out = []
        while True:
            try:
                out.append(qout.get_nowait())
            except queue.Empty:
                return out

    def _run(self, messages, window_s=0.001, max_batch=8):
        qin, qout = queue.Queue(), queue.Queue()
        for message in messages:
            qin.put(message)
        qin.put((MSG_STOP,))
        worker = PoolWorker(0, qin, qout, window_s=window_s,
                            max_batch=max_batch, poll_s=0.01)
        worker.serve()
        return self._drain(qout)

    def test_predict_payload_matches_direct_forward(self, toy_model,
                                                    graphs):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}w1")
        graph = graphs["spm"]
        model_seg, spec, graph_seg = self._publish(arena, toy_model, graph)
        responses = self._run([
            (MSG_MODEL, "toy", "v1", model_seg, spec),
            (MSG_PREDICT, 1, "toy", "gkey", graph_seg, False, None),
        ])
        arena.close_all()
        kinds = [r[0] for r in responses]
        assert kinds == [R_READY, R_BATCH, R_OK]
        expected = _timing_payload(
            graph, toy_model.predict_batch([graph])[0]["arrival"], False)
        ok = responses[-1]
        assert ok[1] == 1 and ok[2] == expected and ok[3] == 1

    def test_batches_coalesce_and_dedupe_graphs(self, toy_model, graphs):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}w2")
        graph = graphs["spm"]
        model_seg, spec, graph_seg = self._publish(arena, toy_model, graph)
        predicts = [(MSG_PREDICT, i, "toy", "gkey", graph_seg, False, None)
                    for i in range(1, 5)]
        responses = self._run(
            [(MSG_MODEL, "toy", "v1", model_seg, spec), *predicts])
        arena.close_all()
        batch = [r for r in responses if r[0] == R_BATCH]
        oks = [r for r in responses if r[0] == R_OK]
        assert len(oks) == 4
        # One forward over one deduped graph served all four requests.
        assert len(batch) == 1 and batch[0][2] == 4 and batch[0][3] == 1
        assert all(r[3] == 4 for r in oks)
        assert len({repr(sorted(r[2].items()))
                    for r in oks}) == 1   # identical payloads

    def test_expired_deadline_dropped(self, toy_model, graphs):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}w3")
        model_seg, spec, graph_seg = self._publish(arena, toy_model,
                                                   graphs["spm"])
        responses = self._run([
            (MSG_MODEL, "toy", "v1", model_seg, spec),
            (MSG_PREDICT, 7, "toy", "gkey", graph_seg, False,
             time.time() - 1.0),
        ])
        arena.close_all()
        assert (R_EXPIRED, 7) in responses
        assert not any(r[0] == R_OK for r in responses)

    def test_unknown_model_errors_per_item(self, toy_model, graphs):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}w4")
        _m, _s, graph_seg = self._publish(arena, toy_model, graphs["spm"])
        responses = self._run([
            (MSG_PREDICT, 9, "ghost", "gkey", graph_seg, False, None)])
        arena.close_all()
        errs = [r for r in responses if r[0] == R_ERR]
        assert len(errs) == 1 and errs[0][1] == 9
        assert "ghost" in errs[0][2]

    def test_bad_model_spec_reports_model_err(self, toy_model, graphs):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}w5")
        params = {n: p.data for n, p in toy_model.named_parameters()}
        seg = arena.publish("model", params)
        responses = self._run([
            (MSG_MODEL, "toy", "v1", seg,
             {"kind": "timing", "cls": "NotAModel", "config": None})])
        arena.close_all()
        assert any(r[0] == R_MODEL_ERR and r[1] == "toy"
                   for r in responses)

    def test_stats_published_and_spans_shipped(self, toy_model, graphs):
        """Protocol extensions are append-only: an 8-tuple MSG_PREDICT
        carrying a trace context makes the worker synthesize a span tree
        in the R_OK's 5th element, and a stats queue receives registry
        snapshots (force-published at shutdown at the latest)."""
        arena = ShmArena(prefix=f"rptest{os.getpid():x}w7")
        graph = graphs["spm"]
        model_seg, spec, graph_seg = self._publish(arena, toy_model, graph)
        qin, qout, stats_q = queue.Queue(), queue.Queue(), queue.Queue()
        sent_ts = time.time()
        qin.put((MSG_MODEL, "toy", "v1", model_seg, spec))
        qin.put((MSG_PREDICT, 1, "toy", "gkey", graph_seg, False, None,
                 ("deadbeefcafef00d", "aaaa0000bbbb1111", sent_ts)))
        qin.put((MSG_PREDICT, 2, "toy", "gkey", graph_seg, False, None))
        qin.put((MSG_STOP,))
        worker = PoolWorker(0, qin, qout, window_s=0.001, poll_s=0.01,
                            stats_q=stats_q, stats_interval_s=0.0)
        worker.serve()
        arena.close_all()
        oks = {r[1]: r for r in self._drain(qout) if r[0] == R_OK}
        spans = oks[1][4]
        assert spans, "traced request shipped no spans"
        root = spans[0]
        assert root["name"] == "worker.predict"
        assert root["trace_id"] == "deadbeefcafef00d"
        assert root["parent_id"] == "aaaa0000bbbb1111"
        children = {s["name"] for s in spans[1:]}
        assert {"worker.queue_wait", "worker.batch_window",
                "worker.forward"} <= children
        assert all(s["parent_id"] == root["span_id"] for s in spans[1:])
        # The 7-tuple (no trace context) stays valid and ships no spans.
        assert oks[2][4] == []
        # Registry snapshots landed on the stats queue; the final one
        # (forced at shutdown) carries both request outcomes.
        worker_id, pid, _ts, state = None, None, None, None
        while True:
            try:
                worker_id, pid, _ts, state = stats_q.get_nowait()
            except queue.Empty:
                break
        assert worker_id == 0 and pid == os.getpid()
        series = state["repro_worker_requests_total"]["series"]
        assert sum(s["value"] for s in series) == 2
        assert state["repro_worker_request_ms"]["series"][0] \
            ["value"]["count"] == 2

    def test_shutdown_releases_attachments(self, toy_model, graphs):
        arena = ShmArena(prefix=f"rptest{os.getpid():x}w6")
        model_seg, spec, graph_seg = self._publish(arena, toy_model,
                                                   graphs["spm"])
        qin, qout = queue.Queue(), queue.Queue()
        worker = PoolWorker(0, qin, qout, window_s=0.001, poll_s=0.01)
        qin.put((MSG_MODEL, "toy", "v1", model_seg, spec))
        qin.put((MSG_PREDICT, 1, "toy", "g", graph_seg, False, None))
        qin.put((MSG_STOP,))
        worker.serve()
        assert worker._models == {} and worker._graphs == {}
        arena.close_all()


# -- end-to-end pooled service -------------------------------------------------
def _pooled(toy_model, **kwargs):
    kwargs.setdefault("workers", 2)
    return PooledPredictionService(registry=toy_registry(toy_model),
                                   scale=SCALE, **kwargs)


class TestPooledService:
    @pytest.mark.parametrize("backend", ["fused", "naive"])
    def test_bit_identical_to_in_process(self, toy_model, graphs, backend):
        """Shm-attached weights in a worker == in-process weights, for
        both kernel backends, for both model kinds."""
        from repro.nn.kernels import use_kernels
        reference = PredictionService(registry=toy_registry(toy_model),
                                      scale=SCALE)
        pooled = _pooled(toy_model, kernels=backend)
        try:
            for model in ("toy", "toy-net"):
                for design in DESIGNS[:2]:
                    request = {"design": design, "model": model,
                               "no_cache": True, "include_slack":
                               model == "toy"}
                    with use_kernels(backend):
                        want = reference.predict(dict(request))
                    got = pooled.predict(dict(request))
                    assert not got.degraded and not want.degraded
                    assert got.prediction == want.prediction
        finally:
            pooled.close()
            reference.close()

    def test_concurrent_load_forms_real_batches(self, toy_model):
        service = _pooled(toy_model)
        try:
            service.warm(models=["toy"], designs=["spm"])
            results = []
            def hit():
                results.append(service.predict(
                    {"design": "spm", "model": "toy", "no_cache": True}))
            threads = [threading.Thread(target=hit) for _ in range(10)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 10
            assert all(not r.degraded for r in results)
            stats = service.stats()
            assert stats["workers"] == 2
            assert stats["batch_max"] > 1
            assert stats["pool"]["shm_bytes"] > 0
        finally:
            service.close()

    def test_worker_crash_mid_request_is_retried(self, toy_model):
        service = _pooled(toy_model, retries=2)
        try:
            service.warm(models=["toy"], designs=["spm"])
            from repro.serving.service import PredictRequest
            key = service._graph_key(
                PredictRequest(design="spm", model="toy").validate())
            shard = service.router.shard(key)
            old_pid = service.router._handles[shard].process.pid
            # Die *before* the predict lands: the request either sits in
            # the dead worker's queue or arrives mid-restart, and must be
            # re-dispatched to the replacement either way.
            service.router.inject_crash(shard)
            response = service.predict({"design": "spm", "model": "toy",
                                        "no_cache": True})
            assert not response.degraded
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and \
                    service.router.stats()["restarts"] < 1:
                time.sleep(0.05)
            stats = service.router.stats()
            assert stats["restarts"] >= 1
            new = service.router._handles[shard].process
            assert new.is_alive() and new.pid != old_pid
        finally:
            service.close()

    def test_overload_sheds_with_503_semantics(self, toy_model):
        # watermark=0: every admission check is past the mark, so the
        # shedding path is deterministic.
        service = _pooled(toy_model, watermark=0)
        try:
            service.warm(models=["toy"], designs=["spm"])
            with pytest.raises(Overloaded) as err:
                service.predict({"design": "spm", "model": "toy",
                                 "no_cache": True})
            assert err.value.status == 503
            assert service.stats()["counts"]["shed"] == 1
            assert service.router.stats()["shed"] == 1
        finally:
            service.close()

    def test_http_shed_returns_503_with_flag(self, toy_model):
        import json
        import urllib.error
        import urllib.request
        from repro.serving import ServingServer
        service = _pooled(toy_model, watermark=0)
        service.warm(models=["toy"], designs=["spm"])
        with ServingServer(service) as server:
            req = urllib.request.Request(
                server.url + "/predict",
                data=json.dumps({"design": "spm", "model": "toy",
                                 "no_cache": True}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=60)
            assert err.value.code == 503
            body = json.loads(err.value.read())
            assert body["shed"] is True

    def test_close_leaves_no_segments_or_children(self, toy_model):
        service = _pooled(toy_model)
        service.warm(models=["toy"], designs=["spm"])
        service.predict({"design": "spm", "model": "toy",
                         "no_cache": True})
        prefix = service.router.arena.prefix
        pids = [h.process.pid for h in service.router._handles]
        assert len(shm_segments(prefix)) >= 2   # model + graph published
        service.close()
        assert shm_segments(prefix) == []
        for pid in pids:
            # join() reaped them: the pid must be gone (or at minimum
            # not our child anymore).
            assert not _pid_alive(pid)

    def test_crash_then_close_still_leak_free(self, toy_model):
        service = _pooled(toy_model)
        service.warm(models=["toy"], designs=["spm"])
        prefix = service.router.arena.prefix
        service.router.inject_crash(0)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and \
                service.router.stats()["restarts"] < 1:
            time.sleep(0.05)
        assert service.router.stats()["restarts"] >= 1
        pids = [h.process.pid for h in service.router._handles]
        service.close()
        assert shm_segments(prefix) == []
        for pid in pids:
            assert not _pid_alive(pid)

    def test_not_poolable_model_falls_back_in_process(self, toy_model):
        class Opaque:
            """No named_parameters/cfg: cannot be rebuilt in a worker."""
            def predict_batch(self, graphs_):
                model = TimingGNN(ModelConfig.benchmark())
                return model.predict_batch(graphs_)

        registry = toy_registry(toy_model)
        registry.register("opaque", lambda: ModelEntry(
            name="opaque", kind="timing", version="v0", model=Opaque(),
            loaded_at=time.time(), load_seconds=0.0))
        service = PooledPredictionService(registry=registry, scale=SCALE,
                                          workers=2)
        try:
            response = service.predict({"design": "spm",
                                        "model": "opaque",
                                        "no_cache": True})
            assert not response.degraded
            assert response.prediction["num_endpoints"] > 0
            # Nothing was dispatched to the pool for this model.
            assert "opaque" not in service.router.stats()["models"]
        finally:
            service.close()


# -- fleet observability across the pool ---------------------------------------
class TestFleetParity:
    def test_merged_totals_match_single_process(self, toy_model):
        """Satellite fix: under the pool, worker-side counters used to be
        lost entirely, so ``stats()`` under-reported work and inflated
        cache-hit ratios.  For an identical request stream the pooled
        service must now report the same request totals as a
        single-process service, and the fleet-merged worker counters must
        equal the router's accepted counter (no loss, no double count)."""
        stream = [{"design": design, "model": "toy", "no_cache": True}
                  for design in (DESIGNS[:2] * 3)]
        single = PredictionService(registry=toy_registry(toy_model),
                                   scale=SCALE)
        try:
            for request in stream:
                single.predict(dict(request))
            single_counts = single.stats()["counts"]
        finally:
            single.close()

        pooled = _pooled(toy_model)
        try:
            for request in stream:
                pooled.predict(dict(request))
            # The live fleet view is eventually consistent: workers
            # publish at most every stats_interval_s, so poll until the
            # merged totals catch up with the stream we just drove.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                stats = pooled.stats()
                if stats["worker_requests"] >= len(stream):
                    break
                time.sleep(0.1)
        finally:
            pooled.close()

        assert single_counts["requests"] == len(stream)
        assert stats["counts"]["requests"] == single_counts["requests"]
        # Workers force-publish their registries on shutdown and the
        # router drains the stats queue before close() returns, so the
        # post-close fleet view is complete.
        fleet = pooled.router.fleet.summary()
        accepted = pooled.metrics.get("repro_pool_requests_total").value
        assert accepted == len(stream)
        assert fleet["worker_requests_total"] == accepted
        assert fleet["worker_requests"].get("ok") == len(stream)
        # The merged view surfaces worker-side graph-cache traffic that
        # the parent-side counters never see.
        cache = fleet["worker_graph_cache"]
        assert cache["hits"] + cache["misses"] > 0
        assert stats["graph_cache"]["worker_hits"] + \
            stats["graph_cache"]["worker_misses"] > 0
        assert stats["worker_requests"] == len(stream)
        # Fleet latency sketches cover every worker-side request.
        assert fleet["latency_ms"]["count"] == len(stream)

    def test_pool_gauges_zeroed_after_close(self, toy_model):
        """Satellite fix: pool gauges must not leak their final values
        past close() — a post-shutdown scrape reporting phantom busy
        workers or shm bytes would page someone about a dead process."""
        service = _pooled(toy_model)
        try:
            service.warm(models=["toy"], designs=["spm"])
            service.predict({"design": "spm", "model": "toy",
                             "no_cache": True})
            assert service.metrics.get("repro_pool_shm_bytes").value > 0
        finally:
            service.close()
        for name in ("repro_pool_queue_depth", "repro_pool_busy_workers",
                     "repro_pool_shm_bytes"):
            assert service.metrics.get(name).value == 0.0, name
        service.close()   # idempotent: still zero
        assert service.metrics.get("repro_pool_shm_bytes").value == 0.0

    def test_worker_spans_stitch_into_parent_trace(self, toy_model):
        """Acceptance: one stitched timeline per request — the worker's
        synthesized span tree ships back on the result path and lands
        under the router's ``pool.submit`` span with the same trace id."""
        from repro.obs import format_span_tree, get_tracer
        tracer = get_tracer()
        tracer.reset()
        service = _pooled(toy_model)
        try:
            service.predict({"design": "spm", "model": "toy",
                             "no_cache": True})
        finally:
            service.close()
        spans = tracer.spans()
        predicts = [s for s in spans if s["name"] == "worker.predict"]
        assert predicts, "worker span tree never shipped back"
        trace_id = predicts[0]["trace_id"]
        submits = [s for s in spans if s["name"] == "pool.submit"
                   and s["trace_id"] == trace_id]
        assert submits, "no router-side span in the same trace"
        assert predicts[0]["parent_id"] == submits[0]["span_id"]
        names = {s["name"] for s in spans if s["trace_id"] == trace_id}
        assert {"worker.queue_wait", "worker.forward"} <= names
        tree = format_span_tree(
            [s for s in spans if s["trace_id"] == trace_id])
        lines = tree.splitlines()
        submit_line = next(i for i, l in enumerate(lines)
                           if "pool.submit" in l)
        worker_line = next(i for i, l in enumerate(lines)
                           if "worker.predict" in l)
        assert submit_line < worker_line
        assert lines[worker_line].index("worker.predict") > \
            lines[submit_line].index("pool.submit")

    def test_pooled_healthz_reports_workers(self, toy_model):
        service = _pooled(toy_model)
        try:
            health = service.healthz()
            assert health["status"] == "ok"
            assert len(health["workers"]) == 2
            assert all(w["alive"] for w in health["workers"])
            assert "slo" in health
        finally:
            service.close()

    def test_pooled_metrics_text_has_worker_series(self, toy_model):
        service = _pooled(toy_model)
        try:
            for _ in range(3):
                service.predict({"design": "spm", "model": "toy",
                                 "no_cache": True})
            deadline = time.monotonic() + 5
            text = ""
            while time.monotonic() < deadline:
                text = service.metrics_text()
                if "repro_worker_requests_total{" in text:
                    break
                time.sleep(0.1)
        finally:
            service.close()
        assert 'outcome="ok"' in text
        assert 'worker="' in text
        # Disjoint name families: no duplicate TYPE lines in the
        # concatenated exposition.
        types = [l for l in text.splitlines() if l.startswith("# TYPE ")]
        assert len(types) == len(set(types))


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Zombies answer kill(0); only a real reap removes them.  Check the
    # process state to call a zombie "not alive".
    try:
        with open(f"/proc/{pid}/stat") as fh:
            return fh.read().split()[2] != "Z"
    except OSError:
        return False


# -- `repro serve` graceful shutdown -------------------------------------------
class TestServeShutdown:
    def test_sigterm_drains_and_unlinks(self, tmp_path):
        """SIGTERM on `repro serve --workers 2` exits cleanly, leaving
        no /dev/shm segments and no child processes behind."""
        env = dict(os.environ, PYTHONPATH="src",
                   PYTHONUNBUFFERED="1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "2",
             "--port", "0", "--no-warm", "--scale", str(SCALE)],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(
                __file__))),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        prefix = f"rp{proc.pid:x}"
        try:
            deadline = time.monotonic() + 60
            started = False
            for line in proc.stdout:
                if "serving on http" in line:
                    started = True
                    break
                if time.monotonic() > deadline:
                    break
            assert started, "server never reported ready"
            # The pool is up: its segments appear once models/graphs are
            # published; worker processes exist right away.
            children = _children_of(proc.pid)
            assert len(children) >= 2
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stdout.close()
        assert shm_segments(prefix) == []
        # Check the workers recorded *before* shutdown: once the parent
        # is dead, any survivor is reparented to init, so scanning
        # children-of-parent again would be vacuous.
        time.sleep(0.5)
        for pid in children:
            assert not _pid_alive(pid), \
                f"worker {pid} survived parent shutdown (orphaned)"


def _children_of(pid):
    out = []
    for stat in glob.glob("/proc/[0-9]*/stat"):
        try:
            with open(stat) as fh:
                fields = fh.read().split()
            if int(fields[3]) == pid:
                out.append(int(fields[0]))
        except (OSError, ValueError, IndexError):
            continue
    return out
