"""Serialization: structural Verilog and liberty round-trips, CLI."""

import numpy as np
import pytest

from repro.liberty import (LibertyError, make_sky130_like_library,
                           parse_liberty, write_liberty)
from repro.netlist import (VerilogError, generate_circuit, parse_verilog,
                           validate_design, write_verilog)
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import run_sta


class TestVerilogRoundtrip:
    def test_structure_preserved(self, library, small_design):
        text = write_verilog(small_design)
        parsed = parse_verilog(text, library)
        validate_design(parsed)
        assert parsed.stats() == small_design.stats()

    def test_cell_mix_preserved(self, library, small_design):
        parsed = parse_verilog(write_verilog(small_design), library)
        original = sorted(c.cell_type.name for c in small_design.cells)
        roundtrip = sorted(c.cell_type.name for c in parsed.cells)
        assert original == roundtrip

    def test_timing_equivalent(self, library, small_design):
        """Round-tripped netlists produce identical STA results."""
        parsed = parse_verilog(write_verilog(small_design), library)

        def arrivals(design):
            placement = place_design(design, seed=7)
            routing = route_design(design, placement)
            return run_sta(design, placement, routing,
                           clock_period=2500.0).arrival

        a = np.sort(arrivals(small_design), axis=0)
        b = np.sort(arrivals(parsed), axis=0)
        np.testing.assert_allclose(a, b)

    def test_idempotent(self, library, small_design):
        text1 = write_verilog(small_design)
        text2 = write_verilog(parse_verilog(text1, library))
        # Second generation differs only in net naming derived from pin
        # indices; structure (statement counts) must match exactly.
        assert len(text1.splitlines()) == len(text2.splitlines())

    def test_contains_module_and_instances(self, small_design):
        text = write_verilog(small_design)
        assert text.startswith("// generated")
        assert "module " in text and "endmodule" in text
        assert text.count("(") > len(small_design.cells)

    def test_unknown_cell_rejected(self, library):
        bad = """module m (a, y);
          input a; output y; wire w;
          BOGUS_X1 u0 (.A(a), .Y(w));
          assign y = w;
        endmodule"""
        with pytest.raises(VerilogError):
            parse_verilog(bad, library)

    def test_multiple_drivers_rejected(self, library):
        bad = """module m (a, b, y);
          input a; input b; output y; wire w;
          INV_X1 u0 (.A(a), .Y(w));
          INV_X1 u1 (.A(b), .Y(w));
          assign y = w;
        endmodule"""
        with pytest.raises(VerilogError):
            parse_verilog(bad, library)

    def test_undeclared_signal_rejected(self, library):
        bad = """module m (a, y);
          input a; output y;
          INV_X1 u0 (.A(a), .Y(ghost));
          assign y = ghost;
        endmodule"""
        with pytest.raises(VerilogError):
            parse_verilog(bad, library)

    def test_no_module_rejected(self, library):
        with pytest.raises(VerilogError):
            parse_verilog("wire w;", library)

    def test_handwritten_netlist(self, library):
        text = """// tiny and-invert chain
        module tiny (clk, a, b, y);
          input clk; input a; input b; output y;
          wire n1;
          AND2_X1 u0 (.A(a), .B(b), .Y(n1));
          INV_X1 u1 (.A(n1), .Y(yw));
          wire yw;
          assign y = yw;
        endmodule"""
        design = parse_verilog(text, library)
        validate_design(design)
        assert len(design.cells) == 2
        assert design.stats()["endpoints"] == 1   # the output port

    def test_dff_clock_ignored_in_nets(self, library):
        text = """module seq (clk, d, q);
          input clk; input d; output q;
          wire qi;
          DFF_X1 r0 (.D(d), .CK(clk), .Q(qi));
          assign q = qi;
        endmodule"""
        design = parse_verilog(text, library)
        validate_design(design)
        assert len(design.sequential_cells) == 1
        ck = design.sequential_cells[0].pins["CK"]
        assert ck.net is None


class TestLibertyRoundtrip:
    @pytest.fixture(scope="class")
    def roundtrip(self, library):
        early = write_liberty(library, "early")
        late = write_liberty(library, "late")
        return library, parse_liberty(early, late)

    def test_cell_roster(self, roundtrip):
        original, parsed = roundtrip
        assert set(parsed.cells) == set(original.cells)

    def test_pin_capacitances(self, roundtrip):
        original, parsed = roundtrip
        for name, cell in original.cells.items():
            for pin_name, spec in cell.pins.items():
                np.testing.assert_allclose(
                    parsed[name].pins[pin_name].capacitance,
                    spec.capacitance, atol=1e-5)

    def test_luts_identical(self, roundtrip):
        original, parsed = roundtrip
        for name, cell in original.cells.items():
            for arc in cell.arcs:
                arc2 = parsed[name].arc(arc.input_pin, arc.output_pin)
                assert arc2.sense == arc.sense
                for key, lut in arc.luts.items():
                    np.testing.assert_allclose(arc2.luts[key].values,
                                               lut.values, atol=1e-5)

    def test_sequential_constraints(self, roundtrip):
        original, parsed = roundtrip
        dff = original["DFF_X1"]
        dff2 = parsed["DFF_X1"]
        assert dff2.is_sequential
        np.testing.assert_allclose(dff2.setup, dff.setup, atol=1e-5)
        np.testing.assert_allclose(dff2.hold, dff.hold, atol=1e-5)

    def test_parsed_library_runs_sta(self, roundtrip):
        """A parsed library must be usable end to end."""
        _original, parsed = roundtrip
        design = generate_circuit("libtest", 180, "control", parsed,
                                  seed=2)
        placement = place_design(design, seed=2)
        routing = route_design(design, placement)
        result = run_sta(design, placement, routing)
        assert np.all(np.isfinite(result.arrival))

    def test_bad_corner_rejected(self, library):
        with pytest.raises(LibertyError):
            write_liberty(library, "typical")

    def test_missing_library_decl_rejected(self):
        with pytest.raises(LibertyError):
            parse_liberty("cell (X) { }", "cell (X) { }")


class TestCLI:
    def test_flow_command(self, capsys):
        from repro.cli import main
        assert main(["flow", "spm", "--scale", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "design spm" in out
        assert "Critical setup path" in out

    def test_write_verilog_command(self, capsys, tmp_path):
        from repro.cli import main
        target = str(tmp_path / "out.v")
        assert main(["write-verilog", "spm", "-o", target]) == 0
        with open(target) as fh:
            assert "module spm" in fh.read()

    def test_write_liberty_command(self, capsys, tmp_path):
        from repro.cli import main
        target = str(tmp_path / "lib.lib")
        assert main(["write-liberty", "-c", "early", "-o", target]) == 0
        with open(target) as fh:
            assert "library (synth_sky130_early)" in fh.read()

    def test_parser_rejects_unknown_command(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])
