"""Golden regression layer: exact STA numerics pinned in tests/golden/.

Rebuilds two small benchmark designs from scratch and compares every
arrival/slew/required/slack value *bit-for-bit* against the committed
fixtures.  Any code change that shifts STA numerics — placer tweaks,
delay-model edits, extraction reorderings, accidental float reassociation
— fails here instead of silently drifting the paper's tables.

Intentional numeric changes: bump DATASET_VERSION, run
``python scripts/regen_golden.py``, and commit the new fixtures with
the change that caused them.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os

import numpy as np
import pytest

from repro.graphdata.dataset import DATASET_VERSION, generate_design

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
_REGEN = os.path.join(os.path.dirname(__file__), "..", "scripts",
                      "regen_golden.py")


def _regen_module():
    """scripts/regen_golden.py, imported so the comparator and the
    regenerator can never disagree about what is pinned."""
    spec = importlib.util.spec_from_file_location("regen_golden", _REGEN)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


regen = _regen_module()


@pytest.mark.parametrize("name,split", regen.GOLDEN_DESIGNS)
class TestGoldenSTA:
    def test_rebuild_matches_fixture_bit_for_bit(self, name, split):
        record = generate_design(name, split, scale=regen.GOLDEN_SCALE,
                                 seed=regen.GOLDEN_SEED)
        arrays = regen.golden_arrays(record.graph)
        with np.load(os.path.join(GOLDEN_DIR, f"{name}.npz")) as golden:
            assert sorted(golden.files) == sorted(arrays)
            for field in golden.files:
                fresh = np.ascontiguousarray(arrays[field])
                pinned = golden[field]
                assert fresh.dtype == pinned.dtype, field
                assert fresh.shape == pinned.shape, field
                # Bytewise, therefore NaN-exact: required/slack are NaN
                # off endpoints and must stay NaN in the same places.
                assert fresh.tobytes() == pinned.tobytes(), (
                    f"{name}.{field}: STA numerics drifted from the "
                    f"golden fixture (max abs diff "
                    f"{np.nanmax(np.abs(fresh - pinned))!r}); if this "
                    f"change is intentional, bump DATASET_VERSION and "
                    f"run scripts/regen_golden.py")

    def test_summary_consistent_with_npz(self, name, split):
        with open(os.path.join(GOLDEN_DIR, f"{name}.json")) as fh:
            summary = json.load(fh)
        assert summary["design"] == name
        assert summary["split"] == split
        assert summary["scale"] == regen.GOLDEN_SCALE
        assert summary["seed"] == regen.GOLDEN_SEED
        with np.load(os.path.join(GOLDEN_DIR, f"{name}.npz")) as golden:
            assert sorted(summary["sha256"]) == sorted(golden.files)
            for field in golden.files:
                digest = hashlib.sha256(
                    np.ascontiguousarray(golden[field]).tobytes()
                ).hexdigest()
                assert digest == summary["sha256"][field], (
                    f"{name}.{field}: npz and json fixture disagree — "
                    f"regenerate both with scripts/regen_golden.py")

    def test_fixture_generated_at_current_version(self, name, split):
        with open(os.path.join(GOLDEN_DIR, f"{name}.json")) as fh:
            summary = json.load(fh)
        assert summary["dataset_version"] == DATASET_VERSION, (
            "golden fixtures were generated at a different "
            "DATASET_VERSION; run scripts/regen_golden.py")
