"""Dataset layer: extraction shapes, Table 2/3 dims, persistence."""

import os

import numpy as np
import pytest

from repro.graphdata import (CAP_SCALE, CELL_EDGE_FEATURE_DIM, DIST_SCALE,
                             NET_EDGE_FEATURE_DIM, NODE_FEATURE_DIM,
                             TIME_SCALE, HeteroGraph, barboza_features,
                             BARBOZA_FEATURE_NAMES)
from repro.sta import CORNER_INDEX


class TestExtraction:
    def test_node_feature_dim_matches_table2(self, hetero):
        # Table 2: is_pio(1) + fanin/fanout(1) + boundary(4) + cap(4) = 10.
        assert hetero.node_features.shape == (hetero.num_nodes,
                                              NODE_FEATURE_DIM)
        assert NODE_FEATURE_DIM == 10

    def test_cell_edge_feature_dim_matches_table3(self, hetero):
        # Table 3: valid(8) + indices 8x14 + values 8x49 = 512.
        assert CELL_EDGE_FEATURE_DIM == 512
        assert hetero.cell_valid.shape[1] == 8
        assert hetero.cell_indices.shape[1] == 112
        assert hetero.cell_values.shape[1] == 392

    def test_net_edge_features(self, hetero):
        assert hetero.net_features.shape == (hetero.num_net_edges,
                                             NET_EDGE_FEATURE_DIM)

    def test_task_shapes(self, hetero):
        n = hetero.num_nodes
        assert hetero.arrival.shape == (n, 4)
        assert hetero.slew.shape == (n, 4)
        assert hetero.net_delay.shape == (n, 4)
        assert hetero.required.shape == (n, 4)
        assert hetero.cell_arc_delay.shape == (hetero.num_cell_edges, 4)

    def test_binary_flags(self, hetero):
        assert set(np.unique(hetero.node_features[:, 0])) <= {0.0, 1.0}
        assert set(np.unique(hetero.node_features[:, 1])) <= {0.0, 1.0}

    def test_is_fanin_matches_net_drivers(self, hetero):
        drivers = np.zeros(hetero.num_nodes, dtype=bool)
        drivers[hetero.net_src] = True
        flagged = hetero.node_features[:, 1] > 0.5
        # Every net driver is flagged; flagged non-drivers are dangling
        # output pins, which the generator eliminates.
        assert np.all(flagged[hetero.net_src])

    def test_every_node_driver_or_sink(self, hetero):
        driver = np.zeros(hetero.num_nodes, dtype=bool)
        driver[hetero.net_src] = True
        assert np.all(driver | hetero.is_net_sink)

    def test_net_sinks_have_one_in_edge(self, hetero):
        counts = np.bincount(hetero.net_dst, minlength=hetero.num_nodes)
        assert counts.max() == 1

    def test_nodes_not_both_net_sink_and_cell_dst(self, hetero):
        cell_dst = np.zeros(hetero.num_nodes, dtype=bool)
        cell_dst[hetero.cell_dst] = True
        assert not np.any(cell_dst & hetero.is_net_sink)

    def test_boundary_distance_normalization(self, hetero):
        dist = hetero.node_features[:, 2:6]
        assert np.all(dist >= 0)
        # Opposite boundary distances sum to die width / DIST_SCALE.
        sums_x = dist[:, 0] + dist[:, 1]
        np.testing.assert_allclose(sums_x, sums_x[0], rtol=1e-9)

    def test_lut_indices_normalized(self, hetero):
        idx = hetero.cell_indices.reshape(-1, 8, 14)
        # Slew axes in units of TIME_SCALE: raw axis max is 320 ps.
        assert idx[:, :, :7].max() <= 320.0 / TIME_SCALE + 1e-9
        assert idx[:, :, 7:].max() <= 180.0 / CAP_SCALE + 1e-9

    def test_levels_cover_all_non_source_nodes(self, hetero):
        covered = set()
        for block in hetero.levels:
            covered.update(block.net_dst.tolist())
            covered.update(block.cell_dst.tolist())
        non_source = set(np.nonzero(~hetero.is_source)[0].tolist())
        assert covered == non_source

    def test_level_block_edges_match_levels(self, hetero):
        for block in hetero.levels:
            assert np.all(hetero.level[hetero.net_dst[block.net_eids]]
                          == block.level)
            assert np.all(hetero.level[hetero.cell_dst[block.cell_eids]]
                          == block.level)

    def test_segment_mapping_consistent(self, hetero):
        for block in hetero.levels:
            if len(block.cell_eids):
                np.testing.assert_array_equal(
                    block.cell_dst[block.cell_seg],
                    hetero.cell_dst[block.cell_eids])

    def test_sources_match_zero_fanin(self, hetero):
        indeg = np.zeros(hetero.num_nodes, dtype=int)
        np.add.at(indeg, hetero.net_dst, 1)
        np.add.at(indeg, hetero.cell_dst, 1)
        np.testing.assert_array_equal(hetero.is_source, indeg == 0)

    def test_stats(self, hetero):
        stats = hetero.stats()
        assert stats["nodes"] == hetero.num_nodes
        assert stats["endpoints"] == int(hetero.is_endpoint.sum())

    def test_required_nan_off_endpoints_is_allowed(self, hetero):
        non_ep = ~hetero.is_endpoint
        # Internal nodes may have propagated RATs, but endpoints must all
        # be finite.
        assert np.all(np.isfinite(hetero.required[hetero.is_endpoint]))
        assert non_ep.any()


class TestSlackComputation:
    def test_ground_truth_slack_shape(self, hetero):
        slack = hetero.slack()
        assert slack.shape == (hetero.num_endpoints, 4)
        assert np.all(np.isfinite(slack))

    def test_slack_identity_on_truth(self, hetero):
        """slack(arrival=truth) equals RAT-combined ground truth."""
        eps = hetero.is_endpoint
        slack = hetero.slack()
        np.testing.assert_allclose(
            slack[:, 2], hetero.required[eps, 2] - hetero.arrival[eps, 2])
        np.testing.assert_allclose(
            slack[:, 0], hetero.arrival[eps, 0] - hetero.required[eps, 0])

    def test_slack_with_predicted_arrivals(self, hetero):
        noisy = hetero.arrival + 0.01
        slack = hetero.slack(arrival=noisy)
        base = hetero.slack()
        np.testing.assert_allclose(slack[:, 2], base[:, 2] - 0.01)
        np.testing.assert_allclose(slack[:, 0], base[:, 0] + 0.01)


class TestPersistence:
    def test_npz_roundtrip(self, hetero, tmp_path):
        path = os.path.join(tmp_path, "g.npz")
        hetero.save_npz(path)
        loaded = HeteroGraph.load_npz(path)
        assert loaded.name == hetero.name
        assert loaded.clock_period == hetero.clock_period
        np.testing.assert_allclose(loaded.node_features,
                                   hetero.node_features)
        np.testing.assert_allclose(loaded.arrival, hetero.arrival)
        np.testing.assert_allclose(loaded.required, hetero.required,
                                   equal_nan=True)
        assert len(loaded.levels) == len(hetero.levels)

    def test_loaded_levels_identical(self, hetero, tmp_path):
        path = os.path.join(tmp_path, "g2.npz")
        hetero.save_npz(path)
        loaded = HeteroGraph.load_npz(path)
        for a, b in zip(loaded.levels, hetero.levels):
            np.testing.assert_array_equal(a.net_eids, b.net_eids)
            np.testing.assert_array_equal(a.cell_dst, b.cell_dst)


class TestBarbozaFeatures:
    def test_shapes(self, hetero):
        x, y = barboza_features(hetero)
        assert x.shape == (hetero.num_net_edges, len(BARBOZA_FEATURE_NAMES))
        assert y.shape == (hetero.num_net_edges, 4)

    def test_fanout_column_matches_graph(self, hetero):
        x, _y = barboza_features(hetero)
        fanout_col = BARBOZA_FEATURE_NAMES.index("fanout")
        counts = np.bincount(hetero.net_src, minlength=hetero.num_nodes)
        np.testing.assert_allclose(x[:, fanout_col],
                                   counts[hetero.net_src])

    def test_manhattan_consistent_with_dx_dy(self, hetero):
        x, _y = barboza_features(hetero)
        dx = x[:, BARBOZA_FEATURE_NAMES.index("dx")]
        dy = x[:, BARBOZA_FEATURE_NAMES.index("dy")]
        man = x[:, BARBOZA_FEATURE_NAMES.index("manhattan")]
        np.testing.assert_allclose(np.abs(dx) + np.abs(dy), man, atol=1e-9)

    def test_labels_are_net_delays(self, hetero):
        _x, y = barboza_features(hetero)
        np.testing.assert_allclose(y, hetero.net_delay[hetero.net_dst])

    def test_hpwl_bounds_distance(self, hetero):
        x, _y = barboza_features(hetero)
        hpwl = x[:, BARBOZA_FEATURE_NAMES.index("hpwl")]
        man = x[:, BARBOZA_FEATURE_NAMES.index("manhattan")]
        assert np.all(hpwl >= man - 1e-9)
