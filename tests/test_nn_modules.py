"""Module system, Linear/MLP behaviour, optimizers."""

import numpy as np
import pytest

from repro import nn


class TestModuleSystem:
    def test_linear_shapes(self, rng):
        layer = nn.Linear(5, 3, rng)
        out = layer(nn.Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        out = layer(nn.Tensor(np.zeros((2, 5))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_parameters_enumeration(self, rng):
        mlp = nn.MLP(4, 2, rng, hidden=8, num_hidden_layers=2)
        params = list(mlp.parameters())
        # 3 Linear layers, each weight + bias.
        assert len(params) == 6
        assert all(p.requires_grad for p in params)

    def test_named_parameters_unique(self, rng):
        mlp = nn.MLP(4, 2, rng, hidden=8, num_hidden_layers=2)
        names = [n for n, _p in mlp.named_parameters()]
        assert len(names) == len(set(names))

    def test_num_parameters(self, rng):
        layer = nn.Linear(5, 3, rng)
        assert layer.num_parameters() == 5 * 3 + 3

    def test_zero_grad_clears(self, rng):
        layer = nn.Linear(3, 1, rng)
        layer(nn.Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        mlp = nn.MLP(4, 2, rng, hidden=8, num_hidden_layers=1)
        state = mlp.state_dict()
        mlp2 = nn.MLP(4, 2, np.random.default_rng(99), hidden=8,
                      num_hidden_layers=1)
        x = nn.Tensor(rng.normal(size=(3, 4)))
        before = mlp2(x).data.copy()
        mlp2.load_state_dict(state)
        after = mlp2(x).data
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, mlp(x).data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        mlp = nn.MLP(4, 2, rng, hidden=8, num_hidden_layers=1)
        with pytest.raises(KeyError):
            mlp.load_state_dict({"bogus": np.zeros(1)})

    def test_train_eval_mode_propagates(self, rng):
        mlp = nn.MLP(4, 2, rng)
        mlp.eval()
        assert not mlp.training
        assert not mlp.net.training
        mlp.train()
        assert mlp.net.layers[0].training

    def test_module_list_registration(self, rng):
        class Stack(nn.Module):
            def __init__(self):
                super().__init__()
                self.blocks = [nn.Linear(2, 2, rng) for _ in range(3)]

        stack = Stack()
        assert len(list(stack.parameters())) == 6

    def test_bare_parameter_registration(self, rng):
        class WithGate(nn.Module):
            def __init__(self):
                super().__init__()
                self.gate = nn.Tensor(np.zeros(4), requires_grad=True)

        mod = WithGate()
        assert len(list(mod.parameters())) == 1

    def test_mlp_depth(self, rng):
        mlp = nn.MLP(4, 2, rng, hidden=8, num_hidden_layers=3)
        linears = [l for l in mlp.net.layers if isinstance(l, nn.Linear)]
        assert len(linears) == 4      # 3 hidden + output
        assert linears[0].in_features == 4
        assert linears[-1].out_features == 2


class TestOptimizers:
    def _quadratic_problem(self, optimizer_cls, steps, **kwargs):
        """Minimize ||xW - y||^2 with a realizable target y = x W*."""
        rng = np.random.default_rng(0)
        w = nn.Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        x = nn.Tensor(rng.normal(size=(20, 3)))
        w_true = rng.normal(size=(3, 2))
        target = nn.Tensor(x.data @ w_true)
        opt = optimizer_cls([w], **kwargs)
        losses = []
        for _ in range(steps):
            loss = nn.mse_loss(x @ w, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        return losses

    def test_sgd_decreases_loss(self):
        losses = self._quadratic_problem(nn.SGD, 60, lr=0.05)
        assert losses[-1] < 0.5 * losses[0]

    def test_sgd_momentum_faster_than_plain(self):
        plain = self._quadratic_problem(nn.SGD, 40, lr=0.02)
        mom = self._quadratic_problem(nn.SGD, 40, lr=0.02, momentum=0.9)
        assert mom[-1] < plain[-1]

    def test_adam_converges(self):
        losses = self._quadratic_problem(nn.Adam, 200, lr=0.05)
        assert losses[-1] < 1e-2 * losses[0] + 1e-6

    def test_adam_weight_decay_shrinks_weights(self):
        rng = np.random.default_rng(1)
        w = nn.Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        opt = nn.Adam([w], lr=1e-2, weight_decay=0.5)
        norm0 = np.linalg.norm(w.data)
        for _ in range(50):
            loss = (w * 0.0).sum()     # zero-gradient objective
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.linalg.norm(w.data) < norm0

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=1e-3)

    def test_optimizer_skips_gradless_params(self, rng):
        w = nn.Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        opt = nn.Adam([w], lr=1.0)
        before = w.data.copy()
        opt.step()                     # no backward happened
        np.testing.assert_allclose(w.data, before)

    def test_clip_grad_norm(self, rng):
        w = nn.Tensor(rng.normal(size=(5, 5)), requires_grad=True)
        (w * 100.0).sum().backward()
        total = nn.clip_grad_norm([w], max_norm=1.0)
        assert total > 1.0
        assert np.linalg.norm(w.grad) <= 1.0 + 1e-9

    def test_clip_grad_norm_under_limit_untouched(self, rng):
        w = nn.Tensor(rng.normal(size=(2,)), requires_grad=True)
        (w * 0.01).sum().backward()
        g = w.grad.copy()
        nn.clip_grad_norm([w], max_norm=10.0)
        np.testing.assert_allclose(w.grad, g)


class TestDropout:
    def test_dropout_identity_when_eval(self, rng):
        x = nn.Tensor(rng.normal(size=(10, 4)))
        out = nn.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_zero_rate(self, rng):
        x = nn.Tensor(rng.normal(size=(10, 4)))
        assert nn.dropout(x, 0.0, rng, training=True) is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(7)
        x = nn.Tensor(np.ones((4000, 1)))
        out = nn.dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05
