"""Shared fixtures: a small library, design, and analysed-design record.

Everything here is session-scoped and deterministic, so the suite stays
fast while every layer of the stack gets exercised on real (small)
circuits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphdata import extract_graph
from repro.liberty import make_sky130_like_library
from repro.netlist import generate_circuit
from repro.placement import place_design
from repro.routing import route_design
from repro.sta import build_timing_graph, run_sta


@pytest.fixture(scope="session")
def library():
    return make_sky130_like_library(seed=2022)


@pytest.fixture(scope="session")
def small_design(library):
    return generate_circuit("unit_small", 220, "control", library, seed=11)


@pytest.fixture(scope="session")
def placed(small_design):
    return place_design(small_design, seed=3)


@pytest.fixture(scope="session")
def routed(small_design, placed):
    return route_design(small_design, placed)


@pytest.fixture(scope="session")
def timing_graph(small_design):
    return build_timing_graph(small_design)


@pytest.fixture(scope="session")
def sta_result(small_design, placed, routed, timing_graph):
    return run_sta(small_design, placed, routed, graph=timing_graph)


@pytest.fixture(scope="session")
def hetero(timing_graph, placed, sta_result):
    return extract_graph(timing_graph, placed, sta_result, split="train")


@pytest.fixture(scope="session")
def hetero_pair(library):
    """Two small analysed designs (a train/test pair for model tests)."""
    graphs = []
    for name, style, seed in [("unit_a", "cipher", 5), ("unit_b", "control", 6)]:
        design = generate_circuit(name, 200, style, library, seed=seed)
        placement = place_design(design, seed=seed)
        routing = route_design(design, placement)
        graph = build_timing_graph(design)
        result = run_sta(design, placement, routing, graph=graph)
        graphs.append(extract_graph(graph, placement, result))
    return graphs


@pytest.fixture()
def rng():
    return np.random.default_rng(123)


@pytest.fixture(autouse=True)
def _isolated_run_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory.

    Training and bench calls append run records as a side effect; without
    this, running the suite would grow a ``.repro_runs/`` ledger in the
    repository root and tests could observe each other's runs.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
