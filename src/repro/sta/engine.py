"""Static timing analysis engine.

This is the label generator of the reproduction — the stand-in for
OpenSTA inside the OpenROAD flow.  It performs full 4-corner analysis
(early/late x rise/fall, the paper's "EL/RF"):

* forward, level by level: arrival time and slew, with NLDM LUT lookups
  for cell arcs (respecting unateness) and Elmore delays plus PERI slew
  degradation for net arcs;
* required-time selection at endpoints from clock period, setup and hold;
* backward propagation of required times and slack everywhere.

Corner index convention everywhere: 0 = (early, rise), 1 = (early, fall),
2 = (late, rise), 3 = (late, fall).  Early corners propagate with ``min``
(hold analysis), late corners with ``max`` (setup analysis).
"""

from __future__ import annotations

import numpy as np

from ..liberty.cell import EL_RF
from ..obs import get_registry, get_tracer
from .graph import build_timing_graph

__all__ = ["TimingResult", "run_sta", "CORNER_INDEX", "LN9"]

CORNER_INDEX = {pair: i for i, pair in enumerate(EL_RF)}
EARLY_COLS = (0, 1)
LATE_COLS = (2, 3)
# PERI slew degradation constant: the 10-90% ramp of an RC step response
# stretches by ~ln(9) per unit Elmore delay.
LN9 = float(np.log(9.0))


def degrade_slew(slew, elmore):
    """Output slew at a net sink given driver slew and Elmore delay (ps)."""
    return np.sqrt(slew ** 2 + (LN9 * elmore) ** 2)


class TimingResult:
    """All timing quantities of one analysed design."""

    def __init__(self, graph, clock_period):
        n = graph.num_nodes
        self.graph = graph
        self.clock_period = clock_period
        self.arrival = np.full((n, 4), np.nan)
        self.slew = np.full((n, 4), np.nan)
        self.required = np.full((n, 4), np.nan)
        self.net_delay = np.zeros((n, 4))        # at sink nodes
        self.load_cap = np.zeros((n, 2))         # at driver nodes (E/L)
        self.cell_arc_delay = np.zeros((len(graph.cell_edges), 4))
        self.endpoint_mask = np.zeros(n, dtype=bool)
        # Winner bookkeeping for path tracing: predecessor node and its
        # corner column, per (node, corner column); -1 where none.
        self.pred_node = np.full((n, 4), -1, dtype=np.int64)
        self.pred_col = np.full((n, 4), -1, dtype=np.int64)

    @property
    def slack(self):
        """Per-node slack: early (hold) = AT - RAT, late (setup) = RAT - AT."""
        out = np.full_like(self.arrival, np.nan)
        out[:, EARLY_COLS] = (self.arrival[:, EARLY_COLS]
                              - self.required[:, EARLY_COLS])
        out[:, LATE_COLS] = (self.required[:, LATE_COLS]
                             - self.arrival[:, LATE_COLS])
        return out

    def endpoint_slack(self):
        """(num_endpoints, 4) slack at endpoint nodes (EL_RF order)."""
        eps = np.nonzero(self.endpoint_mask)[0]
        return eps, self.slack[eps]

    def wns(self, mode="setup"):
        """Worst negative slack over endpoints (ps); positive if all met."""
        _eps, slack = self.endpoint_slack()
        cols = LATE_COLS if mode == "setup" else EARLY_COLS
        return float(np.nanmin(slack[:, cols]))

    def tns(self, mode="setup"):
        """Total negative slack over endpoints (ps, <= 0)."""
        _eps, slack = self.endpoint_slack()
        cols = LATE_COLS if mode == "setup" else EARLY_COLS
        worst = np.nanmin(slack[:, cols], axis=1)
        return float(np.minimum(worst, 0.0).sum())

    def critical_path(self, mode="setup"):
        """Trace the worst path as a list of (node, corner column)."""
        eps, slack = self.endpoint_slack()
        cols = LATE_COLS if mode == "setup" else EARLY_COLS
        flat = np.nanargmin(slack[:, cols])
        node = int(eps[flat // len(cols)])
        col = int(cols[flat % len(cols)])
        path = [(node, col)]
        while self.pred_node[node, col] >= 0:
            node, col = (int(self.pred_node[node, col]),
                         int(self.pred_col[node, col]))
            path.append((node, col))
        path.reverse()
        return path


def _driver_loads(graph, routing):
    """(num_nodes, 2) early/late total load at each net-driver node."""
    loads = np.zeros((graph.num_nodes, 2))
    for net in graph.design.nets:
        routed = routing.nets[net.name]
        node = graph.node_of_pin[net.driver.index]
        loads[node, 0] = routed.load_cap("early")
        loads[node, 1] = routed.load_cap("late")
    return loads


def _propagate_forward(graph, routing, result, default_slew):
    """Levelized forward propagation of arrival time and slew."""
    design = graph.design
    at, slew = result.arrival, result.slew
    loads = result.load_cap

    # Sources: primary inputs launch at t=0 with the default input slew;
    # register Q pins launch through the CK->Q arc at the ideal clock edge.
    for node in graph.source_nodes():
        init_source_node(graph, result, node, default_slew)

    order = graph.topological_nodes()
    for node in order:
        if graph.fanin_degree(node) == 0:
            continue
        compute_node(graph, routing, result, node)
    # Unused in full propagation; kept for signature parity.
    del at, slew, loads


def init_source_node(graph, result, node, default_slew):
    """(Re)compute the launch values of a zero-fanin node.

    Returns True if the node's arrival or slew changed.
    """
    at, slew, loads = result.arrival, result.slew, result.load_cap
    old_at = at[node].copy()
    old_slew = slew[node].copy()
    pin = graph.node_pins[node]
    if pin.is_primary_input:
        at[node] = 0.0
        slew[node] = default_slew
    elif pin.cell is not None and pin.cell.is_sequential:
        arc = pin.cell.cell_type.arc("CK", pin.lib_pin)
        for col, (corner, transition) in enumerate(EL_RF):
            load = loads[node, 0 if corner == "early" else 1]
            d = arc.lut("delay", corner, transition).lookup(default_slew,
                                                            load)
            s = arc.lut("slew", corner, transition).lookup(default_slew,
                                                           load)
            at[node, col] = float(d)
            slew[node, col] = float(s)
    else:
        # Dangling source (e.g. unconnected port): time zero.
        at[node] = 0.0
        slew[node] = default_slew
    return (not np.array_equal(old_at, at[node], equal_nan=True) or
            not np.array_equal(old_slew, slew[node], equal_nan=True))


def compute_node(graph, routing, result, node, tolerance=0.0):
    """(Re)compute one non-source node's arrival/slew from its fanin.

    Shared by full propagation and the incremental timer.  Returns True
    when arrival or slew moved by more than ``tolerance`` (incremental
    propagation stops expanding the cone at unchanged nodes).
    """
    at, slew, loads = result.arrival, result.slew, result.load_cap
    old_at = at[node].copy()
    old_slew = slew[node].copy()
    best_at = np.full(4, np.nan)
    best_slew = np.full(4, np.nan)
    best_pred = np.full(4, -1, dtype=np.int64)
    best_col = np.full(4, -1, dtype=np.int64)

    def consider(col, cand_at, cand_slew, pred, pred_col):
        early = col in EARLY_COLS
        cur = best_at[col]
        better = (np.isnan(cur) or
                  (cand_at < cur if early else cand_at > cur))
        if better:
            best_at[col] = cand_at
            best_slew[col] = cand_slew
            best_pred[col] = pred
            best_col[col] = pred_col

    for ei in graph.in_net_edges(node):
        edge = graph.net_edges[ei]
        routed = routing.nets[edge.net.name]
        for col, (corner, _transition) in enumerate(EL_RF):
            elmore = routed.sink_elmore(corner)[edge.sink_pos]
            result.net_delay[node, col] = elmore
            cand_at = at[edge.src, col] + elmore
            cand_slew = degrade_slew(slew[edge.src, col], elmore)
            consider(col, cand_at, cand_slew, edge.src, col)

    for ei in graph.in_cell_edges(node):
        edge = graph.cell_edges[ei]
        for col, (corner, out_tr) in enumerate(EL_RF):
            load = loads[node, 0 if corner == "early" else 1]
            extreme = None
            for in_tr in edge.arc.input_transition_for(out_tr):
                in_col = CORNER_INDEX[(corner, in_tr)]
                in_slew = slew[edge.src, in_col]
                d = float(edge.arc.lut("delay", corner, out_tr)
                          .lookup(in_slew, load))
                s = float(edge.arc.lut("slew", corner, out_tr)
                          .lookup(in_slew, load))
                consider(col, at[edge.src, in_col] + d, s,
                         edge.src, in_col)
                if extreme is None:
                    extreme = d
                elif corner == "early":
                    extreme = min(extreme, d)
                else:
                    extreme = max(extreme, d)
            result.cell_arc_delay[ei, col] = extreme
    at[node] = best_at
    slew[node] = best_slew
    result.pred_node[node] = best_pred
    result.pred_col[node] = best_col
    old = np.concatenate([old_at, old_slew])
    new = np.concatenate([best_at, best_slew])
    nan_old, nan_new = np.isnan(old), np.isnan(new)
    if np.any(nan_old != nan_new):
        return True
    valid = ~nan_new
    return bool(np.any(np.abs(old[valid] - new[valid]) > tolerance))


def _set_required_at_endpoints(graph, result, clock_period, po_margin_frac):
    """Setup/hold required times at register D pins and primary outputs."""
    req = result.required
    for node in graph.endpoint_nodes():
        pin = graph.node_pins[node]
        result.endpoint_mask[node] = True
        if pin.is_primary_output:
            margin = po_margin_frac * clock_period
            req[node, LATE_COLS] = clock_period - margin
            req[node, EARLY_COLS] = 0.0
        else:
            setup = pin.cell.cell_type.setup
            hold = pin.cell.cell_type.hold
            for col in LATE_COLS:
                req[node, col] = clock_period - setup[col]
            for col in EARLY_COLS:
                req[node, col] = hold[col]


def _propagate_backward(graph, routing, result):
    """Propagate required times from endpoints toward the sources."""
    req = result.required
    slew = result.slew
    loads = result.load_cap
    order = graph.topological_nodes()[::-1]
    for node in order:
        cand = req[node].copy()

        def consider(col, value):
            early = col in EARLY_COLS
            if np.isnan(cand[col]):
                cand[col] = value
            elif early:
                cand[col] = max(cand[col], value)
            else:
                cand[col] = min(cand[col], value)

        for ei in graph.out_net_edges(node):
            edge = graph.net_edges[ei]
            routed = routing.nets[edge.net.name]
            for col, (corner, _transition) in enumerate(EL_RF):
                if np.isnan(req[edge.dst, col]):
                    continue
                elmore = routed.sink_elmore(corner)[edge.sink_pos]
                consider(col, req[edge.dst, col] - elmore)

        for ei in graph.out_cell_edges(node):
            edge = graph.cell_edges[ei]
            for out_col, (corner, out_tr) in enumerate(EL_RF):
                if np.isnan(req[edge.dst, out_col]):
                    continue
                load = loads[edge.dst, 0 if corner == "early" else 1]
                for in_tr in edge.arc.input_transition_for(out_tr):
                    in_col = CORNER_INDEX[(corner, in_tr)]
                    in_slew = slew[node, in_col]
                    d = float(edge.arc.lut("delay", corner, out_tr)
                              .lookup(in_slew, load))
                    consider(in_col, req[edge.dst, out_col] - d)
        req[node] = cand


def derive_clock_period(graph, result, library, slack_quantile=0.85,
                        po_margin_frac=0.05):
    """Pick a clock period so endpoint setup slacks straddle zero.

    Uses the already-propagated arrivals in ``result`` and sets T at the
    given quantile of the endpoint (late arrival + setup) distribution,
    mimicking how a designer would constrain a design near its achievable
    frequency (so a realistic fraction of endpoints ends up critical).
    """
    demands = []
    for node in graph.endpoint_nodes():
        pin = graph.node_pins[node]
        worst_at = np.nanmax(result.arrival[node, LATE_COLS])
        if pin.is_primary_output:
            demands.append(worst_at / (1.0 - po_margin_frac))
        else:
            setup = float(pin.cell.cell_type.setup[list(LATE_COLS)].max())
            demands.append(worst_at + setup)
    if not demands:
        return library.clock_period_guess
    return float(np.quantile(np.asarray(demands), slack_quantile))


def run_sta(design, placement, routing, clock_period=None, graph=None,
            po_margin_frac=0.05):
    """Run full 4-corner STA; returns a :class:`TimingResult`.

    When ``clock_period`` is None it is derived per design so that a
    realistic fraction of endpoints is timing-critical (slack near or
    below zero), as in a constrained physical design flow.
    """
    tracer = get_tracer()
    with tracer.span("sta.run", design=design.name) as span:
        if graph is None:
            with tracer.span("sta.build_graph"):
                graph = build_timing_graph(design)
        span.set(nodes=int(graph.num_nodes),
                 levels=int(graph.level.max()) + 1 if graph.num_nodes
                 else 0)
        result = TimingResult(graph, clock_period=0.0)
        result.load_cap = _driver_loads(graph, routing)
        with tracer.span("sta.propagate_forward",
                         nodes=int(graph.num_nodes)):
            _propagate_forward(graph, routing, result,
                               design.library.default_input_slew)
        if clock_period is None:
            clock_period = derive_clock_period(
                graph, result, design.library,
                po_margin_frac=po_margin_frac)
        design.clock_period = clock_period
        result.clock_period = clock_period
        _set_required_at_endpoints(graph, result, clock_period,
                                   po_margin_frac)
        with tracer.span("sta.propagate_backward"):
            _propagate_backward(graph, routing, result)
        get_registry().histogram(
            "repro_sta_levels",
            "Levelization depth of analysed designs.").observe(
            int(graph.level.max()) + 1 if graph.num_nodes else 0)
    return result
