"""Timing graph construction and levelization.

Pins become nodes; two edge types mirror the paper's heterogeneous graph:

* **net edges** — net driver pin -> each sink pin;
* **cell edges** — combinational cell input pin -> output pin (one per
  liberty timing arc).

Clock pins are ideal (pre-CTS) and excluded, so register Q pins are graph
sources and register D pins are sinks/endpoints.  Levelization assigns
each node its longest-path depth; STA propagation and the paper's delay
propagation model both walk these levels in order (Sec. 3.1: "the number
of topological levels equals the maximum logic depth").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["NetEdge", "CellEdge", "TimingGraph", "build_timing_graph"]


@dataclass
class NetEdge:
    """A net arc: driver node -> sink node."""

    src: int
    dst: int
    net: object                 # netlist.Net
    sink_pos: int               # index of dst within net.sinks


@dataclass
class CellEdge:
    """A cell arc: input-pin node -> output-pin node."""

    src: int
    dst: int
    cell: object                # netlist.CellInst
    arc: object                 # liberty.TimingArc


class TimingGraph:
    """The heterogeneous pin graph of one design."""

    def __init__(self, design):
        self.design = design
        self.node_pins = []            # node id -> Pin
        self.node_of_pin = {}          # pin index -> node id
        self.net_edges = []
        self.cell_edges = []
        self.level = None              # (num_nodes,) int
        self._in_net = None
        self._in_cell = None
        self._out_net = None
        self._out_cell = None

    # -- shape ---------------------------------------------------------------
    @property
    def num_nodes(self):
        return len(self.node_pins)

    @property
    def num_levels(self):
        return int(self.level.max()) + 1 if self.num_nodes else 0

    def node(self, pin):
        return self.node_of_pin[pin.index]

    # -- adjacency ------------------------------------------------------------
    def _build_adjacency(self):
        self._in_net = [[] for _ in range(self.num_nodes)]
        self._in_cell = [[] for _ in range(self.num_nodes)]
        self._out_net = [[] for _ in range(self.num_nodes)]
        self._out_cell = [[] for _ in range(self.num_nodes)]
        for i, e in enumerate(self.net_edges):
            self._in_net[e.dst].append(i)
            self._out_net[e.src].append(i)
        for i, e in enumerate(self.cell_edges):
            self._in_cell[e.dst].append(i)
            self._out_cell[e.src].append(i)

    def in_net_edges(self, node):
        return self._in_net[node]

    def in_cell_edges(self, node):
        return self._in_cell[node]

    def out_net_edges(self, node):
        return self._out_net[node]

    def out_cell_edges(self, node):
        return self._out_cell[node]

    def fanin_degree(self, node):
        return len(self._in_net[node]) + len(self._in_cell[node])

    def fanout_degree(self, node):
        return len(self._out_net[node]) + len(self._out_cell[node])

    # -- levelization ------------------------------------------------------------
    def levelize(self):
        """Longest-path levels (Kahn's algorithm); raises on cycles."""
        n = self.num_nodes
        indeg = np.zeros(n, dtype=np.int64)
        succ = [[] for _ in range(n)]
        for e in self.net_edges + self.cell_edges:
            succ[e.src].append(e.dst)
            indeg[e.dst] += 1
        level = np.zeros(n, dtype=np.int64)
        queue = deque(int(i) for i in np.nonzero(indeg == 0)[0])
        visited = 0
        while queue:
            node = queue.popleft()
            visited += 1
            for nxt in succ[node]:
                level[nxt] = max(level[nxt], level[node] + 1)
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if visited != n:
            raise ValueError("timing graph contains a cycle")
        self.level = level
        return level

    def nodes_by_level(self):
        """List of node-id arrays, one per level."""
        out = [[] for _ in range(self.num_levels)]
        for node, lvl in enumerate(self.level):
            out[lvl].append(node)
        return [np.asarray(nodes, dtype=np.int64) for nodes in out]

    def topological_nodes(self):
        """All node ids sorted by level."""
        return np.argsort(self.level, kind="stable")

    # -- classification ------------------------------------------------------------
    def source_nodes(self):
        """Nodes with no fanin: primary inputs and register Q pins."""
        return [n for n in range(self.num_nodes) if self.fanin_degree(n) == 0]

    def endpoint_nodes(self):
        """Register D pins and primary outputs."""
        eps = []
        for node, pin in enumerate(self.node_pins):
            if pin.is_primary_output:
                eps.append(node)
            elif (pin.cell is not None and pin.cell.is_sequential
                  and pin.direction == "input" and not pin.is_clock):
                eps.append(node)
        return eps


def build_timing_graph(design):
    """Build and levelize the timing graph of ``design``."""
    graph = TimingGraph(design)
    for pin in design.pins:
        if pin.is_clock:
            continue
        graph.node_of_pin[pin.index] = len(graph.node_pins)
        graph.node_pins.append(pin)
    for net in design.nets:
        src = graph.node_of_pin[net.driver.index]
        for pos, sink in enumerate(net.sinks):
            graph.net_edges.append(
                NetEdge(src=src, dst=graph.node_of_pin[sink.index],
                        net=net, sink_pos=pos))
    for cell in design.combinational_cells:
        for arc in cell.cell_type.arcs:
            src = graph.node_of_pin[cell.pins[arc.input_pin].index]
            dst = graph.node_of_pin[cell.pins[arc.output_pin].index]
            graph.cell_edges.append(CellEdge(src=src, dst=dst,
                                             cell=cell, arc=arc))
    graph._build_adjacency()
    graph.levelize()
    return graph
