"""Static timing analysis engine (stand-in for OpenSTA/OpenROAD)."""

from .graph import NetEdge, CellEdge, TimingGraph, build_timing_graph
from .engine import (TimingResult, run_sta, derive_clock_period,
                     degrade_slew, CORNER_INDEX, EARLY_COLS, LATE_COLS, LN9)
from .report import timing_summary, format_path_report
from .paths import TimingPath, enumerate_worst_paths, path_summary
from .sdf import write_sdf
from .incremental import IncrementalTimer

__all__ = [
    "NetEdge", "CellEdge", "TimingGraph", "build_timing_graph",
    "TimingResult", "run_sta", "derive_clock_period", "degrade_slew",
    "CORNER_INDEX", "EARLY_COLS", "LATE_COLS", "LN9",
    "timing_summary", "format_path_report",
    "TimingPath", "enumerate_worst_paths", "path_summary",
    "write_sdf", "IncrementalTimer",
]
