"""Timing reports: summary statistics and human-readable path reports."""

from __future__ import annotations

import numpy as np

from .engine import EARLY_COLS, LATE_COLS

__all__ = ["timing_summary", "format_path_report"]


def timing_summary(result):
    """WNS/TNS and endpoint counts for both analysis modes."""
    eps, slack = result.endpoint_slack()
    setup = np.nanmin(slack[:, LATE_COLS], axis=1)
    hold = np.nanmin(slack[:, EARLY_COLS], axis=1)
    return {
        "clock_period": result.clock_period,
        "num_endpoints": len(eps),
        "setup_wns": float(setup.min()) if len(eps) else 0.0,
        "setup_tns": float(np.minimum(setup, 0.0).sum()) if len(eps) else 0.0,
        "setup_violations": int((setup < 0).sum()),
        "hold_wns": float(hold.min()) if len(eps) else 0.0,
        "hold_tns": float(np.minimum(hold, 0.0).sum()) if len(eps) else 0.0,
        "hold_violations": int((hold < 0).sum()),
        "max_logic_level": int(result.graph.level.max()),
    }


def format_path_report(result, mode="setup"):
    """Render the critical path like a signoff timer's report_checks."""
    graph = result.graph
    path = result.critical_path(mode=mode)
    lines = [f"# Critical {mode} path (clock period "
             f"{result.clock_period:.1f} ps)"]
    lines.append(f"{'pin':<40}{'corner':<14}{'AT (ps)':>10}{'slew (ps)':>11}")
    corner_names = ["early/rise", "early/fall", "late/rise", "late/fall"]
    for node, col in path:
        pin = graph.node_pins[node]
        at = result.arrival[node, col]
        slew = result.slew[node, col]
        lines.append(f"{pin.name:<40}{corner_names[col]:<14}"
                     f"{at:>10.1f}{slew:>11.1f}")
    end_node, end_col = path[-1]
    rat = result.required[end_node, end_col]
    at = result.arrival[end_node, end_col]
    slack = (rat - at) if end_col in LATE_COLS else (at - rat)
    lines.append(f"required: {rat:.1f} ps   arrival: {at:.1f} ps   "
                 f"slack: {slack:.1f} ps")
    return "\n".join(lines)
