"""SDF (Standard Delay Format) writer.

Signoff flows annotate gate-level simulations with the timer's delays
through an SDF file; the paper's dataset labels were likewise produced
from OpenSTA's delay annotations.  This writer emits the subset that
covers our timing graph: IOPATH entries for cell arcs (rise/fall min:typ:max
triples from early/late corners) and INTERCONNECT entries for net arcs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["write_sdf"]


def _triple(early, late):
    """SDF (min:typ:max) with typ as the mean of the corners."""
    typ = 0.5 * (early + late)
    return f"({early:.3f}:{typ:.3f}:{late:.3f})"


def _escape(name):
    return name.replace("/", ".")


def write_sdf(result, design_name="design", timescale="1ps"):
    """Serialize a :class:`~repro.sta.engine.TimingResult` as SDF."""
    graph = result.graph
    lines = [
        "(DELAYFILE",
        '  (SDFVERSION "3.0")',
        f'  (DESIGN "{design_name}")',
        f'  (TIMESCALE {timescale})',
    ]

    # Cell arcs grouped by instance.
    by_cell = {}
    for i, edge in enumerate(graph.cell_edges):
        by_cell.setdefault(edge.cell, []).append((i, edge))
    for cell, edges in by_cell.items():
        lines.append("  (CELL")
        lines.append(f'    (CELLTYPE "{cell.cell_type.name}")')
        lines.append(f'    (INSTANCE {_escape(cell.name)})')
        lines.append("    (DELAY (ABSOLUTE")
        for i, edge in edges:
            d = result.cell_arc_delay[i]
            rise = _triple(d[0], d[2])
            fall = _triple(d[1], d[3])
            lines.append(f"      (IOPATH {edge.arc.input_pin} "
                         f"{edge.arc.output_pin} {rise} {fall})")
        lines.append("    ))")
        lines.append("  )")

    # Interconnect (net) arcs.
    lines.append("  (CELL")
    lines.append('    (CELLTYPE "interconnect")')
    lines.append("    (INSTANCE)")
    lines.append("    (DELAY (ABSOLUTE")
    for edge in graph.net_edges:
        src = _escape(graph.node_pins[edge.src].name)
        dst = _escape(graph.node_pins[edge.dst].name)
        d = result.net_delay[edge.dst]
        rise = _triple(d[0], d[2])
        fall = _triple(d[1], d[3])
        lines.append(f"      (INTERCONNECT {src} {dst} {rise} {fall})")
    lines.append("    ))")
    lines.append("  )")
    lines.append(")")
    return "\n".join(lines) + "\n"
