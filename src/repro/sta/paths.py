"""Critical path enumeration: the K worst setup/hold paths.

A signoff timer reports not just the single critical path but the K
worst paths (``report_checks -path_count K``).  This module implements
the classic peeling approach over the winner tree recorded during
propagation: every endpoint contributes its worst path per corner; paths
are ranked by endpoint slack and traced through ``pred_node``.

This is a true *path* enumeration over distinct endpoints, which is what
placement and sizing optimizers consume (each endpoint's worst path is
the one an ECO must fix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .engine import EARLY_COLS, LATE_COLS

__all__ = ["TimingPath", "enumerate_worst_paths", "path_summary"]


@dataclass
class TimingPath:
    """One traced timing path."""

    endpoint: int                 # endpoint node id
    corner_col: int               # 0..3 (EL_RF order)
    slack: float                  # ps
    nodes: list                   # [(node, corner col)] source -> endpoint
    arrival: float                # ps at the endpoint
    required: float               # ps at the endpoint

    @property
    def startpoint(self):
        return self.nodes[0][0]

    @property
    def length(self):
        return len(self.nodes)

    def pin_names(self, graph):
        return [graph.node_pins[node].name for node, _col in self.nodes]


def _trace(result, node, col):
    path = [(node, col)]
    while result.pred_node[node, col] >= 0:
        node, col = (int(result.pred_node[node, col]),
                     int(result.pred_col[node, col]))
        path.append((node, col))
    path.reverse()
    return path


def enumerate_worst_paths(result, k=10, mode="setup"):
    """Return the K worst paths (one per endpoint) sorted by slack.

    ``mode`` selects setup (late) or hold (early) analysis.  Each
    endpoint contributes its single worst corner; endpoints are then
    ranked by slack ascending (most critical first).
    """
    cols = LATE_COLS if mode == "setup" else EARLY_COLS
    eps = np.nonzero(result.endpoint_mask)[0]
    slack = result.slack
    candidates = []
    for node in eps:
        values = [(slack[node, col], col) for col in cols
                  if np.isfinite(slack[node, col])]
        if not values:
            continue
        worst, col = min(values)
        candidates.append((worst, int(node), int(col)))
    candidates.sort()
    paths = []
    for worst, node, col in candidates[:k]:
        paths.append(TimingPath(
            endpoint=node, corner_col=col, slack=float(worst),
            nodes=_trace(result, node, col),
            arrival=float(result.arrival[node, col]),
            required=float(result.required[node, col])))
    return paths


def path_summary(paths, graph):
    """Human-readable table of enumerated paths."""
    lines = [f"{'#':>3} {'slack (ps)':>11} {'stages':>7}  "
             f"{'startpoint':<26} {'endpoint'}"]
    for i, path in enumerate(paths):
        start = graph.node_pins[path.startpoint].name
        end = graph.node_pins[path.endpoint].name
        lines.append(f"{i:>3} {path.slack:>11.1f} {path.length:>7}  "
                     f"{start:<26} {end}")
    return "\n".join(lines)
