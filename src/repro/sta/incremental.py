"""Incremental static timing analysis.

Physical optimization (placement moves, gate sizing, buffering) needs
timing feedback after every small edit; re-running full STA each time is
the exact cost the paper's GNN is built to avoid, and what production
timers solve with incremental updates.  This module implements the
classic cone-update algorithm:

1. an edit (cell move, cell resize) dirties the nets it touches;
2. dirty nets are re-routed and their RC trees re-extracted;
3. arrival/slew recompute level by level through the *fanout cone* of
   the dirty pins only, terminating early at nodes whose values did not
   move (within a tolerance);
4. endpoint required times are static (clock period + setup/hold), so
   endpoint slack — WNS/TNS — is exact after the forward pass.  Full
   per-node required times can be refreshed on demand.

The incremental result is bit-identical (within tolerance) to a full
re-analysis; `tests/test_incremental.py` checks this on random edit
sequences.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..liberty.cell import CORNERS
from ..routing.rctree import extract_rc_tree
from ..routing.router import RoutedNet
from ..routing.steiner import build_steiner_tree
from .engine import (_propagate_backward, _set_required_at_endpoints,
                     compute_node, init_source_node)

__all__ = ["IncrementalTimer"]


class IncrementalTimer:
    """Keeps a design's timing up to date across placement/netlist edits.

    Parameters are the artefacts of a completed full analysis; the
    timer mutates ``placement``, ``routing`` and ``result`` in place as
    edits arrive.
    """

    def __init__(self, design, placement, routing, graph, result,
                 tolerance=1e-9):
        self.design = design
        self.placement = placement
        self.routing = routing
        self.graph = graph
        self.result = result
        self.tolerance = tolerance
        self.last_update_nodes = 0     # instrumentation: cone size

    # -- edits -----------------------------------------------------------------
    def move_cell(self, cell, new_xy):
        """Move a cell instance to ``new_xy`` and update timing."""
        new_xy = np.asarray(new_xy, dtype=np.float64)
        cell_index = self.design.cells.index(cell)
        self.placement.cell_xy[cell_index] = new_xy
        dirty_nets = set()
        for pin in cell.pins.values():
            if pin.is_clock or pin.net is None:
                continue
            self.placement.pin_xy[pin.index] = self.placement.die.clamp(
                new_xy + self.placement._pin_offset(pin))
            dirty_nets.add(pin.net)
        self._reroute(dirty_nets)
        self._update_forward(self._seeds_for_nets(dirty_nets))
        return self

    def resize_cell(self, cell, new_cell_type):
        """Swap a cell to a different library cell with identical pins."""
        old_pins = set(cell.cell_type.pins)
        if set(new_cell_type.pins) != old_pins:
            raise ValueError("resize requires pin-compatible cell types")
        cell.cell_type = new_cell_type
        dirty_nets = set()
        for pin in cell.pins.values():
            if pin.is_clock or pin.net is None:
                continue
            dirty_nets.add(pin.net)   # input caps changed -> loads changed
        # Cell arcs changed: the arc objects in the timing graph belong
        # to the old cell type; rebind them.
        for edge in self.graph.cell_edges:
            if edge.cell is cell:
                edge.arc = new_cell_type.arc(edge.arc.input_pin,
                                             edge.arc.output_pin)
        self._reroute(dirty_nets)
        self._update_forward(self._seeds_for_nets(dirty_nets))
        return self

    # -- queries ---------------------------------------------------------------
    def wns(self, mode="setup"):
        return self.result.wns(mode)

    def tns(self, mode="setup"):
        return self.result.tns(mode)

    def refresh_required(self):
        """Recompute all per-node required times (full backward pass)."""
        self.result.required[:] = np.nan
        _set_required_at_endpoints(self.graph, self.result,
                                   self.result.clock_period,
                                   po_margin_frac=0.05)
        _propagate_backward(self.graph, self.routing, self.result)
        return self

    # -- internals ---------------------------------------------------------------
    def _reroute(self, nets):
        wire = self.design.library.wire
        for net in nets:
            coords = self.placement.pin_xy[[p.index for p in net.pins]]
            tree = build_steiner_tree(coords)
            rc = {}
            for corner in CORNERS:
                base = 0 if corner == "early" else 2
                caps_r = np.asarray([
                    self.design.pin_capacitance(s)[base] for s in net.sinks])
                caps_f = np.asarray([
                    self.design.pin_capacitance(s)[base + 1]
                    for s in net.sinks])
                rc[corner] = extract_rc_tree(tree, 0.5 * (caps_r + caps_f),
                                             wire, corner)
            self.routing.nets[net.name] = RoutedNet(net, tree, rc)
            driver_node = self.graph.node_of_pin[net.driver.index]
            self.result.load_cap[driver_node, 0] = rc["early"].total_cap
            self.result.load_cap[driver_node, 1] = rc["late"].total_cap

    def _seeds_for_nets(self, nets):
        """Nodes whose timing is directly touched by re-routed nets."""
        seeds = set()
        for net in nets:
            # Sinks see new interconnect delay; the driver sees a new
            # load, which changes the cell arcs *into* the driver.
            seeds.add(self.graph.node_of_pin[net.driver.index])
            for sink in net.sinks:
                seeds.add(self.graph.node_of_pin[sink.index])
        return seeds

    def _update_forward(self, seeds):
        """Cone-limited forward update from the seed nodes."""
        graph, result = self.graph, self.result
        level = graph.level
        heap = [(int(level[n]), int(n)) for n in seeds]
        heapq.heapify(heap)
        queued = set(seeds)
        visited = 0
        default_slew = self.design.library.default_input_slew
        while heap:
            _lvl, node = heapq.heappop(heap)
            queued.discard(node)
            visited += 1
            if graph.fanin_degree(node) == 0:
                changed = init_source_node(graph, result, node,
                                           default_slew)
            else:
                changed = compute_node(graph, routing=self.routing,
                                       result=result, node=node,
                                       tolerance=self.tolerance)
            if not changed:
                continue
            for ei in graph.out_net_edges(node):
                dst = graph.net_edges[ei].dst
                if dst not in queued:
                    queued.add(dst)
                    heapq.heappush(heap, (int(level[dst]), int(dst)))
            for ei in graph.out_cell_edges(node):
                dst = graph.cell_edges[ei].dst
                if dst not in queued:
                    queued.add(dst)
                    heapq.heappush(heap, (int(level[dst]), int(dst)))
        self.last_update_nodes = visited
