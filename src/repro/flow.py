"""High-level flow façade: one object from netlist to trained prediction.

Wraps the individual stages (generate/parse -> place -> route -> STA ->
extract) behind a fluent API, caching each stage's artefact and
invalidating downstream stages when an upstream one re-runs:

    from repro.flow import Flow

    flow = Flow.from_benchmark("picorv32a").place(seed=1).route().sta()
    print(flow.timing_summary())
    data = flow.extract()              # HeteroGraph for model training

    flow2 = Flow.from_verilog(open("mine.v").read())
    flow2.run()                        # place+route+sta in one call

Every stage accessor runs the missing prerequisites automatically, so
``Flow.from_benchmark("spm").extract()`` is valid.
"""

from __future__ import annotations

import hashlib
import time

from .graphdata import extract_graph
from .liberty import make_sky130_like_library
from .netlist import build_benchmark, parse_verilog, validate_design
from .obs import get_registry, get_tracer
from .placement import place_design, total_hpwl
from .routing import route_design
from .sta import (IncrementalTimer, build_timing_graph, run_sta,
                  timing_summary, write_sdf)
from .routing import write_spef

__all__ = ["Flow"]


def _stage_timer(stage):
    """Histogram of one flow stage's wall time (process-wide registry)."""
    return get_registry().histogram(
        "repro_flow_stage_ms",
        "Wall time of one flow stage in milliseconds.", stage=stage)


class Flow:
    """Staged physical flow for one design."""

    def __init__(self, design, library=None):
        self.library = library or design.library
        self.design = design
        self._placement = None
        self._routing = None
        self._graph = None
        self._result = None
        self._hetero = None
        self._place_kwargs = {}
        self._clock_period = None

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_benchmark(cls, name, library=None, scale=1.0):
        library = library or make_sky130_like_library()
        design = build_benchmark(name, library, scale=scale)
        return cls(design, library)

    @classmethod
    def from_verilog(cls, text, library=None):
        library = library or make_sky130_like_library()
        design = parse_verilog(text, library)
        validate_design(design)
        return cls(design, library)

    # -- stages ------------------------------------------------------------------
    def place(self, seed=1, **kwargs):
        """(Re)place the design; invalidates routing and timing."""
        t0 = time.perf_counter()
        with get_tracer().span("flow.place", design=self.design.name,
                               seed=seed):
            self._place_kwargs = dict(seed=seed, **kwargs)
            self._placement = place_design(self.design,
                                           **self._place_kwargs)
        _stage_timer("place").observe((time.perf_counter() - t0) * 1000.0)
        self._routing = None
        self._result = None
        self._hetero = None
        return self

    def route(self):
        """(Re)route; requires placement (runs it if missing)."""
        if self._placement is None:
            self.place()
        t0 = time.perf_counter()
        with get_tracer().span("flow.route", design=self.design.name):
            self._routing = route_design(self.design, self._placement)
        _stage_timer("route").observe((time.perf_counter() - t0) * 1000.0)
        self._result = None
        self._hetero = None
        return self

    def sta(self, clock_period=None):
        """Run timing analysis; requires routing (runs it if missing)."""
        if self._routing is None:
            self.route()
        t0 = time.perf_counter()
        with get_tracer().span("flow.sta", design=self.design.name):
            if self._graph is None:
                self._graph = build_timing_graph(self.design)
            self._clock_period = clock_period or self._clock_period
            self._result = run_sta(self.design, self._placement,
                                   self._routing,
                                   clock_period=self._clock_period,
                                   graph=self._graph)
        _stage_timer("sta").observe((time.perf_counter() - t0) * 1000.0)
        self._clock_period = self._result.clock_period
        self._hetero = None
        return self

    def run(self, seed=1, clock_period=None):
        """place + route + sta in one call (one parent trace span)."""
        with get_tracer().span("flow.run", design=self.design.name):
            return self.place(seed=seed).route().sta(
                clock_period=clock_period)

    # -- artefact accessors (auto-run prerequisites) ----------------------------
    @property
    def placement(self):
        if self._placement is None:
            self.place()
        return self._placement

    @property
    def routing(self):
        if self._routing is None:
            self.route()
        return self._routing

    @property
    def graph(self):
        if self._graph is None:
            self._graph = build_timing_graph(self.design)
        return self._graph

    @property
    def result(self):
        if self._result is None:
            self.sta()
        return self._result

    def extract(self, split="train"):
        """Dataset view (HeteroGraph) of the analysed design."""
        if self._hetero is None:
            t0 = time.perf_counter()
            with get_tracer().span("flow.extract",
                                   design=self.design.name):
                self._hetero = extract_graph(self.graph, self.placement,
                                             self.result, split=split)
            _stage_timer("extract").observe(
                (time.perf_counter() - t0) * 1000.0)
        return self._hetero

    def fingerprint(self):
        """Content hash of the placed netlist (serving cache key).

        Covers the structural netlist (via the Verilog writer, which is
        round-trip exact) and the placement coordinates, so two flows
        whose placed designs are identical hash identically — and any
        netlist or placement change invalidates downstream caches.
        """
        from .netlist import write_verilog
        h = hashlib.sha256()
        h.update(write_verilog(self.design).encode())
        pin_xy = self.placement.pin_xy
        h.update(pin_xy.tobytes())
        return h.hexdigest()[:16]

    # -- artifact store hooks -----------------------------------------------------
    def artifact_key(self, seed=1, clock_period=None):
        """Flow fingerprint *before* running anything: netlist + params.

        Unlike :meth:`fingerprint` this never triggers placement, so it
        can be used to look up cached artifacts of a flow that has not
        run yet.
        """
        from .graphdata.dataset import DATASET_VERSION
        from .netlist import write_verilog
        from .parallel import content_key
        verilog_sha = hashlib.sha256(
            write_verilog(self.design).encode()).hexdigest()
        return content_key(kind="flow", design=self.design.name,
                           verilog=verilog_sha, seed=seed,
                           clock_period=clock_period,
                           dataset_version=DATASET_VERSION)

    def save_artifacts(self, store=None, key=None):
        """Persist every computed stage artifact under one store entry."""
        from .graphdata.dataset import DATASET_VERSION
        from .parallel import ArtifactStore
        store = store or ArtifactStore()
        key = key or self.artifact_key(
            seed=self._place_kwargs.get("seed", 1),
            clock_period=self._clock_period)
        store.put(key, {
            "placement": self._placement, "routing": self._routing,
            "graph": self._graph, "result": self._result,
            "hetero": self._hetero,
            "clock_period": self._clock_period,
            "place_kwargs": self._place_kwargs,
        }, kind="flow", version=DATASET_VERSION,
            meta={"design": self.design.name})
        return key

    def load_artifacts(self, store=None, key=None, seed=1,
                       clock_period=None):
        """Restore stage artifacts from the store; True on a cache hit."""
        from .graphdata.dataset import DATASET_VERSION
        from .parallel import ArtifactStore
        store = store or ArtifactStore()
        key = key or self.artifact_key(seed=seed,
                                       clock_period=clock_period)
        bundle = store.get(key, kind="flow", version=DATASET_VERSION)
        if bundle is None:
            return False
        self._placement = bundle["placement"]
        self._routing = bundle["routing"]
        self._graph = bundle["graph"]
        self._result = bundle["result"]
        self._hetero = bundle["hetero"]
        self._clock_period = bundle["clock_period"]
        self._place_kwargs = bundle["place_kwargs"]
        return True

    def run_cached(self, store=None, seed=1, clock_period=None):
        """:meth:`run` + :meth:`extract`, short-circuited by the store."""
        from .parallel import ArtifactStore
        store = store or ArtifactStore()
        key = self.artifact_key(seed=seed, clock_period=clock_period)
        if self.load_artifacts(store=store, key=key):
            return self
        self.run(seed=seed, clock_period=clock_period)
        self.extract()
        self.save_artifacts(store=store, key=key)
        return self

    # -- conveniences ---------------------------------------------------------------
    def timing_summary(self):
        return timing_summary(self.result)

    def hpwl(self):
        return total_hpwl(self.design, self.placement.pin_xy)

    def incremental_timer(self, tolerance=1e-9):
        """An IncrementalTimer bound to this flow's current artefacts."""
        _ = self.result
        return IncrementalTimer(self.design, self._placement,
                                self._routing, self._graph, self._result,
                                tolerance=tolerance)

    def sdf(self):
        return write_sdf(self.result, design_name=self.design.name)

    def spef(self, corner="late"):
        return write_spef(self.routing, corner=corner,
                          design_name=self.design.name)

    def predict(self, model):
        """Run a trained TimingGNN on this design's extracted graph."""
        return model.predict(self.extract())
