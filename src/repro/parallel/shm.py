"""Shared-memory publication of numpy arrays across processes.

:class:`ShmArena` is the parent-side owner of a set of named
``multiprocessing.shared_memory`` segments.  Each segment packs one
*bundle* — a dict of numpy arrays plus a small JSON meta dict — behind a
self-describing header, so a worker process can reconstruct zero-copy
read-only views from nothing but the segment name:

    segment := [u64 header_len][header JSON][pad to 64][array data...]

The header records each array's dtype/shape and its offset relative to
the (64-aligned) data start, so layout is deterministic on both sides.

Lifetime rules:

* the arena (parent) *owns* every segment it publishes: re-publishing a
  key unlinks the old segment, :meth:`ShmArena.close_all` unlinks all of
  them, and an ``atexit`` hook makes cleanup run even when the owner
  forgets — segments never outlive a normally-exiting parent;
* attachers (:func:`attach`) get read-only views and must *not* unlink;
  an attach is a borrow, not an ownership transfer, so it bypasses the
  CPython resource tracker entirely — whichever tracker the attaching
  process talks to would otherwise unlink the parent's live segment
  when the attacher exits;
* unlinking while attachments exist is safe on POSIX: the backing pages
  live until the last mapping closes, so in-flight readers finish.
"""

from __future__ import annotations

import atexit
import json
import os
import secrets
import struct
import threading

import numpy as np

__all__ = ["ShmArena", "Attachment", "attach", "SHM_FORMAT_VERSION"]

SHM_FORMAT_VERSION = 1

_ALIGN = 64
_LEN = struct.Struct("<Q")

# Serializes SharedMemory construction against the attach-time
# registration bypass below: publish() must not create (and register)
# a segment while attach() has the tracker's register patched out.
_TRACKER_LOCK = threading.Lock()


def _aligned(n):
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack_header(arrays, meta):
    """(header bytes, total segment size, per-array relative offsets)."""
    entries, offset = [], 0
    for name, array in arrays.items():
        nbytes = int(array.nbytes)
        entries.append({"name": name, "dtype": array.dtype.str,
                        "shape": list(array.shape), "offset": offset})
        offset = _aligned(offset + nbytes)
    header = json.dumps({"version": SHM_FORMAT_VERSION,
                         "meta": meta or {},
                         "arrays": entries}).encode()
    data_start = _aligned(_LEN.size + len(header))
    return header, data_start + max(offset, _ALIGN), data_start, entries


def _attach_untracked(segment_name):
    """``SharedMemory(name=...)`` without resource-tracker registration.

    Attaching registers the segment with the resource tracker on this
    CPython (``track=False`` exists only in newer versions), which is
    wrong for a borrow: whichever tracker the attaching process talks
    to — its own, or one shared with the publisher — would unlink the
    publisher's live segment when the attacher exits.  Unregistering
    after the fact is no better: with a shared tracker it deletes the
    *publisher's* registration.  So patch ``register`` out for the
    duration of the constructor instead; only the publisher's
    ``create=True`` registration ever exists, and crash cleanup stays
    with the owner.
    """
    from multiprocessing import resource_tracker, shared_memory
    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            return shared_memory.SharedMemory(name=segment_name)
        finally:
            resource_tracker.register = original


def _disarm(shm):
    """Neutralize a SharedMemory handle without unmapping its pages.

    Drops the handle's buffer/mmap references and closes its fd; any
    numpy views exported from the buffer keep the mapping alive through
    their own reference chain (view -> memoryview -> mmap), and the
    pages unmap when the last view dies.  After this, ``close()`` —
    including the GC-time retry in ``__del__`` — is a no-op, so a
    handle with live views can never spray unraisable BufferErrors.
    """
    try:
        shm._buf = None
        shm._mmap = None
        if shm._fd >= 0:
            os.close(shm._fd)
            shm._fd = -1
    except (AttributeError, OSError):   # CPython-internal layout drifted
        pass


def _close_shm(shm):
    """Close a SharedMemory handle tolerating live exported views.

    ``SharedMemory.close()`` raises ``BufferError`` while numpy views
    over its buffer are alive — and its ``__del__`` would retry and
    spray unraisable exceptions at GC time; fall back to
    :func:`_disarm` when that happens.
    """
    try:
        shm.close()
    except BufferError:
        _disarm(shm)


class Attachment:
    """A read-only view bundle over someone else's shared segment."""

    def __init__(self, shm, arrays, meta):
        self._shm = shm
        self.name = shm.name
        self.arrays = arrays
        self.meta = meta

    @property
    def nbytes(self):
        return self._shm.size

    def close(self):
        """Drop our references; the mapping itself lives until every
        exported numpy view is garbage collected."""
        self.arrays = {}
        self.meta = {}
        _close_shm(self._shm)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def _read_bundle(shm, writable=False):
    buf = shm.buf
    (header_len,) = _LEN.unpack_from(buf, 0)
    header = json.loads(bytes(buf[_LEN.size:_LEN.size + header_len]))
    if header.get("version") != SHM_FORMAT_VERSION:
        raise ValueError(f"shm segment {shm.name}: format version "
                         f"{header.get('version')} != {SHM_FORMAT_VERSION}")
    data_start = _aligned(_LEN.size + header_len)
    arrays = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(buf, dtype=dtype, count=count,
                             offset=data_start + entry["offset"])
        view = view.reshape(shape)
        view.flags.writeable = writable
        arrays[entry["name"]] = view
    return arrays, header.get("meta", {})


def attach(segment_name):
    """Attach to a published segment: zero-copy read-only views.

    Returns an :class:`Attachment` whose ``arrays``/``meta`` mirror what
    the publisher passed to :meth:`ShmArena.publish`.  The caller never
    unlinks — the publishing arena owns the segment.
    """
    shm = _attach_untracked(segment_name)
    arrays, meta = _read_bundle(shm, writable=False)
    # The handle's own fd/mmap refs are never needed again — the views
    # keep the mapping alive.  Disarming here means an Attachment that
    # is dropped without close() cannot raise in SharedMemory.__del__.
    _disarm(shm)
    return Attachment(shm, arrays, meta)


class ShmArena:
    """Parent-side registry of published shared-memory bundles.

    Keys are logical (``"model:timing-full:v123"``); segment names are
    generated (prefix + counter + random token) so two arenas — or two
    generations of one key — never collide system-wide.
    """

    def __init__(self, prefix=None):
        self.prefix = prefix or f"rp{os.getpid():x}"
        self._segments = {}      # logical key -> (SharedMemory, nbytes)
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._owner_pid = os.getpid()
        atexit.register(self.close_all)

    # -- publishing -------------------------------------------------------------
    def publish(self, key, arrays, meta=None):
        """Copy ``arrays`` (+ ``meta``) into a fresh segment; return its
        system-wide segment name.  Re-publishing a key unlinks the old
        generation first."""
        from multiprocessing import shared_memory
        packed = {}
        for name, array in arrays.items():
            array = np.asarray(array)
            if not array.flags.c_contiguous:
                # (ascontiguousarray unconditionally would also promote
                # 0-d arrays to 1-d, corrupting the recorded shape)
                array = np.ascontiguousarray(array)
            packed[name] = array
        header, total, data_start, entries = _pack_header(packed, meta)
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            self._seq += 1
            name = f"{self.prefix}-{self._seq}-{secrets.token_hex(3)}"
            with _TRACKER_LOCK:
                shm = shared_memory.SharedMemory(name=name, create=True,
                                                 size=total)
            buf = shm.buf
            _LEN.pack_into(buf, 0, len(header))
            buf[_LEN.size:_LEN.size + len(header)] = header
            for entry, array in zip(entries, packed.values()):
                offset = data_start + entry["offset"]
                dest = np.frombuffer(buf, dtype=array.dtype,
                                     count=array.size, offset=offset)
                np.copyto(dest, array.reshape(-1))
            old = self._segments.pop(key, None)
            self._segments[key] = (shm, total)
        if old is not None:
            self._destroy(old[0])
        return name

    def _destroy(self, shm):
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        _close_shm(shm)

    def unpublish(self, key):
        with self._lock:
            old = self._segments.pop(key, None)
        if old is not None:
            self._destroy(old[0])
            return True
        return False

    # -- introspection ----------------------------------------------------------
    def segment_name(self, key):
        with self._lock:
            entry = self._segments.get(key)
            return entry[0].name if entry else None

    def keys(self):
        with self._lock:
            return sorted(self._segments)

    def total_bytes(self):
        with self._lock:
            return sum(nbytes for _, nbytes in self._segments.values())

    def entries(self):
        """Per-key segment inventory (for ``/stats`` and ``repro top``):
        ``[{key, segment, nbytes}, ...]``, sorted by logical key."""
        with self._lock:
            rows = [{"key": key, "segment": shm.name, "nbytes": nbytes}
                    for key, (shm, nbytes) in self._segments.items()]
        return sorted(rows, key=lambda row: row["key"])

    def __len__(self):
        with self._lock:
            return len(self._segments)

    # -- lifecycle --------------------------------------------------------------
    def close_all(self):
        """Unlink every segment this arena published (idempotent).

        No-op in forked children: only the process that created the
        arena may destroy its segments.
        """
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._closed = True
        for shm, _nbytes in segments:
            self._destroy(shm)
