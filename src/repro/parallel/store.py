"""Content-hash-keyed on-disk artifact cache with integrity checking.

An :class:`ArtifactStore` maps a *flow fingerprint* (a content hash of
everything that determines an artifact: netlist text, seeds, scale,
pipeline versions) to a pickled payload on disk.  Every entry carries a
header with a version stamp and a sha256 digest of the payload; both
are checked on load, so a truncated, garbled or stale entry reads as a
*miss* (and is evicted) rather than poisoning a build.

One entry is one file — ``<key>.art``::

    REPRO-ARTIFACT-1\\n
    {"kind": ..., "version": ..., "digest": ..., "size": ..., ...}\\n
    <pickled payload bytes>

written via a same-directory temp file and a single ``os.replace``, so
an entry is either entirely the old value or entirely the new one.
Concurrent writers — e.g. parallel dataset workers racing on the same
design — can never produce a header that disagrees with its payload.

Hits, misses, stale reads and corruption evictions are counted on the
process-wide metrics registry (``repro_artifact_total``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile

from ..obs import get_registry

__all__ = ["ArtifactStore", "content_key", "STORE_VERSION"]

# Bump when the on-disk entry format changes; old entries become misses.
STORE_VERSION = 1

_MAGIC = b"REPRO-ARTIFACT-1\n"
_SUFFIX = ".art"


def content_key(**parts):
    """Stable content hash of keyword parts (JSON-canonicalized)."""
    payload = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _artifact_counter(result, kind):
    return get_registry().counter(
        "repro_artifact_total",
        "Artifact-store lookups by result (hit/miss/stale/corrupt) "
        "and artifact kind.", result=result, kind=kind)


class ArtifactStore:
    """On-disk pickle cache keyed by content hash, integrity-checked."""

    def __init__(self, root=None):
        if root is None:
            from ..graphdata.dataset import default_cache_dir
            root = os.path.join(default_cache_dir(), "artifacts")
        self.root = root
        os.makedirs(self.root, exist_ok=True)

    # -- file format ---------------------------------------------------------
    def _path(self, key):
        return os.path.join(self.root, f"{key}{_SUFFIX}")

    @staticmethod
    def _parse(data):
        """(header dict, payload bytes) of one entry, or (None, None)."""
        if not data.startswith(_MAGIC):
            return None, None
        body = data[len(_MAGIC):]
        sep = body.find(b"\n")
        if sep < 0:
            return None, None
        try:
            header = json.loads(body[:sep])
        except ValueError:
            return None, None
        if not isinstance(header, dict):
            return None, None
        return header, body[sep + 1:]

    def _read(self, key):
        try:
            with open(self._path(key), "rb") as fh:
                return self._parse(fh.read())
        except OSError:
            return None, None

    # -- core API ------------------------------------------------------------
    def put(self, key, obj, kind="artifact", version=0, meta=None):
        """Store ``obj`` under ``key``; overwrites any previous entry."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "key": key,
            "kind": kind,
            "store_version": STORE_VERSION,
            "version": version,
            "digest": hashlib.sha256(payload).hexdigest(),
            "size": len(payload),
            "meta": meta or {},
        }
        data = _MAGIC + json.dumps(header, sort_keys=True).encode() \
            + b"\n" + payload
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return header

    def get(self, key, default=None, kind="artifact", version=0):
        """Load the entry at ``key``, or ``default`` on miss/stale/corrupt.

        A corrupt entry (bad magic/header, truncated or garbled payload,
        unpicklable bytes) is evicted so the next ``put`` starts clean.
        """
        if not os.path.exists(self._path(key)):
            _artifact_counter("miss", kind).inc()
            return default
        header, payload = self._read(key)
        if header is None:
            _artifact_counter("corrupt", kind).inc()
            self.delete(key)
            return default
        if (header.get("store_version") != STORE_VERSION
                or header.get("version") != version
                or header.get("kind") != kind):
            _artifact_counter("stale", kind).inc()
            return default
        if (len(payload) != header.get("size")
                or hashlib.sha256(payload).hexdigest()
                != header.get("digest")):
            _artifact_counter("corrupt", kind).inc()
            self.delete(key)
            return default
        try:
            obj = pickle.loads(payload)
        except Exception:
            _artifact_counter("corrupt", kind).inc()
            self.delete(key)
            return default
        _artifact_counter("hit", kind).inc()
        return obj

    def contains(self, key, kind="artifact", version=0):
        header, _payload = self._read(key)
        return (header is not None
                and header.get("store_version") == STORE_VERSION
                and header.get("version") == version
                and header.get("kind") == kind)

    def delete(self, key):
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    def clear(self, kind=None):
        """Remove all entries (or only those of one ``kind``); returns count."""
        removed = 0
        for key in self.keys():
            if kind is not None:
                header, _payload = self._read(key)
                if header is not None and header.get("kind") != kind:
                    continue
            self.delete(key)
            removed += 1
        return removed

    # -- introspection -------------------------------------------------------
    def keys(self):
        return sorted(name[:-len(_SUFFIX)]
                      for name in os.listdir(self.root)
                      if name.endswith(_SUFFIX))

    def entries(self):
        """Header records of every readable entry, sorted by key."""
        out = []
        for key in self.keys():
            header, _payload = self._read(key)
            if header is not None:
                header.setdefault("key", key)
                out.append(header)
        return out

    def verify(self):
        """Integrity-check every entry; returns [(key, problem), ...].

        Read-only: unlike :meth:`get`, broken entries are reported, not
        evicted.
        """
        problems = []
        for key in self.keys():
            header, payload = self._read(key)
            if header is None:
                problems.append((key, "unreadable header"))
            elif len(payload) != header.get("size"):
                problems.append(
                    (key, f"size mismatch ({len(payload)} != "
                          f"{header.get('size')})"))
            elif hashlib.sha256(payload).hexdigest() != header.get("digest"):
                problems.append((key, "digest mismatch"))
        return problems

    def total_bytes(self):
        total = 0
        for name in os.listdir(self.root):
            try:
                total += os.path.getsize(os.path.join(self.root, name))
            except OSError:
                pass
        return total
