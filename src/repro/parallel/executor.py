"""Process-pool execution of independent tasks with ordered results.

:class:`ParallelExecutor` shards a list of independent tasks (one
design's flow, typically) across worker processes:

* worker count from the constructor or ``REPRO_WORKERS`` (default 1 —
  parallelism is opt-in so tests and small runs stay single-process);
* results come back in *submission order* regardless of completion
  order, so parallel builds are drop-in replacements for serial loops;
* a worker crash (hard exit, OOM kill) breaks the whole pool; the
  executor rebuilds the pool and resubmits the unfinished tasks, at
  most ``retries`` times, before raising :class:`WorkerCrashError`;
* if a pool cannot be created at all (no fork support, sandboxed
  semaphores), it falls back to running every task serially in-process.

Ordinary task exceptions are *not* retried — they propagate to the
caller exactly as a serial loop would raise them.

The task function and its items must be picklable (module-level
functions, plain data).  Busy-worker occupancy is exported on the
process-wide metrics registry (``repro_parallel_busy_workers``), task
completions and crash retries as counters.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool

from ..obs import get_logger, get_registry

__all__ = ["ParallelExecutor", "WorkerCrashError", "default_workers",
           "pick_start_method"]

_log = get_logger("repro.parallel")


def default_workers():
    """Worker count from ``REPRO_WORKERS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        _log.warning("ignoring invalid REPRO_WORKERS", value=raw)
        return 1


class WorkerCrashError(RuntimeError):
    """A task crashed its worker process even after retrying."""


def pick_start_method():
    """``REPRO_MP_START``, else fork when safe, spawn otherwise.

    fork is cheap (workers inherit loaded modules) but unsafe when
    other threads are alive — a forked child can inherit a lock held
    mid-operation by a thread that doesn't exist in the child.
    Results are bit-identical either way.
    """
    method = os.environ.get("REPRO_MP_START", "").strip()
    available = multiprocessing.get_all_start_methods()
    if method:
        if method in available:
            return method
        _log.warning("ignoring unavailable REPRO_MP_START", value=method)
    if "fork" in available and threading.active_count() == 1:
        return "fork"
    return "spawn"


def _busy_gauge():
    return get_registry().gauge(
        "repro_parallel_busy_workers",
        "Tasks currently executing in pool worker processes.")


def _task_counter(result):
    return get_registry().counter(
        "repro_parallel_tasks_total",
        "Parallel tasks by outcome (done/retried/serial).", result=result)


class ParallelExecutor:
    """Run a function over items on a process pool, results in order."""

    def __init__(self, workers=None, retries=1):
        self.workers = default_workers() if workers is None else \
            max(1, int(workers))
        self.retries = int(retries)

    def map(self, fn, items):
        """``[fn(x) for x in items]``, sharded across worker processes."""
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return self._map_serial(fn, items)
        return self._map_pool(fn, items)

    # -- serial fallback ------------------------------------------------------
    def _map_serial(self, fn, items):
        results = []
        for item in items:
            results.append(fn(item))
            _task_counter("serial").inc()
        return results

    # -- pool path -----------------------------------------------------------
    @staticmethod
    def _start_method():
        return pick_start_method()

    def _make_pool(self, n_tasks):
        from concurrent.futures import ProcessPoolExecutor
        context = multiprocessing.get_context(self._start_method())
        return ProcessPoolExecutor(max_workers=min(self.workers, n_tasks),
                                   mp_context=context)

    def _map_pool(self, fn, items):
        results = [None] * len(items)
        done = [False] * len(items)
        crashes = 0
        gauge = _busy_gauge()
        while not all(done):
            pending = [i for i in range(len(items)) if not done[i]]
            try:
                pool = self._make_pool(len(pending))
            except (OSError, ValueError, ImportError) as exc:
                # Pool unavailable (sandbox, no semaphores): run the
                # rest serially in-process.
                _log.warning("process pool unavailable; running serially",
                             error=str(exc))
                for i in pending:
                    results[i] = fn(items[i])
                    done[i] = True
                    _task_counter("serial").inc()
                break
            crashed = False
            try:
                futures = {pool.submit(fn, items[i]): i for i in pending}
                gauge.set(min(self.workers, len(futures)))
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(not_done,
                                              return_when=FIRST_COMPLETED)
                    for fut in finished:
                        i = futures[fut]
                        try:
                            results[i] = fut.result()
                        except BrokenProcessPool:
                            crashed = True
                        else:
                            done[i] = True
                            _task_counter("done").inc()
                    if crashed:
                        break
                    gauge.set(min(self.workers, len(not_done)))
            finally:
                gauge.set(0)
                pool.shutdown(wait=True, cancel_futures=True)
            if crashed:
                crashes += 1
                unfinished = [i for i in range(len(items)) if not done[i]]
                if crashes > self.retries:
                    raise WorkerCrashError(
                        f"worker process crashed {crashes} times; "
                        f"unfinished tasks: {unfinished}")
                _task_counter("retried").inc()
                _log.warning("worker crashed; retrying unfinished tasks",
                             attempt=crashes, unfinished=len(unfinished))
        return results
