"""Parallel flow execution and on-disk artifact caching.

Two orthogonal pieces that together make dataset construction scale
(DESIGN.md §4):

* :class:`ParallelExecutor` — shard independent design flows across
  worker processes (``REPRO_WORKERS``), ordered results, retry-once on
  worker crash, serial fallback when pools are unavailable;
* :class:`ArtifactStore` — content-hash-keyed pickle cache with version
  stamps and integrity digests, so repeated experiment and test runs
  skip recomputation entirely;
* :class:`ShmArena` / :func:`attach` — publish dicts of numpy arrays
  into ``multiprocessing.shared_memory`` segments once, reconstruct
  zero-copy read-only views in any other process (the substrate of the
  pre-fork serving pool, ``repro.serving.pool``).

Determinism is the contract: a parallel build is bit-identical to a
serial one (``tests/test_parallel.py`` enforces it differentially).
"""

from .executor import (ParallelExecutor, WorkerCrashError, default_workers,
                       pick_start_method)
from .shm import Attachment, SHM_FORMAT_VERSION, ShmArena, attach
from .store import ArtifactStore, STORE_VERSION, content_key

__all__ = [
    "ParallelExecutor", "WorkerCrashError", "default_workers",
    "pick_start_method",
    "Attachment", "SHM_FORMAT_VERSION", "ShmArena", "attach",
    "ArtifactStore", "STORE_VERSION", "content_key",
]
