"""Greedy critical-path gate sizing on top of the incremental timer.

The classic ECO loop: enumerate the worst setup paths, try upsizing the
cells they traverse (X1 -> X2 -> X4 pin-compatible variants), keep every
swap that improves WNS, revert the rest.  Because each trial runs
through :class:`~repro.sta.incremental.IncrementalTimer`, the cost per
trial is the update cone rather than a full analysis — the workflow the
paper's fast timing models are meant to accelerate further.

With ``use_service=`` (a :class:`~repro.serving.delta.DeltaClient`), the
accept/reject decision keys on the *served model prediction* instead of
ground-truth STA: every trial is mirrored to the service's delta session
(``POST /predict/delta``) and kept iff the predicted WNS improves.  The
local timer still tracks ground truth — it drives critical-path
enumeration and the reported ``initial_wns``/``final_wns``, so the
result measures how far model-guided decisions actually moved the
design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..liberty import sizing_alternatives
from ..sta.paths import enumerate_worst_paths

__all__ = ["SizingResult", "size_for_setup"]


@dataclass
class SizingResult:
    """Outcome of a sizing pass."""

    initial_wns: float
    final_wns: float
    initial_tns: float
    final_tns: float
    swaps: list = field(default_factory=list)   # (cell name, from, to)
    trials: int = 0
    predicted_wns: float = None    # served model's WNS (use_service mode)

    @property
    def wns_gain(self):
        return self.final_wns - self.initial_wns


def _cells_on_paths(timer, k_paths):
    """Cells traversed by the K worst setup paths, most critical first."""
    paths = enumerate_worst_paths(timer.result, k=k_paths, mode="setup")
    seen = []
    seen_ids = set()
    for path in paths:
        for node, _col in path.nodes:
            pin = timer.graph.node_pins[node]
            cell = pin.cell
            if cell is None or cell.is_sequential:
                continue
            if id(cell) not in seen_ids:
                seen_ids.add(id(cell))
                seen.append(cell)
    return seen


def size_for_setup(timer, max_swaps=20, k_paths=8, max_rounds=4,
                   use_service=None):
    """Upsize cells on critical paths until WNS stops improving.

    ``timer`` is a live :class:`IncrementalTimer`; the design is edited
    in place.  With ``use_service`` (a DeltaClient bound to the same
    design/seed/scale) trials are mirrored to the serving stack and
    accepted on predicted WNS.  Returns a :class:`SizingResult`.
    """
    library = timer.design.library
    client = use_service
    predicted = client.wns_setup_ps() if client is not None else None
    outcome = SizingResult(
        initial_wns=timer.wns("setup"), final_wns=timer.wns("setup"),
        initial_tns=timer.tns("setup"), final_tns=timer.tns("setup"))

    for _round in range(max_rounds):
        improved_this_round = False
        for cell in _cells_on_paths(timer, k_paths):
            if len(outcome.swaps) >= max_swaps:
                break
            variants = sizing_alternatives(library, cell.cell_type)
            position = variants.index(cell.cell_type)
            if position + 1 >= len(variants):
                continue           # already at max drive
            bigger = variants[position + 1]
            before = timer.wns("setup")
            old_type = cell.cell_type
            timer.resize_cell(cell, bigger)
            outcome.trials += 1
            if client is not None:
                after = client.resize_cell(cell.name, bigger.name)
                accept = after > predicted + 1e-9
            else:
                after = timer.wns("setup")
                accept = after > before + 1e-9
            if accept:
                if client is not None:
                    predicted = after
                outcome.swaps.append((cell.name, old_type.name,
                                      bigger.name))
                improved_this_round = True
            else:
                timer.resize_cell(cell, old_type)   # revert
                if client is not None:
                    predicted = client.resize_cell(cell.name,
                                                   old_type.name)
        if not improved_this_round or len(outcome.swaps) >= max_swaps:
            break

    outcome.final_wns = timer.wns("setup")
    outcome.final_tns = timer.tns("setup")
    outcome.predicted_wns = predicted
    return outcome
