"""Greedy critical-path gate sizing on top of the incremental timer.

The classic ECO loop: enumerate the worst setup paths, try upsizing the
cells they traverse (X1 -> X2 -> X4 pin-compatible variants), keep every
swap that improves WNS, revert the rest.  Because each trial runs
through :class:`~repro.sta.incremental.IncrementalTimer`, the cost per
trial is the update cone rather than a full analysis — the workflow the
paper's fast timing models are meant to accelerate further.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..liberty import sizing_alternatives
from ..sta.paths import enumerate_worst_paths

__all__ = ["SizingResult", "size_for_setup"]


@dataclass
class SizingResult:
    """Outcome of a sizing pass."""

    initial_wns: float
    final_wns: float
    initial_tns: float
    final_tns: float
    swaps: list = field(default_factory=list)   # (cell name, from, to)
    trials: int = 0

    @property
    def wns_gain(self):
        return self.final_wns - self.initial_wns


def _cells_on_paths(timer, k_paths):
    """Cells traversed by the K worst setup paths, most critical first."""
    paths = enumerate_worst_paths(timer.result, k=k_paths, mode="setup")
    seen = []
    seen_ids = set()
    for path in paths:
        for node, _col in path.nodes:
            pin = timer.graph.node_pins[node]
            cell = pin.cell
            if cell is None or cell.is_sequential:
                continue
            if id(cell) not in seen_ids:
                seen_ids.add(id(cell))
                seen.append(cell)
    return seen


def size_for_setup(timer, max_swaps=20, k_paths=8, max_rounds=4):
    """Upsize cells on critical paths until WNS stops improving.

    ``timer`` is a live :class:`IncrementalTimer`; the design is edited
    in place.  Returns a :class:`SizingResult`.
    """
    library = timer.design.library
    outcome = SizingResult(
        initial_wns=timer.wns("setup"), final_wns=timer.wns("setup"),
        initial_tns=timer.tns("setup"), final_tns=timer.tns("setup"))

    for _round in range(max_rounds):
        improved_this_round = False
        for cell in _cells_on_paths(timer, k_paths):
            if len(outcome.swaps) >= max_swaps:
                break
            variants = sizing_alternatives(library, cell.cell_type)
            position = variants.index(cell.cell_type)
            if position + 1 >= len(variants):
                continue           # already at max drive
            bigger = variants[position + 1]
            before = timer.wns("setup")
            old_type = cell.cell_type
            timer.resize_cell(cell, bigger)
            outcome.trials += 1
            after = timer.wns("setup")
            if after > before + 1e-9:
                outcome.swaps.append((cell.name, old_type.name,
                                      bigger.name))
                improved_this_round = True
            else:
                timer.resize_cell(cell, old_type)   # revert
        if not improved_this_round or len(outcome.swaps) >= max_swaps:
            break

    outcome.final_wns = timer.wns("setup")
    outcome.final_tns = timer.tns("setup")
    return outcome
