"""Timing-driven placement — the paper's motivating application.

Analytical placers optimize wirelength because real timing feedback
(route + STA) is too slow to sit in the placement loop; the paper's GNN
exists to replace that feedback.  This module closes the loop both ways:

* :func:`net_criticality_weights` turns per-pin late slack into net
  weights for the quadratic placer;
* :func:`predicted_pin_slack` reconstructs *per-pin* slack purely from
  the GNN's outputs — predicted arrivals forward, and a required-time
  backward sweep over the model's own predicted net/cell delays (this is
  exactly what the auxiliary tasks of Eqs. 5-6 make possible);
* :func:`optimize_placement` iterates place -> evaluate -> re-weight,
  with the evaluator being either the ground-truth flow ("sta") or the
  trained model ("gnn"), and reports the final *true* timing of both.

The headline comparison (benchmarks/test_timing_driven_placement.py):
GNN-guided placement recovers most of the WNS gain of STA-guided
placement at a fraction of the per-iteration evaluator cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graphdata import TIME_SCALE, extract_graph
from ..placement import place_design, total_hpwl
from ..routing import route_design
from ..sta import build_timing_graph, run_sta
from ..sta.engine import EARLY_COLS, LATE_COLS

__all__ = ["net_criticality_weights", "predicted_pin_slack",
           "PlacementOptResult", "optimize_placement"]


def predicted_pin_slack(graph, prediction):
    """Per-pin late slack from GNN outputs only (normalized units).

    Forward arrivals come from the model's main head; required times are
    swept backward over the model's *predicted* net and cell delays,
    seeded with the endpoint required times (which are constraint
    constants — clock period minus library setup — known before
    routing).  No ground-truth timing is consumed.
    """
    arrival = prediction.numpy_arrival()[:, 2:4]          # late rise/fall
    net_delay = prediction.net_delay.data[:, 2:4]
    cell_delay = prediction.cell_delay_full(
        graph.num_cell_edges)[:, 2:4]
    rat = np.full((graph.num_nodes, 2), np.nan)
    eps = graph.is_endpoint
    rat[eps] = graph.required[eps, 2:4]

    order = np.argsort(graph.level, kind="stable")[::-1]
    net_by_dst = {}
    for e in range(graph.num_net_edges):
        net_by_dst.setdefault(graph.net_src[e], []).append(e)
    cell_by_src = {}
    for e in range(graph.num_cell_edges):
        cell_by_src.setdefault(graph.cell_src[e], []).append(e)

    for node in order:
        cand = rat[node].copy()
        for e in net_by_dst.get(node, ()):
            dst = graph.net_dst[e]
            value = rat[dst] - net_delay[dst]
            cand = np.fmin(cand, value)
        for e in cell_by_src.get(node, ()):
            dst = graph.cell_dst[e]
            value = rat[dst] - cell_delay[e]
            cand = np.fmin(cand, value)
        rat[node] = cand
    return rat - arrival          # late slack per pin, (N, 2)


def _true_pin_slack(result):
    """Per-pin late slack from a full STA result (ps -> normalized)."""
    slack = result.slack[:, LATE_COLS]
    return slack / TIME_SCALE


def net_criticality_weights(design, node_map, pin_slack, clock_period_norm,
                            alpha=6.0, gamma=2.0):
    """Map per-pin late slack to net weights for the quadratic placer.

    Criticality is *rank-based*: nets are ordered by their worst pin
    slack and the weight rises from 1 (most relaxed) to 1 + alpha (most
    critical) as ``1 + alpha * (1 - percentile)^gamma``.  Ranking makes
    the weighting robust to a uniform slack offset, which matters when
    the evaluator is a learned model whose arrivals can carry a
    design-level bias while ordering endpoints correctly (high Pearson,
    lower R2).  ``clock_period_norm`` is kept for API compatibility and
    used only to drop nets with absurdly large (non-critical) slack.
    """
    worst = np.fmin(pin_slack[:, 0], pin_slack[:, 1])
    names, slacks = [], []
    for net in design.nets:
        nodes = [node_map[p.index] for p in net.pins if not p.is_clock]
        if not nodes:
            continue
        slack_net = np.nanmin(worst[nodes])
        if not np.isfinite(slack_net):
            continue
        names.append(net.name)
        slacks.append(float(slack_net))
    if not names:
        return {}
    order = np.argsort(slacks)                   # most critical first
    n = len(order)
    weights = {}
    for rank, idx in enumerate(order):
        percentile = rank / max(n - 1, 1)
        weights[names[idx]] = 1.0 + alpha * (1.0 - percentile) ** gamma
    return weights


@dataclass
class PlacementOptResult:
    """Trajectory of one placement optimization run."""

    evaluator: str
    iterations: list = field(default_factory=list)   # per-iter dicts
    evaluator_seconds: float = 0.0
    final_wns: float = 0.0
    final_tns: float = 0.0
    final_hpwl: float = 0.0


def optimize_placement(design, evaluator="sta", model=None, rounds=3,
                       seed=1, alpha=6.0, clock_period=None):
    """Iterative timing-driven placement.

    ``evaluator`` selects the timing feedback inside the loop: "sta"
    (ground truth: route + full STA each round) or "gnn" (the trained
    model; ``model`` required).  The *final* metrics always come from a
    full ground-truth analysis, so evaluators are compared fairly.
    """
    if evaluator == "gnn" and model is None:
        raise ValueError("evaluator='gnn' requires a trained model")
    weights = None
    history = PlacementOptResult(evaluator=evaluator)
    best = None     # (wns, tns, hpwl, weights) of the best round seen

    graph = None
    for round_index in range(rounds + 1):
        # Round 0 is the unweighted baseline; each later round re-places
        # with weights derived from the previous round's evaluation.
        placement = place_design(design, seed=seed, net_weights=weights)
        # Ground truth runs every round for honest trajectory metrics;
        # only the *evaluator's* share of the work is timed, since in a
        # production loop the GNN evaluator would replace route+STA.
        t_flow = time.perf_counter()
        routing = route_design(design, placement)
        if graph is None:
            graph = build_timing_graph(design)
        result = run_sta(design, placement, routing,
                         clock_period=clock_period, graph=graph)
        t_flow = time.perf_counter() - t_flow
        if clock_period is None:
            clock_period = result.clock_period
        hetero = extract_graph(graph, placement, result)
        node_map = {pin.index: node
                    for node, pin in enumerate(graph.node_pins)}

        if evaluator == "gnn":
            t0 = time.perf_counter()
            prediction = model.predict(hetero)
            pin_slack = predicted_pin_slack(hetero, prediction)
            history.evaluator_seconds += time.perf_counter() - t0
        else:
            pin_slack = _true_pin_slack(result)
            history.evaluator_seconds += t_flow

        new_weights = net_criticality_weights(
            design, node_map, pin_slack, clock_period / TIME_SCALE,
            alpha=alpha)
        # Smooth the weights across rounds: abrupt re-weighting makes
        # the quadratic solve oscillate between critical-path sets.
        if weights:
            names = set(weights) | set(new_weights)
            weights = {n: 0.5 * weights.get(n, 1.0) +
                       0.5 * new_weights.get(n, 1.0) for n in names}
        else:
            weights = new_weights

        record = {
            "round": round_index,
            "wns": result.wns("setup"),
            "tns": result.tns("setup"),
            "hpwl": total_hpwl(design, placement.pin_xy),
        }
        history.iterations.append(record)
        if best is None or record["wns"] > best["wns"]:
            best = record

    # The optimizer keeps the best placement it saw (net-weighting is a
    # heuristic; a round can regress and is then discarded).
    history.final_wns = best["wns"]
    history.final_tns = best["tns"]
    history.final_hpwl = best["hpwl"]
    return history
