"""Buffer insertion on timing-critical nets.

Long or high-fanout nets contribute large Elmore delays; inserting a
buffer near a critical sink both shields the driver from part of the
load and restores the slew.  This pass:

1. enumerates the worst setup paths;
2. finds the net arc with the largest interconnect delay contribution;
3. splits that arc — driver keeps the original net, a new buffer drives
   the critical sink (placed at the midpoint);
4. re-analyses and keeps the edit if WNS improved, reverts otherwise.

Buffering changes the netlist structure, so each trial rebuilds the
timing graph and re-runs analysis on the edited design (this is the
expensive loop that motivates learned timing models).

With ``use_service=`` (a :class:`~repro.serving.delta.DeltaClient`),
each insertion is mirrored to the service's delta session as an
``insert_buffer`` edit (rejections as the matching ``remove_buffer``)
and the accept decision keys on the served model's predicted WNS; local
re-analysis still maintains ground truth for candidate selection and
the reported WNS numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..placement import Placement
from ..routing import route_design
from ..sta import build_timing_graph, run_sta
from ..sta.paths import enumerate_worst_paths

__all__ = ["BufferingResult", "buffer_critical_nets"]


@dataclass
class BufferingResult:
    initial_wns: float
    final_wns: float
    inserted: list = field(default_factory=list)   # buffer cell names
    trials: int = 0
    predicted_wns: float = None    # served model's WNS (use_service mode)


def _worst_net_arc(result, path):
    """(src node, dst node, interconnect delay) of the path's worst net arc."""
    graph = result.graph
    worst = None
    for (a, col_a), (b, col_b) in zip(path.nodes[:-1], path.nodes[1:]):
        pin_a = graph.node_pins[a]
        pin_b = graph.node_pins[b]
        # Net arc: driver pin -> sink pin on the same net.
        if pin_a.net is not None and pin_b.net is pin_a.net:
            delay = result.net_delay[b, col_b]
            if worst is None or delay > worst[2]:
                worst = (a, b, float(delay))
    return worst


def _reanalyse(design, placement, clock_period):
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, clock_period=clock_period,
                     graph=graph)
    return routing, graph, result


def buffer_critical_nets(design, placement, result, buffer_cell="BUF_X2",
                         max_buffers=8, k_paths=6, use_service=None):
    """Insert buffers on the worst nets; returns (result, BufferingResult).

    ``placement`` gains positions for the new buffer cells;
    the returned ``result`` reflects the final design.  With
    ``use_service`` (a DeltaClient on the same design/seed/scale) the
    keep/revert decision keys on the served prediction.
    """
    clock_period = result.clock_period
    client = use_service
    predicted = client.wns_setup_ps() if client is not None else None
    outcome = BufferingResult(initial_wns=result.wns("setup"),
                              final_wns=result.wns("setup"))
    buffer_type = design.library[buffer_cell]

    for i in range(max_buffers):
        paths = enumerate_worst_paths(result, k=k_paths, mode="setup")
        candidate = None
        for path in paths:
            if path.slack >= 0:
                break
            arc = _worst_net_arc(result, path)
            if arc is not None and arc[2] > 1.0:     # > 1 ps of wire delay
                candidate = arc
                break
        if candidate is None:
            break
        src_node, dst_node, _delay = candidate
        graph = result.graph
        driver_pin = graph.node_pins[src_node]
        sink_pin = graph.node_pins[dst_node]
        net = driver_pin.net

        # Structural edit: detach the critical sink, drive it through a
        # new buffer placed at the arc midpoint.
        buf = design.add_cell(f"ecobuf{i}", buffer_type)
        net.sinks.remove(sink_pin)
        design.connect(net, buf.pins["A"])
        design.add_net(f"econet{i}", buf.pins["Y"], [sink_pin])
        mid = 0.5 * (placement.pin_xy[driver_pin.index] +
                     placement.pin_xy[sink_pin.index])
        placement.cell_xy = np.vstack([placement.cell_xy, mid])
        for pin in buf.pins.values():
            offset = placement._pin_offset(pin)
            new_xy = placement.die.clamp(mid + offset)
            placement.pin_xy = np.vstack([placement.pin_xy, new_xy])

        _routing, _graph, new_result = _reanalyse(design, placement,
                                                  clock_period)
        outcome.trials += 1
        if client is not None:
            after = client.insert_buffer(net.name, sink_pin.name,
                                         buffer_cell=buffer_cell,
                                         name=buf.name,
                                         new_net=f"econet{i}")
            accept = after > predicted + 1e-9
        else:
            accept = new_result.wns("setup") > result.wns("setup") + 1e-9
        if accept:
            result = new_result
            outcome.inserted.append(buf.name)
            if client is not None:
                predicted = after
        else:
            # Revert the structural edit.
            design.cells.remove(buf)
            design.nets.pop()          # econet{i}
            net.sinks.remove(buf.pins["A"])
            design.connect(net, sink_pin)
            design.pins = design.pins[:-len(buf.pins)]
            placement.cell_xy = placement.cell_xy[:-1]
            placement.pin_xy = placement.pin_xy[:-len(buf.pins)]
            if client is not None:
                predicted = client.remove_buffer(buf.name)
            _routing, _graph, result = _reanalyse(design, placement,
                                                  clock_period)
    outcome.final_wns = result.wns("setup")
    outcome.predicted_wns = predicted
    return result, outcome
