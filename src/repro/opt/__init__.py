"""Physical optimization on top of the timing substrate.

The paper motivates fast timing prediction with timing-driven physical
design; this package implements the consumers: gate sizing and buffer
insertion ECOs (driven by incremental STA), and a timing-driven
placement loop whose evaluator can be either the ground-truth flow or
the trained GNN.
"""

from .sizing import SizingResult, size_for_setup
from .buffering import BufferingResult, buffer_critical_nets
from .timing_placement import (PlacementOptResult, net_criticality_weights,
                               optimize_placement, predicted_pin_slack)

__all__ = [
    "SizingResult", "size_for_setup",
    "BufferingResult", "buffer_critical_nets",
    "PlacementOptResult", "net_criticality_weights",
    "optimize_placement", "predicted_pin_slack",
]
