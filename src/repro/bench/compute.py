"""Compute benchmark: fused vs. naive kernel backends on the full model.

``repro bench-compute`` times the :class:`~repro.models.TimingGNN` on
dataset designs under both kernel backends (see
:mod:`repro.nn.kernels`), in three stages:

* ``forward`` — inference pass under ``nn.no_grad()``;
* ``forward_backward`` — training-style pass: forward, combined loss,
  ``backward(free=True)``;
* ``train_step`` — the above plus gradient clipping and one Adam step.

Each (design, backend, stage) cell is the mean wall time of ``reps``
passes after ``warmup`` untimed ones (the first pass also builds the
graph's cached :class:`~repro.graphdata.hetero.LevelSchedule`, which
both backends share).  Speedups are naive/fused time ratios.  Results
feed the process metrics registry (``repro_compute_*``) and are recorded
to a schema-versioned ``BENCH_compute.json`` at the repo root so the
kernel-speedup trajectory is tracked across PRs, like
``BENCH_serving.json`` does for the serving layer.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from .. import nn
from ..models import ModelConfig, TimingGNN
from ..obs import get_logger, get_registry, get_tracer
from ..training.loss import combined_loss

__all__ = ["COMPUTE_BENCH_SCHEMA_VERSION", "STAGES", "DesignBench",
           "ComputeBenchResult", "run_compute_bench",
           "format_compute_report", "write_compute_bench_json"]

COMPUTE_BENCH_SCHEMA_VERSION = 1

STAGES = ("forward", "forward_backward", "train_step")

_log = get_logger("repro.bench")


@dataclass
class DesignBench:
    """Per-design timings: ``times_ms[backend][stage]`` and speedups."""

    name: str
    nodes: int
    net_edges: int
    cell_edges: int
    levels: int
    times_ms: dict = field(default_factory=dict)
    speedup: dict = field(default_factory=dict)


@dataclass
class ComputeBenchResult:
    backends: tuple
    stages: tuple
    reps: int
    warmup: int
    designs: list                      # list[DesignBench]
    summary: dict

    def to_dict(self):
        out = asdict(self)
        out["backends"] = list(self.backends)
        out["stages"] = list(self.stages)
        return out


def _fresh_model(cfg):
    # Same seed per (design, backend, stage) cell: both backends time the
    # exact same weights, so the comparison is apples to apples.
    return TimingGNN(cfg, rng=np.random.default_rng(cfg.seed))


def _run_stage(graph, cfg, stage, reps, warmup):
    """Mean ms per pass of one stage on one design, current backend."""
    model = _fresh_model(cfg)
    if stage == "train_step":
        optim = nn.Adam(model.parameters(), lr=1e-3)

    def one_pass():
        if stage == "forward":
            with nn.no_grad():
                model(graph)
            return
        pred = model(graph)
        loss, _parts = combined_loss(pred, graph)
        if stage == "forward_backward":
            model.zero_grad()
            loss.backward(free=True)
        else:
            optim.zero_grad()
            loss.backward(free=True)
            nn.clip_grad_norm(model.parameters(), 5.0)
            optim.step()

    for _ in range(warmup):
        one_pass()
    t0 = time.perf_counter()
    for _ in range(reps):
        one_pass()
    return (time.perf_counter() - t0) * 1000.0 / max(reps, 1)


def run_compute_bench(graphs, cfg=None, reps=3, warmup=1, stages=STAGES,
                      backends=("naive", "fused")):
    """Benchmark both kernel backends over ``graphs``.

    ``graphs`` is a list of :class:`~repro.graphdata.HeteroGraph`;
    returns a :class:`ComputeBenchResult`.  The active-backend context
    is set per cell with :class:`repro.nn.use_kernels`, so the process
    default (``REPRO_KERNELS``) is untouched.
    """
    cfg = cfg or ModelConfig.benchmark()
    stages = tuple(stages)
    backends = tuple(backends)
    for stage in stages:
        if stage not in STAGES:
            raise ValueError(f"unknown bench stage {stage!r}")
    registry = get_registry()
    stage_ms = {
        (b, s): registry.histogram(
            "repro_compute_stage_ms",
            "Wall time per full-model pass in the compute benchmark.",
            backend=b, stage=s)
        for b in backends for s in stages}
    rows = []
    with get_tracer().span("bench.compute", designs=len(graphs),
                           reps=reps) as span:
        for graph in graphs:
            row = DesignBench(
                name=graph.name, nodes=graph.num_nodes,
                net_edges=graph.num_net_edges,
                cell_edges=graph.num_cell_edges, levels=graph.num_levels)
            for backend in backends:
                with nn.use_kernels(backend):
                    row.times_ms[backend] = {
                        stage: _run_stage(graph, cfg, stage, reps, warmup)
                        for stage in stages}
                for stage in stages:
                    stage_ms[backend, stage].observe(
                        row.times_ms[backend][stage])
            if "naive" in backends and "fused" in backends:
                for stage in stages:
                    ratio = (row.times_ms["naive"][stage]
                             / max(row.times_ms["fused"][stage], 1e-9))
                    row.speedup[stage] = ratio
                    registry.gauge(
                        "repro_compute_speedup",
                        "Naive/fused wall-time ratio per design and stage.",
                        design=row.name, stage=stage).set(ratio)
            _log.info("bench.compute.design", design=row.name,
                      nodes=row.nodes, **{
                          f"speedup_{k}": round(v, 3)
                          for k, v in row.speedup.items()})
            rows.append(row)
        summary = _summarize(rows, stages)
        span.set(**{f"best_{k}": v for k, v in summary.items()
                    if isinstance(v, (int, float))})
    return ComputeBenchResult(backends=backends, stages=stages, reps=reps,
                              warmup=warmup, designs=rows, summary=summary)


def _summarize(rows, stages):
    """Best and geometric-mean speedup per stage across designs."""
    summary = {}
    for stage in stages:
        ratios = [r.speedup[stage] for r in rows if stage in r.speedup]
        if not ratios:
            continue
        best = int(np.argmax(ratios))
        summary[f"speedup_{stage}_best"] = float(max(ratios))
        summary[f"speedup_{stage}_best_design"] = rows[best].name
        summary[f"speedup_{stage}_geomean"] = float(
            np.exp(np.mean(np.log(ratios))))
    return summary


def write_compute_bench_json(result, path="BENCH_compute.json", params=None):
    """Record one compute-bench run as a JSON benchmark artefact.

    Written by ``repro bench-compute`` at the repo root; ``scripts/
    ci.sh`` asserts the file is produced and well-formed.
    """
    from ..obs.runs import new_run_id, record_run

    payload = {
        "benchmark": "compute",
        "schema_version": COMPUTE_BENCH_SCHEMA_VERSION,
        "run_id": new_run_id("bench_compute"),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "params": dict(params or {}),
        **result.to_dict(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=False)
        fh.write("\n")
    # mirror the artefact into the run ledger so `repro bench diff` can
    # gate future runs against it
    from .diff import bench_fingerprint

    record_run("bench_compute", run_id=payload["run_id"],
               fingerprint=bench_fingerprint(payload),
               generated_at=payload["generated_at"], payload=payload)
    return path


def format_compute_report(result):
    """Human-readable per-design table of one compute-bench run."""
    stages = list(result.stages)
    head = f"{'design':<16}{'nodes':>7}" + "".join(
        f"{s + ' n/f ms':>24}{'x':>7}" for s in stages)
    lines = ["compute benchmark (fused vs. naive kernels, "
             f"mean of {result.reps} reps)", head]
    for row in result.designs:
        cells = ""
        for stage in stages:
            naive = row.times_ms.get("naive", {}).get(stage)
            fused = row.times_ms.get("fused", {}).get(stage)
            pair = (f"{naive:>11.1f}/{fused:<8.1f}"
                    if naive is not None and fused is not None else
                    f"{'-':>20}")
            ratio = row.speedup.get(stage)
            cells += f"{pair:>24}" + (
                f"{ratio:>6.2f}x" if ratio is not None else f"{'-':>7}")
        lines.append(f"{row.name:<16}{row.nodes:>7}{cells}")
    for stage in stages:
        best = result.summary.get(f"speedup_{stage}_best")
        if best is None:
            continue
        lines.append(
            f"  {stage:<17} best {best:5.2f}x "
            f"({result.summary[f'speedup_{stage}_best_design']}), "
            f"geomean {result.summary[f'speedup_{stage}_geomean']:5.2f}x")
    return "\n".join(lines)
