"""Compute benchmark: fused vs. naive kernel backends on the full model.

``repro bench-compute`` times the :class:`~repro.models.TimingGNN` on
dataset designs under both kernel backends (see
:mod:`repro.nn.kernels`), in three stages:

* ``forward`` — inference pass under ``nn.no_grad()``;
* ``forward_backward`` — training-style pass: forward, combined loss,
  ``backward(free=True)``;
* ``train_step`` — the above plus gradient clipping and one Adam step.

Schema v2 adds the **dtype axis**: the naive backend runs at float64
only (the seed's precision — it is the reference denominator), the
fused backend runs at every requested dtype, and speedups are always
*versus naive@float64*.  Cells are timed **interleaved** — one rep of
every (backend, dtype) cell per round, taking the per-cell minimum —
so slow drifts in machine load hit all cells alike instead of biasing
whichever cell ran during a noisy window.  Each cell also gets one
untimed instrumented ``forward_backward`` pass recording
``allocations_per_step`` (numpy buffer-constructor calls — the traffic
the tape arena exists to eliminate) and ``peak_rss_mb`` (tracemalloc
peak of traced allocations, the portable stand-in for resident-set
growth).  Results feed the process metrics registry
(``repro_compute_*``) and are recorded to a schema-versioned
``BENCH_compute.json`` at the repo root so the kernel-speedup
trajectory is tracked across PRs, like ``BENCH_serving.json`` does for
the serving layer.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import asdict, dataclass, field

import numpy as np

from .. import nn
from ..models import ModelConfig, TimingGNN
from ..obs import get_logger, get_registry, get_tracer
from ..training.loss import combined_loss

__all__ = ["COMPUTE_BENCH_SCHEMA_VERSION", "STAGES", "DesignBench",
           "ComputeBenchResult", "run_compute_bench",
           "format_compute_report", "write_compute_bench_json"]

COMPUTE_BENCH_SCHEMA_VERSION = 2

STAGES = ("forward", "forward_backward", "train_step")

#: The naive backend always runs at the seed precision; fused cells
#: are compared against this one reference cell.
REFERENCE_CELL = ("naive", "float64")

_log = get_logger("repro.bench")


@dataclass
class DesignBench:
    """Per-design timings: ``times_ms[backend][dtype][stage]`` (min over
    interleaved reps) plus per-cell allocation/memory instrumentation.
    ``speedup[dtype][stage]`` is naive@float64 over fused@dtype."""

    name: str
    nodes: int
    net_edges: int
    cell_edges: int
    levels: int
    times_ms: dict = field(default_factory=dict)
    speedup: dict = field(default_factory=dict)
    allocations_per_step: dict = field(default_factory=dict)
    peak_rss_mb: dict = field(default_factory=dict)


@dataclass
class ComputeBenchResult:
    backends: tuple
    dtypes: tuple
    stages: tuple
    reps: int
    warmup: int
    designs: list                      # list[DesignBench]
    summary: dict

    def to_dict(self):
        out = asdict(self)
        out["backends"] = list(self.backends)
        out["dtypes"] = list(self.dtypes)
        out["stages"] = list(self.stages)
        return out


def _fresh_model(cfg):
    # Same seed per (design, backend, dtype) cell: every cell times the
    # exact same weights (cast to its dtype), so the comparison is
    # apples to apples.
    return TimingGNN(cfg, rng=np.random.default_rng(cfg.seed))


def _bench_cells(backends, dtypes):
    """The (backend, dtype) cells one bench run times."""
    cells = []
    if "naive" in backends:
        cells.append(REFERENCE_CELL)
    if "fused" in backends:
        for dt in dtypes:
            cells.append(("fused", dt))
    return cells


class _CellRunner:
    """One (backend, dtype) cell: its model, optimizer and pass bodies."""

    def __init__(self, graph, cfg, cell, stages):
        self.graph = graph
        self.cell = cell
        with nn.use_kernels(cell[0]), nn.use_dtype(cell[1]):
            self.model = _fresh_model(cfg)
            self.optim = (nn.Adam(self.model.parameters(), lr=1e-3)
                          if "train_step" in stages else None)

    def run(self, stage):
        backend, dtype = self.cell
        with nn.use_kernels(backend), nn.use_dtype(dtype):
            if stage == "forward":
                with nn.no_grad():
                    self.model(self.graph)
                return
            pred = self.model(self.graph)
            loss, _parts = combined_loss(pred, self.graph)
            if stage == "forward_backward":
                self.model.zero_grad()
                loss.backward(free=True)
            else:
                self.optim.zero_grad()
                loss.backward(free=True)
                nn.clip_grad_norm(self.model.parameters(), 5.0)
                self.optim.step()


_ALLOC_FNS = ("empty", "zeros", "ones", "full", "empty_like",
              "zeros_like", "ones_like", "concatenate", "copy", "stack")


def _count_allocations(fn):
    """Run ``fn()`` counting numpy buffer-constructor calls.

    Counts the module-level constructors the tape and kernels allocate
    through (``np.empty``/``np.zeros``/``np.concatenate``/...), i.e.
    exactly the traffic arena planning and the gradient pool recycle
    away; ufunc temporaries below the numpy C layer are not visible
    here and not counted.
    """
    count = [0]
    saved = {}

    def wrap(orig):
        def inner(*args, **kwargs):
            count[0] += 1
            return orig(*args, **kwargs)
        return inner

    for name in _ALLOC_FNS:
        saved[name] = getattr(np, name)
        setattr(np, name, wrap(saved[name]))
    try:
        fn()
    finally:
        for name, orig in saved.items():
            setattr(np, name, orig)
    return count[0]


def _instrument_cell(runner, stage):
    """One untimed instrumented pass: (allocations, traced peak MiB)."""
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    allocs = _count_allocations(lambda: runner.run(stage))
    _current, peak = tracemalloc.get_traced_memory()
    if not was_tracing:
        tracemalloc.stop()
    return allocs, peak / (1024.0 * 1024.0)


def run_compute_bench(graphs, cfg=None, reps=3, warmup=1, stages=STAGES,
                      backends=("naive", "fused"),
                      dtypes=("float64", "float32")):
    """Benchmark the kernel-backend x dtype grid over ``graphs``.

    ``graphs`` is a list of :class:`~repro.graphdata.HeteroGraph`;
    returns a :class:`ComputeBenchResult`.  Backend and dtype are set
    per cell with :class:`repro.nn.use_kernels` /
    :class:`repro.nn.use_dtype`, so the process defaults
    (``REPRO_KERNELS``, ``REPRO_DTYPE``) are untouched.  The thread
    budget is whatever ``REPRO_COMPUTE_THREADS`` / an enclosing
    :class:`repro.nn.use_threads` selects; it is recorded by the CLI in
    the artefact params.
    """
    cfg = cfg or ModelConfig.benchmark()
    stages = tuple(stages)
    backends = tuple(backends)
    dtypes = tuple(dtypes)
    for stage in stages:
        if stage not in STAGES:
            raise ValueError(f"unknown bench stage {stage!r}")
    for dt in dtypes:
        if dt not in nn.DTYPES:
            raise ValueError(f"unknown bench dtype {dt!r}")
    cells = _bench_cells(backends, dtypes)
    registry = get_registry()
    stage_ms = {
        (b, d, s): registry.histogram(
            "repro_compute_stage_ms",
            "Wall time per full-model pass in the compute benchmark.",
            backend=b, dtype=d, stage=s)
        for b, d in cells for s in stages}
    rows = []
    with get_tracer().span("bench.compute", designs=len(graphs),
                           reps=reps) as span:
        for graph in graphs:
            row = DesignBench(
                name=graph.name, nodes=graph.num_nodes,
                net_edges=graph.num_net_edges,
                cell_edges=graph.num_cell_edges, levels=graph.num_levels)
            runners = {cell: _CellRunner(graph, cfg, cell, stages)
                       for cell in cells}
            for stage in stages:
                for cell in cells:
                    for _ in range(warmup):
                        runners[cell].run(stage)
                best = {cell: float("inf") for cell in cells}
                # Interleave: one rep of every cell per round, so load
                # drifts hit all cells alike; keep the per-cell min.
                for _ in range(max(reps, 1)):
                    for cell in cells:
                        t0 = time.perf_counter()
                        runners[cell].run(stage)
                        ms = (time.perf_counter() - t0) * 1000.0
                        if ms < best[cell]:
                            best[cell] = ms
                for (b, d), ms in best.items():
                    row.times_ms.setdefault(b, {}).setdefault(d, {})[
                        stage] = ms
                    stage_ms[b, d, stage].observe(ms)
            inst_stage = ("forward_backward"
                          if "forward_backward" in stages else stages[0])
            for cell in cells:
                b, d = cell
                allocs, peak_mb = _instrument_cell(runners[cell], inst_stage)
                row.allocations_per_step.setdefault(b, {})[d] = allocs
                row.peak_rss_mb.setdefault(b, {})[d] = round(peak_mb, 3)
            ref = row.times_ms.get(REFERENCE_CELL[0], {}).get(
                REFERENCE_CELL[1], {})
            if ref and "fused" in row.times_ms:
                for dt, per_stage in row.times_ms["fused"].items():
                    row.speedup[dt] = {}
                    for stage in stages:
                        ratio = ref[stage] / max(per_stage[stage], 1e-9)
                        row.speedup[dt][stage] = ratio
                        registry.gauge(
                            "repro_compute_speedup",
                            "naive@float64 / fused wall-time ratio per "
                            "design, dtype and stage.",
                            design=row.name, dtype=dt, stage=stage,
                        ).set(ratio)
            _log.info("bench.compute.design", design=row.name,
                      nodes=row.nodes, **{
                          f"speedup_{stage}_{dt}": round(v, 3)
                          for dt, stages_ in row.speedup.items()
                          for stage, v in stages_.items()})
            rows.append(row)
        summary = _summarize(rows, stages, dtypes)
        span.set(**{k: v for k, v in summary.items()
                    if isinstance(v, (int, float))})
    return ComputeBenchResult(backends=backends, dtypes=dtypes,
                              stages=stages, reps=reps, warmup=warmup,
                              designs=rows, summary=summary)


def _summarize(rows, stages, dtypes):
    """Best and geometric-mean speedup per stage, per dtype and overall.

    The unsuffixed ``speedup_{stage}_geomean`` / ``_best`` keys are the
    best dtype's numbers — the headline the CI gate reads — with
    ``_best_dtype`` naming which dtype that was.
    """
    summary = {}
    for stage in stages:
        best_geo = None
        for dt in dtypes:
            ratios = [r.speedup[dt][stage] for r in rows
                      if stage in r.speedup.get(dt, {})]
            if not ratios:
                continue
            geo = float(np.exp(np.mean(np.log(ratios))))
            idx = int(np.argmax(ratios))
            summary[f"speedup_{stage}_geomean_{dt}"] = geo
            summary[f"speedup_{stage}_best_{dt}"] = float(max(ratios))
            if best_geo is None or geo > best_geo:
                best_geo = geo
                summary[f"speedup_{stage}_geomean"] = geo
                summary[f"speedup_{stage}_best"] = float(max(ratios))
                summary[f"speedup_{stage}_best_design"] = rows[idx].name
                summary[f"speedup_{stage}_best_dtype"] = dt
    return summary


def write_compute_bench_json(result, path="BENCH_compute.json", params=None):
    """Record one compute-bench run as a JSON benchmark artefact.

    Written by ``repro bench-compute`` at the repo root; ``scripts/
    ci.sh`` asserts the file is produced and well-formed.
    """
    from ..obs.runs import new_run_id, record_run

    payload = {
        "benchmark": "compute",
        "schema_version": COMPUTE_BENCH_SCHEMA_VERSION,
        "run_id": new_run_id("bench_compute"),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "params": dict(params or {}),
        **result.to_dict(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=False)
        fh.write("\n")
    # mirror the artefact into the run ledger so `repro bench diff` can
    # gate future runs against it
    from .diff import bench_fingerprint

    record_run("bench_compute", run_id=payload["run_id"],
               fingerprint=bench_fingerprint(payload),
               generated_at=payload["generated_at"], payload=payload)
    return path


def format_compute_report(result):
    """Human-readable per-design table of one compute-bench run."""
    stages = list(result.stages)
    cells = _bench_cells(result.backends, result.dtypes)
    lines = [f"compute benchmark (interleaved min of {result.reps} reps; "
             f"reference {REFERENCE_CELL[0]}@{REFERENCE_CELL[1]})"]
    for row in result.designs:
        lines.append(f"{row.name}  ({row.nodes} nodes, "
                     f"{row.levels} levels)")
        for b, d in cells:
            per_stage = row.times_ms.get(b, {}).get(d, {})
            cols = "".join(
                f"  {s}: {per_stage[s]:8.1f} ms" for s in stages
                if s in per_stage)
            sp = row.speedup.get(d, {}) if b == "fused" else {}
            extra = ""
            if sp:
                extra = "  [" + " ".join(
                    f"{s}:{sp[s]:.2f}x" for s in stages if s in sp) + "]"
            allocs = row.allocations_per_step.get(b, {}).get(d)
            mem = row.peak_rss_mb.get(b, {}).get(d)
            if allocs is not None:
                extra += f"  allocs/step {allocs}"
            if mem is not None:
                extra += f"  peak {mem:.1f} MiB"
            lines.append(f"  {b}@{d:<9}{cols}{extra}")
    for stage in stages:
        geo = result.summary.get(f"speedup_{stage}_geomean")
        if geo is None:
            continue
        lines.append(
            f"  {stage:<17} best {result.summary[f'speedup_{stage}_best']:5.2f}x "
            f"({result.summary[f'speedup_{stage}_best_design']}"
            f"@{result.summary[f'speedup_{stage}_best_dtype']}), "
            f"geomean {geo:5.2f}x")
    return "\n".join(lines)
