"""Benchmark harnesses tracked as JSON artefacts across PRs.

``repro bench-serve`` (in :mod:`repro.serving.loadgen`) covers the HTTP
serving layer; this package holds the pure-compute benchmarks:

* :mod:`repro.bench.compute` — fused vs. naive kernel backends on
  full-model forward / forward+backward / train-step passes over dataset
  designs, recorded to ``BENCH_compute.json``;
* :mod:`repro.bench.diff` — regression gating: compares fresh BENCH
  artefacts against the run-ledger history with relative-tolerance
  thresholds (``repro bench diff --check`` exits non-zero on a
  regression; wired into ``scripts/ci.sh``).
"""

from .compute import (COMPUTE_BENCH_SCHEMA_VERSION, STAGES,
                      ComputeBenchResult, DesignBench,
                      format_compute_report, run_compute_bench,
                      write_compute_bench_json)
from .diff import (DEFAULT_TOLERANCE, MetricDelta, bench_fingerprint,
                   check_bench_file, diff_payloads, find_baseline,
                   format_diff_report, iter_bench_metrics,
                   record_bench_payload)

__all__ = [
    "COMPUTE_BENCH_SCHEMA_VERSION", "STAGES", "ComputeBenchResult",
    "DesignBench", "run_compute_bench", "format_compute_report",
    "write_compute_bench_json",
    "DEFAULT_TOLERANCE", "MetricDelta", "bench_fingerprint",
    "check_bench_file", "diff_payloads", "find_baseline",
    "format_diff_report", "iter_bench_metrics", "record_bench_payload",
]
