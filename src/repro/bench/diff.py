"""Bench regression gating: compare fresh BENCH files to ledger history.

``repro bench diff`` loads the current ``BENCH_compute.json`` /
``BENCH_serving.json`` artefacts, finds the most recent *comparable*
run in the :class:`~repro.obs.runs.RunLedger` (same benchmark
fingerprint — designs, scale, backends, load parameters — and a
different ``run_id``), and compares every timing/throughput metric with
a relative tolerance:

* compute: per (design, backend, stage) wall time — lower is better;
* serving: throughput (higher is better), p50/p99 latency (lower).

``--check`` exits non-zero when any metric regresses past the
tolerance, which is how ``scripts/ci.sh`` gates the perf trajectory;
``--record`` appends the current payloads to the ledger so the next
run has a baseline (history starts accumulating from the first gated
run).  With no comparable history the check passes vacuously — a new
benchmark shape is a baseline, not a regression.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..obs.runs import config_fingerprint, default_ledger, new_run_id

__all__ = ["DEFAULT_TOLERANCE", "MetricDelta", "bench_fingerprint",
           "iter_bench_metrics", "diff_payloads", "find_baseline",
           "record_bench_payload", "check_bench_file",
           "format_diff_report"]

DEFAULT_TOLERANCE = 0.5


@dataclass
class MetricDelta:
    """One metric compared between a current and a baseline run."""

    metric: str
    baseline: float
    current: float
    ratio: float                 # current / baseline
    higher_is_better: bool
    regressed: bool

    @property
    def improved(self):
        if self.higher_is_better:
            return self.ratio > 1.0
        return self.ratio < 1.0


def bench_fingerprint(payload):
    """Comparability key of one bench payload (not its timings)."""
    params = payload.get("params") or {}
    kind = payload.get("benchmark")
    if kind == "compute":
        basis = {
            "benchmark": kind,
            "schema_version": payload.get("schema_version"),
            "designs": sorted(row.get("name", "?")
                              for row in payload.get("designs", [])),
            "backends": sorted(payload.get("backends", [])),
            "stages": sorted(payload.get("stages", [])),
            "scale": params.get("scale"),
            # v2 axes: runs at a different precision grid or thread
            # budget are different benchmarks, not regressions.
            "dtypes": sorted(payload.get("dtypes", [])),
            "threads": params.get("threads"),
        }
    elif kind == "serving":
        basis = {
            "benchmark": kind,
            "schema_version": payload.get("schema_version"),
            "designs": sorted(params.get("designs") or []),
            "clients": payload.get("clients"),
            "model": params.get("model"),
            "scale": params.get("scale"),
            "batch_window_ms": params.get("batch_window_ms"),
            "max_batch": params.get("max_batch"),
            # Pooled and single-process runs are different benchmarks;
            # so are cached and forced-forward runs.  Keep their
            # baselines separate in the ledger.
            "workers": params.get("workers", 0),
            "no_cache": params.get("no_cache", False),
        }
    else:
        basis = {"benchmark": kind,
                 "schema_version": payload.get("schema_version")}
    return config_fingerprint(**basis)


def iter_bench_metrics(payload):
    """Yield ``(metric_name, value, higher_is_better)`` for one payload."""
    kind = payload.get("benchmark")
    if kind == "compute":
        v2 = payload.get("schema_version", 1) >= 2
        for row in payload.get("designs", []):
            name = row.get("name", "?")
            for backend, inner in (row.get("times_ms") or {}).items():
                if v2:
                    # v2 nests a dtype level: backend -> dtype -> stage.
                    for dtype, stages in inner.items():
                        for stage, ms in stages.items():
                            yield (f"{name}/{backend}@{dtype}/{stage}_ms",
                                   float(ms), False)
                else:
                    for stage, ms in inner.items():
                        yield (f"{name}/{backend}/{stage}_ms",
                               float(ms), False)
    elif kind == "serving":
        for metric, higher in (("throughput_rps", True),
                               ("latency_p50_ms", False),
                               ("latency_p99_ms", False)):
            value = payload.get(metric)
            if value is not None:
                yield metric, float(value), higher


def diff_payloads(current, baseline, tolerance=DEFAULT_TOLERANCE):
    """Compare metrics present in both payloads; returns MetricDeltas.

    A metric regresses when it moves past ``tolerance`` (relative) in
    the bad direction: time/latency above ``baseline * (1 + tol)``,
    throughput below ``baseline * (1 - tol)``.
    """
    base_values = {name: (value, higher)
                   for name, value, higher in iter_bench_metrics(baseline)}
    deltas = []
    for name, value, higher in iter_bench_metrics(current):
        if name not in base_values:
            continue
        base, _ = base_values[name]
        ratio = value / base if base > 0 else float("inf")
        if higher:
            regressed = value < base * (1.0 - tolerance)
        else:
            regressed = value > base * (1.0 + tolerance)
        deltas.append(MetricDelta(metric=name, baseline=base,
                                  current=value, ratio=ratio,
                                  higher_is_better=higher,
                                  regressed=regressed))
    return deltas


def find_baseline(payload, ledger=None):
    """Latest comparable ledger run (payload dict), or None."""
    ledger = ledger or default_ledger()
    fp = bench_fingerprint(payload)
    run_id = payload.get("run_id")
    record = ledger.latest(
        kind="bench",
        where=lambda r: (r.get("fingerprint") == fp
                         and r.get("run_id") != run_id
                         and isinstance(r.get("payload"), dict)))
    return record["payload"] if record else None


def record_bench_payload(payload, ledger=None):
    """Append one bench payload to the ledger (idempotent per run_id)."""
    ledger = ledger or default_ledger()
    run_id = payload.get("run_id") or new_run_id(
        f"bench-{payload.get('benchmark', 'x')}")
    for record in ledger.read(kind="bench"):
        if record.get("run_id") == run_id:
            return record
    return ledger.append({
        "kind": f"bench_{payload.get('benchmark', 'unknown')}",
        "run_id": run_id,
        "fingerprint": bench_fingerprint(payload),
        "generated_at": payload.get("generated_at"),
        "payload": payload,
    })


def check_bench_file(path, ledger=None, tolerance=DEFAULT_TOLERANCE,
                     record=False):
    """Gate one BENCH file against ledger history.

    Returns ``(status, deltas)`` with status one of ``"missing"``
    (no such file), ``"no-baseline"`` (nothing comparable in the
    ledger), ``"ok"``, or ``"regression"``.  With ``record=True`` the
    current payload is appended to the ledger after the comparison.
    """
    ledger = ledger or default_ledger()
    if not os.path.exists(path):
        return "missing", []
    with open(path) as fh:
        payload = json.load(fh)
    baseline = find_baseline(payload, ledger)
    if baseline is None:
        status, deltas = "no-baseline", []
    else:
        deltas = diff_payloads(payload, baseline, tolerance=tolerance)
        status = "regression" if any(d.regressed for d in deltas) else "ok"
    if record:
        record_bench_payload(payload, ledger)
    return status, deltas


def format_diff_report(path, status, deltas, tolerance=DEFAULT_TOLERANCE):
    """Human-readable comparison table for one gated BENCH file."""
    lines = [f"bench diff {path}: {status} "
             f"(tolerance {tolerance * 100:.0f}%, "
             f"{len(deltas)} comparable metrics)"]
    if not deltas:
        return "\n".join(lines)
    lines.append(f"  {'metric':<38}{'baseline':>11}{'current':>11}"
                 f"{'ratio':>8}")
    worst = sorted(deltas, key=lambda d: (not d.regressed,
                                          -abs(d.ratio - 1.0)))
    for delta in worst[:12]:
        flag = "  << REGRESSION" if delta.regressed else ""
        lines.append(f"  {delta.metric:<38}{delta.baseline:>11.2f}"
                     f"{delta.current:>11.2f}{delta.ratio:>7.2f}x{flag}")
    hidden = len(deltas) - min(12, len(deltas))
    if hidden > 0:
        lines.append(f"  ... {hidden} more within tolerance")
    return "\n".join(lines)
