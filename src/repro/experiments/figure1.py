"""Experiment E6 — Figure 1: the K-layer GNN receptive field.

The paper's Figure 1 illustrates that a K-layer GCN can only aggregate
features from nodes within K hops.  We verify that *empirically* on a
real benchmark graph: the gradient of one node's output with respect to
the input features is non-zero exactly on the K-hop neighbourhood, and
the fraction of the graph covered saturates far below 100% for shallow
stacks (while the timer-inspired model's levelized pass always reaches
every ancestor).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from .. import nn
from ..models import GCNII, ModelConfig, normalized_adjacency
from .common import get_dataset

__all__ = ["receptive_field_mask", "hop_distances", "figure1_data"]


def hop_distances(graph, node):
    """Undirected hop distance from ``node`` to every other node."""
    n = graph.num_nodes
    rows = np.concatenate([graph.net_src, graph.cell_src])
    cols = np.concatenate([graph.net_dst, graph.cell_dst])
    adj = sp.coo_matrix((np.ones(len(rows)), (rows, cols)),
                        shape=(n, n)).tocsr()
    return csgraph.shortest_path(adj, method="BF", directed=False,
                                 unweighted=True, indices=node)


def receptive_field_mask(graph, node, num_layers, cfg=None):
    """Nodes whose input features influence ``node``'s K-layer output.

    Computed exactly, by backpropagating from the node's output and
    checking which input-feature rows receive gradient.
    """
    cfg = cfg or ModelConfig.fast()
    model = GCNII(num_layers, cfg)
    features = nn.Tensor(graph.node_features, requires_grad=True)
    p_matrix = normalized_adjacency(graph)
    h0 = model.input_proj(features).relu()
    h = h0
    for layer in model.weights:
        support = nn.spmm(p_matrix, h) * (1.0 - model.alpha) + \
            h0 * model.alpha
        h = (support * (1.0 - model.beta) + layer(support) * model.beta)
        # Keep activations strictly positive pre-relu influence by using
        # the raw pre-activation: relu could zero out gradient paths and
        # under-report the structural receptive field.
    out = model.head(h)
    out[node].sum().backward()
    grad = features.grad
    return np.abs(grad).sum(axis=1) > 1e-12


def figure1_data(design="usb_cdc_core", layer_counts=(1, 2, 4, 8),
                 node=None, scale=None):
    """Receptive-field coverage per layer count for one design."""
    records = get_dataset(scale)
    graph = records[design].graph
    if node is None:
        # An endpoint: the node whose slack prediction needs the widest view.
        node = int(np.nonzero(graph.is_endpoint)[0][0])
    dist = hop_distances(graph, node)
    rows = []
    for k in layer_counts:
        mask = receptive_field_mask(graph, node, k)
        in_k_hop = dist <= k
        rows.append({
            "layers": k,
            "receptive_nodes": int(mask.sum()),
            "k_hop_nodes": int(in_k_hop.sum()),
            "coverage": float(mask.sum()) / graph.num_nodes,
            "within_k_hops": bool(np.all(dist[mask] <= k)),
        })
    return {"design": design, "node": node,
            "num_nodes": graph.num_nodes, "rows": rows}
