"""EXPERIMENTS.md generator: paper-vs-measured for every table/figure.

``python -m repro.experiments.report`` (or ``repro-report`` via the
example script) regenerates the full experiment report from the cached
dataset and trained models, so the committed EXPERIMENTS.md is always
reproducible from code.
"""

from __future__ import annotations

import numpy as np

from .figure1 import figure1_data
from .figure4 import figure4_data
from .table1 import format_table1, table1_rows
from .table4 import format_table4, table4_rows
from .table5 import format_table5, table5_accuracy_rows, table5_runtime_rows

__all__ = ["generate_experiments_markdown", "PAPER_AVERAGES"]

# Key averages reported by the paper, used for side-by-side comparison.
PAPER_AVERAGES = {
    "table4": {"rf_train": 0.9944, "rf_test": 0.9418,
               "mlp_train": 0.9550, "mlp_test": 0.9357,
               "gnn_train": 0.9870, "gnn_test": 0.9552},
    "table5": {"gcnii4_train": 0.5710, "gcnii4_test": -0.8446,
               "gcnii8_train": 0.3586, "gcnii8_test": -0.7766,
               "gcnii16_train": 0.6810, "gcnii16_test": -1.5101,
               "full_train": 0.9493, "full_test": 0.8957,
               "cell_train": 0.8215, "cell_test": 0.8150,
               "net_train": 0.9374, "net_test": 0.8513,
               "speedup_train": 2361, "speedup_test": 2664},
}


def _avg(rows, split, key):
    row = next(r for r in rows if r["benchmark"] == f"Avg. {split}")
    return row[key]


def generate_experiments_markdown(scale=None):
    """Render the full EXPERIMENTS.md body from live experiment data."""
    t1 = table1_rows(scale)
    t4 = table4_rows(scale)
    t5 = table5_accuracy_rows(scale)
    t5r = table5_runtime_rows(scale)
    f1 = figure1_data(scale=scale)
    f4 = figure4_data(scale=scale)
    paper4 = PAPER_AVERAGES["table4"]
    paper5 = PAPER_AVERAGES["table5"]

    sections = []
    sections.append("""# EXPERIMENTS — paper vs. measured

All numbers below are *measured by this repository* on its synthetic
substrate (see DESIGN.md for the substitutions); the paper's numbers
come from real OpenROAD/SkyWater runs on real RTL, so absolute values
are not expected to match — the reproduction targets are the
*qualitative claims*: who wins, the sign and rough size of gaps, and
where behaviour changes.  Regenerate everything with::

    pytest benchmarks/ --benchmark-only            # asserts the claims
    python -m repro.experiments.report > EXPERIMENTS.md   # this file
""")

    sections.append("## E1 — Table 1: benchmark statistics\n")
    sections.append(
        "The 21 synthetic benchmarks are ~1/50-scale stand-ins with the "
        "paper's names, split (14 train / 7 test) and per-family "
        "structure; per-design edge/node and endpoint ratios are within "
        "a factor-2 band of the paper's (asserted in "
        "benchmarks/test_table1_benchmarks.py).\n")
    sections.append("```\n" + format_table1(t1) + "\n```\n")

    sections.append("## E2 — Table 4: net delay prediction (R2)\n")
    sections.append(f"""| average | paper RF | ours RF | paper MLP | ours MLP | paper GNN | ours GNN |
|---|---|---|---|---|---|---|
| train | {paper4['rf_train']:.4f} | {_avg(t4, 'Train', 'rf_r2'):.4f} | {paper4['mlp_train']:.4f} | {_avg(t4, 'Train', 'mlp_r2'):.4f} | {paper4['gnn_train']:.4f} | {_avg(t4, 'Train', 'gnn_r2'):.4f} |
| test | {paper4['rf_test']:.4f} | {_avg(t4, 'Test', 'rf_r2'):.4f} | {paper4['mlp_test']:.4f} | {_avg(t4, 'Test', 'mlp_r2'):.4f} | {paper4['gnn_test']:.4f} | {_avg(t4, 'Test', 'gnn_r2'):.4f} |

Shapes reproduced: RF > MLP on both splits (paper finding 1); the GNN
beats the MLP on unseen designs and has the smallest train-test
generalization gap of the three (paper finding 2 — "better
generalization to test circuits").  In the paper the GNN also edges out
the RF's absolute test R2; on our 1/50-scale substrate the RF stays
slightly ahead in absolute terms (far fewer nets to learn from) while
the GNN's generalization advantage is preserved — recorded honestly
here and asserted as such in benchmarks/test_table4_net_delay.py.
""")
    sections.append("```\n" + format_table4(t4) + "\n```\n")

    sections.append("## E3/E4 — Table 5: arrival/slack R2 and runtime\n")
    sections.append(f"""| average | paper | measured |
|---|---|---|
| GCNII-4 train / test | {paper5['gcnii4_train']:+.3f} / {paper5['gcnii4_test']:+.3f} | {_avg(t5, 'Train', 'gcnii_4'):+.3f} / {_avg(t5, 'Test', 'gcnii_4'):+.3f} |
| GCNII-8 train / test | {paper5['gcnii8_train']:+.3f} / {paper5['gcnii8_test']:+.3f} | {_avg(t5, 'Train', 'gcnii_8'):+.3f} / {_avg(t5, 'Test', 'gcnii_8'):+.3f} |
| GCNII-16 train / test | {paper5['gcnii16_train']:+.3f} / {paper5['gcnii16_test']:+.3f} | {_avg(t5, 'Train', 'gcnii_16'):+.3f} / {_avg(t5, 'Test', 'gcnii_16'):+.3f} |
| Ours Full train / test | {paper5['full_train']:+.3f} / {paper5['full_test']:+.3f} | {_avg(t5, 'Train', 'ours_full'):+.3f} / {_avg(t5, 'Test', 'ours_full'):+.3f} |
| Ours w/ Cell train / test | {paper5['cell_train']:+.3f} / {paper5['cell_test']:+.3f} | {_avg(t5, 'Train', 'ours_cell'):+.3f} / {_avg(t5, 'Test', 'ours_cell'):+.3f} |
| Ours w/ Net train / test | {paper5['net_train']:+.3f} / {paper5['net_test']:+.3f} | {_avg(t5, 'Train', 'ours_net'):+.3f} / {_avg(t5, 'Test', 'ours_net'):+.3f} |
| speed-up train / test | {paper5['speedup_train']}x / {paper5['speedup_test']}x | {_avg(t5r, 'Train', 'speedup'):.0f}x / {_avg(t5r, 'Test', 'speedup'):.0f}x |

Shapes reproduced (asserted in benchmarks/test_table5_arrival_slack.py):

* the timer-inspired model generalizes across designs; vanilla deep
  GCNII collapses on test designs (negative average R2) despite a
  reasonable training fit — the paper's headline finding;
* the Full auxiliary configuration is the best of the three on average
  (the paper additionally finds w/ Net > w/ Cell; on our substrate the
  single-auxiliary variants swap order — cell delay dominates stage
  delay here because the synthetic designs are at 1/50 scale, so the
  cell-delay auxiliary carries relatively more signal);
* GNN inference beats re-running the flow on every design, with the gap
  growing with design size.  Absolute speed-ups are ~10^1 rather than
  the paper's ~10^3 because our "flow" is itself a fast Python
  simulator rather than minutes of real routing.
""")
    sections.append("```\n" + format_table5(t5, t5r) + "\n```\n")

    sections.append("## E5 — Figure 4: slack correlation on usbf_device\n")
    sections.append(f"""| series | paper | measured |
|---|---|---|
| setup slack | "strong correlation" (scatter) | Pearson {f4['setup']['pearson']:+.3f}, R2 {f4['setup']['r2']:+.3f} over {len(f4['setup']['true'])} endpoints |
| hold slack | "strong correlation" (scatter) | Pearson {f4['hold']['pearson']:+.3f}, R2 {f4['hold']['r2']:+.3f} |

The correlation (ranking of endpoints by criticality) is strong in both
modes, as in the paper's figure.  usbf_device is the hardest test design
for us (a large control-style circuit whose size is out of the training
distribution at our scale), so the setup R2 trails the Pearson r —
the scatter has a design-level offset the correlation ignores.
Regenerate the scatter with ``python examples/slack_prediction.py``.
""")

    sections.append("## E6 — Figure 1: K-layer receptive field\n")
    rows = "\n".join(
        f"| {r['layers']} | {r['receptive_nodes']} | {r['coverage']:.1%} | "
        f"{'yes' if r['within_k_hops'] else 'NO'} |" for r in f1["rows"])
    sections.append(f"""Measured on {f1['design']} ({f1['num_nodes']} nodes), gradient support of a
K-layer GCNII output at endpoint node {f1['node']}:

| layers | nodes reached | coverage | within K hops |
|---|---|---|---|
{rows}

The gradient support never escapes the K-hop ball (the defining property
of the paper's Figure 1) and shallow stacks see only a small fraction of
the design — while the levelized model reaches every ancestor in one
pass.
""")

    sections.append("## E7 — logic depth vs. GNN depth (Sec. 3.1)\n")
    sections.append(
        "Topological level counts across the suite range far above the "
        "4 layers conventional EDA GNNs use (see "
        "benchmarks/test_logic_depth.py output); the paper reports ~300 "
        "levels on million-pin designs, our 1/50-scale suite still needs "
        "tens to >100 levels.\n")

    sections.append("""## E8 — timing-driven placement (the motivating application)

Beyond the paper's tables: the trained model is placed *inside* a
placement loop (benchmarks/test_timing_driven_placement.py).  Net
weights come either from ground-truth STA slack or from the GNN's
predicted per-pin slack (forward arrivals + a required-time backward
sweep over its own predicted net/cell delays — possible precisely
because of the paper's auxiliary tasks).  On a wire-dominated design
both guided flows improve WNS over wirelength-only placement, and the
GNN evaluator recovers a large fraction of the STA-guided gain at a
fraction of the evaluator cost.

## Ablations beyond the paper

benchmarks/test_ablations.py trains reduced-scale variants of the
design choices DESIGN.md calls out: sum+max vs. single reduction
channels, and the Kronecker LUT-interpolation module vs. a plain MLP on
flattened LUT features.  Results are recorded in the benchmark
``extra_info`` of each run.
""")
    return "\n".join(sections)


if __name__ == "__main__":
    print(generate_experiments_markdown())
