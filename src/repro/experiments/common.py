"""Shared experiment infrastructure: dataset + trained-model caches.

Training the models is the expensive part of regenerating the paper's
tables, so trained weights are cached on disk (keyed by model variant,
configuration and dataset scale).  ``REPRO_SCALE`` (default 1.0) shrinks
every design for quick test runs; ``REPRO_EPOCHS`` overrides the training
epoch count.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict

import numpy as np

from ..graphdata import load_dataset, default_cache_dir
from ..graphdata.dataset import DATASET_VERSION
from ..models import GCNII, ModelConfig, NetEmbedding, TimingGNN
from ..netlist import benchmark_names
from ..training import (TrainConfig, train_gcnii, train_net_embedding,
                        train_timing_gnn)

__all__ = [
    "experiment_scale", "experiment_epochs", "get_dataset",
    "train_test_graphs", "trained_timing_gnn", "trained_gcnii",
    "trained_net_embedding", "model_config", "train_config",
    "model_cache_path",
]

_DATASETS = {}
_MODELS = {}

# The memo dicts above are process-wide; a serving layer (or pytest-xdist
# style parallelism) can hit them from many threads at once.  A global
# lock guards dict membership; per-key locks serialize the expensive
# build/train of any one entry without serializing *different* entries.
_MEMO_LOCK = threading.Lock()
_KEY_LOCKS = {}


def _key_lock(key):
    with _MEMO_LOCK:
        lock = _KEY_LOCKS.get(key)
        if lock is None:
            lock = _KEY_LOCKS[key] = threading.Lock()
        return lock


def _memoized(memo, key, build):
    """Thread-safe double-checked memoization of ``build()`` under ``key``."""
    with _MEMO_LOCK:
        if key in memo:
            return memo[key]
    with _key_lock(key):
        with _MEMO_LOCK:
            if key in memo:
                return memo[key]
        value = build()
        with _MEMO_LOCK:
            memo[key] = value
        return value


def experiment_scale():
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def experiment_epochs(default=40):
    return int(os.environ.get("REPRO_EPOCHS", str(default)))


def model_config():
    return ModelConfig.benchmark()


def train_config(**overrides):
    base = dict(epochs=experiment_epochs(), lr=3e-3, lr_decay=0.97)
    base.update(overrides)
    return TrainConfig(**base)


def get_dataset(scale=None, workers=None):
    """The 21-design dataset at the experiment scale, memoized.

    Thread-safe, and keyed by the active cache directory as well as the
    scale so flipping ``REPRO_CACHE_DIR`` mid-process never returns a
    memo built from another cache.  The directory is resolved *once* and
    passed down explicitly, so the cache the memo key names is exactly
    the cache the build reads and writes — even if ``REPRO_CACHE_DIR``
    changes while the build is in flight.  ``workers`` shards the design
    flows across processes (default ``REPRO_WORKERS``).
    """
    scale = experiment_scale() if scale is None else scale
    cache_dir = default_cache_dir()
    key = (scale, cache_dir)
    return _memoized(_DATASETS, key,
                     lambda: load_dataset(scale=scale, cache_dir=cache_dir,
                                          workers=workers))


def train_test_graphs(scale=None):
    """(train graphs, test graphs) in the paper's benchmark order."""
    records = get_dataset(scale)
    train = [records[n].graph for n in benchmark_names("train")]
    test = [records[n].graph for n in benchmark_names("test")]
    return train, test


def _cache_key(kind, cfg, tcfg, scale, extra=""):
    payload = json.dumps({"kind": kind, "cfg": asdict(cfg),
                          "tcfg": asdict(tcfg), "scale": scale,
                          "extra": extra, "data_version": DATASET_VERSION},
                         sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _load_state(path, model):
    data = np.load(path)
    model.load_state_dict({k: data[k] for k in data.files})
    return model


def _save_state(path, model):
    np.savez_compressed(path, **model.state_dict())


def model_cache_path(kind, cfg, tcfg, scale, extra="", cache_dir=None):
    """On-disk ``.npz`` path for one trained model's state.

    Lives under :func:`default_cache_dir` (or an explicitly resolved
    ``cache_dir``), so it honors ``REPRO_CACHE_DIR`` exactly like the
    dataset cache.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    return os.path.join(cache_dir,
                        f"model_{kind}_{_cache_key(kind, cfg, tcfg, scale, extra)}.npz")


def _feature_profile(path, graphs):
    """Load-or-capture the train-time feature reference for drift checks.

    Lives in a ``.profile.json`` sidecar next to the checkpoint, so a
    warm reload audits against the same reference the training run saw.
    The profile is a pure function of the (deterministic) training
    graphs, so recapturing it for a pre-existing checkpoint is exact.
    """
    from ..obs.quality import FeatureProfile
    profile_path = path[:-len(".npz")] + ".profile.json"
    if os.path.exists(profile_path):
        try:
            return FeatureProfile.load(profile_path)
        except (OSError, ValueError, KeyError):
            pass   # corrupt sidecar: recapture below
    profile = FeatureProfile.from_graphs(graphs)
    try:
        profile.save(profile_path)
    except OSError:
        pass   # read-only cache: serve the in-memory profile anyway
    return profile


def _get_or_train(kind, builder, trainer, cfg, tcfg, scale, extra="",
                  profile_graphs=None):
    # Resolve the cache directory exactly once: the memo key and the
    # checkpoint path below must name the same directory even if
    # REPRO_CACHE_DIR flips mid-process between the two reads.
    cache_dir = default_cache_dir()
    key = (kind, _cache_key(kind, cfg, tcfg, scale, extra), cache_dir)

    def build():
        path = model_cache_path(kind, cfg, tcfg, scale, extra,
                                cache_dir=cache_dir)
        model = builder()
        if os.path.exists(path):
            _load_state(path, model)
        else:
            model, _history = trainer()
            _save_state(path, model)
        model.eval()
        if profile_graphs is not None:
            model.feature_profile = _feature_profile(path, profile_graphs)
        return model

    return _memoized(_MODELS, key, build)


def trained_timing_gnn(variant="full", scale=None, epochs=None):
    """The timer-inspired GNN trained on the 14 train designs.

    ``variant`` selects the Table 5 ablation: "full" (both auxiliary
    losses), "cell" (cell-delay aux only), "net" (net-delay aux only),
    or "none" (main loss only).
    """
    scale = experiment_scale() if scale is None else scale
    aux = {"full": (True, True), "cell": (False, True),
           "net": (True, False), "none": (False, False)}[variant]
    cfg = model_config()
    tcfg = train_config(use_net_aux=aux[0], use_cell_aux=aux[1])
    if epochs is not None:
        tcfg = train_config(epochs=epochs, use_net_aux=aux[0],
                            use_cell_aux=aux[1])
    train, _test = train_test_graphs(scale)
    return _get_or_train(
        f"timing_{variant}",
        builder=lambda: TimingGNN(cfg),
        trainer=lambda: train_timing_gnn(train, cfg, tcfg),
        cfg=cfg, tcfg=tcfg, scale=scale, profile_graphs=train)


def trained_gcnii(num_layers, scale=None, epochs=None):
    """A deep GCNII baseline (4/8/16 layers in the paper's Table 5)."""
    scale = experiment_scale() if scale is None else scale
    cfg = model_config()
    tcfg = train_config() if epochs is None else train_config(epochs=epochs)
    train, _test = train_test_graphs(scale)
    return _get_or_train(
        f"gcnii_{num_layers}",
        builder=lambda: GCNII(num_layers, cfg),
        trainer=lambda: train_gcnii(train, num_layers, cfg, tcfg),
        cfg=cfg, tcfg=tcfg, scale=scale, extra=str(num_layers))


def trained_net_embedding(scale=None, epochs=None):
    """The standalone net-delay model (the paper's Table 4 GNN column).

    Trains 3x longer than the full model by default: the net embedding
    alone is ~10x cheaper per epoch and benefits from the extra
    optimization (test R2 0.64 -> 0.74 on the default suite).
    """
    scale = experiment_scale() if scale is None else scale
    cfg = model_config()
    epochs = 3 * experiment_epochs() if epochs is None else epochs
    tcfg = train_config(epochs=epochs, lr_decay=0.98)
    train, _test = train_test_graphs(scale)
    return _get_or_train(
        "netemb",
        builder=lambda: NetEmbedding(cfg),
        trainer=lambda: train_net_embedding(train, cfg, tcfg),
        cfg=cfg, tcfg=tcfg, scale=scale, profile_graphs=train)
