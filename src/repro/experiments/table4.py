"""Experiment E2 — Table 4: net delay prediction R2.

Compares the statistics-based baselines of Barboza et al. [5] (random
forest and MLP on engineered net features) against the paper's net
embedding GNN, per benchmark, with train/test averages.  The expected
shape (paper): RF > MLP on training designs; the GNN generalizes best on
test designs.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graphdata import barboza_features
from ..ml import r2_score
from ..models import NetDelayMLP, NetDelayRandomForest
from ..netlist import benchmark_names
from .common import get_dataset, trained_net_embedding

__all__ = ["table4_rows", "format_table4", "fit_baselines"]


def fit_baselines(train_graphs, rf_estimators=25, mlp_epochs=120, seed=0):
    """Fit the RF and MLP baselines on the training designs."""
    rf = NetDelayRandomForest(n_estimators=rf_estimators, seed=seed)
    rf.fit(train_graphs)
    mlp = NetDelayMLP(epochs=mlp_epochs, seed=seed)
    mlp.fit(train_graphs)
    return rf, mlp


def _gnn_net_delay_r2(model, graph):
    with nn.no_grad():
        _emb, pred = model(graph)
    mask = graph.is_net_sink
    return r2_score(graph.net_delay[mask], pred.data[mask])


def table4_rows(scale=None, rf_estimators=25, mlp_epochs=120):
    """Per-benchmark net-delay R2 for RF / MLP / our GNN."""
    records = get_dataset(scale)
    train_graphs = [records[n].graph for n in benchmark_names("train")]
    rf, mlp = fit_baselines(train_graphs, rf_estimators=rf_estimators,
                            mlp_epochs=mlp_epochs)
    gnn = trained_net_embedding(scale=scale)
    rows = []
    for split in ("train", "test"):
        for name in benchmark_names(split):
            graph = records[name].graph
            _x, y = barboza_features(graph)
            rows.append({
                "benchmark": name,
                "split": split,
                "rf_r2": r2_score(y, rf.predict(graph)),
                "mlp_r2": r2_score(y, mlp.predict(graph)),
                "gnn_r2": _gnn_net_delay_r2(gnn, graph),
            })
    for split in ("train", "test"):
        members = [r for r in rows if r["split"] == split]
        rows.append({
            "benchmark": f"Avg. {split.capitalize()}",
            "split": split,
            "rf_r2": float(np.mean([r["rf_r2"] for r in members])),
            "mlp_r2": float(np.mean([r["mlp_r2"] for r in members])),
            "gnn_r2": float(np.mean([r["gnn_r2"] for r in members])),
        })
    return rows


def format_table4(rows=None, scale=None):
    rows = rows if rows is not None else table4_rows(scale)
    header = f"{'Benchmark':<16}{'Split':<7}{'RF':>9}{'MLP':>9}{'Our GNN':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row['benchmark']:<16}{row['split']:<7}"
                     f"{row['rf_r2']:>9.4f}{row['mlp_r2']:>9.4f}"
                     f"{row['gnn_r2']:>9.4f}")
    return "\n".join(lines)
