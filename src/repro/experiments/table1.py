"""Experiment E1 — Table 1: benchmark statistics.

Regenerates the benchmark-statistics table (nodes, net edges, cell
edges, endpoints, train/test split) for the synthetic suite, alongside
the paper's original numbers for comparison.
"""

from __future__ import annotations

from ..netlist import BENCHMARKS
from .common import get_dataset

__all__ = ["table1_rows", "format_table1"]


def table1_rows(scale=None):
    """One dict per benchmark, plus Total Train / Total Test rows."""
    records = get_dataset(scale)
    rows = []
    totals = {"train": dict(nodes=0, net_edges=0, cell_edges=0, endpoints=0),
              "test": dict(nodes=0, net_edges=0, cell_edges=0, endpoints=0)}
    for spec in BENCHMARKS:
        stats = records[spec.name].graph.stats()
        row = {
            "benchmark": spec.name,
            "split": spec.split,
            "nodes": stats["nodes"],
            "net_edges": stats["net_edges"],
            "cell_edges": stats["cell_edges"],
            "endpoints": stats["endpoints"],
            "paper_nodes": spec.paper_nodes,
            "paper_net_edges": spec.paper_net_edges,
            "paper_cell_edges": spec.paper_cell_edges,
            "paper_endpoints": spec.paper_endpoints,
        }
        rows.append(row)
        for key in totals[spec.split]:
            totals[spec.split][key] += row[key]
    for split in ("train", "test"):
        rows.append({"benchmark": f"Total {split.capitalize()}",
                     "split": split, **totals[split],
                     "paper_nodes": sum(b.paper_nodes for b in BENCHMARKS
                                        if b.split == split),
                     "paper_net_edges": sum(b.paper_net_edges
                                            for b in BENCHMARKS
                                            if b.split == split),
                     "paper_cell_edges": sum(b.paper_cell_edges
                                             for b in BENCHMARKS
                                             if b.split == split),
                     "paper_endpoints": sum(b.paper_endpoints
                                            for b in BENCHMARKS
                                            if b.split == split)})
    return rows


def format_table1(rows=None, scale=None):
    """Render Table 1 as text (ours | paper, per column)."""
    rows = rows if rows is not None else table1_rows(scale)
    header = (f"{'Benchmark':<16}{'Split':<7}{'#Nodes':>8}{'#Net':>8}"
              f"{'#Cell':>8}{'#EP':>6}   |"
              f"{'paper N':>9}{'paper Net':>10}{'paper Cell':>11}"
              f"{'paper EP':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<16}{row['split']:<7}{row['nodes']:>8}"
            f"{row['net_edges']:>8}{row['cell_edges']:>8}"
            f"{row['endpoints']:>6}   |{row['paper_nodes']:>9}"
            f"{row['paper_net_edges']:>10}{row['paper_cell_edges']:>11}"
            f"{row['paper_endpoints']:>9}")
    return "\n".join(lines)
