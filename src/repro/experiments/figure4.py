"""Experiment E5 — Figure 4: slack correlation scatter on usbf_device.

The paper visualises predicted vs. ground-truth endpoint slack (setup
and hold) for test design usbf_device and reports a strong correlation.
This module produces the scatter series plus R2/Pearson statistics; the
benchmark prints them and the example script renders an ASCII scatter.
"""

from __future__ import annotations

import numpy as np

from ..graphdata import TIME_SCALE
from ..ml import pearson_correlation, r2_score, spearman_correlation
from ..training import slack_from_arrival
from .common import get_dataset, trained_timing_gnn

__all__ = ["figure4_data", "ascii_scatter"]


def figure4_data(design="usbf_device", scale=None):
    """Slack scatter series for one test design.

    Returns a dict with ``setup`` and ``hold`` entries, each holding
    ``true``/``pred`` arrays in ps plus ``r2``, ``pearson`` and
    ``spearman`` (rank) correlations.
    """
    records = get_dataset(scale)
    graph = records[design].graph
    model = trained_timing_gnn("full", scale=scale)
    pred = model.predict(graph)
    slack_true = graph.slack() * TIME_SCALE
    slack_pred = slack_from_arrival(graph, pred.numpy_arrival()) * TIME_SCALE
    out = {"design": design}
    for mode, cols in (("hold", (0, 1)), ("setup", (2, 3))):
        t = np.nanmin(slack_true[:, cols], axis=1)
        p = np.nanmin(slack_pred[:, cols], axis=1)
        out[mode] = {
            "true": t, "pred": p,
            "r2": r2_score(t, p),
            "pearson": pearson_correlation(t, p),
            "spearman": spearman_correlation(t, p),
        }
    return out


def ascii_scatter(true, pred, width=58, height=20, title=""):
    """Render a predicted-vs-true scatter as ASCII art (for the example)."""
    true = np.asarray(true)
    pred = np.asarray(pred)
    finite = np.isfinite(true) & np.isfinite(pred)
    true, pred = true[finite], pred[finite]
    lo = min(true.min(), pred.min())
    hi = max(true.max(), pred.max())
    span = max(hi - lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    # Diagonal (perfect prediction) reference.
    for i in range(min(width, height * 3)):
        x = int(i / max(width - 1, 1) * (width - 1))
        y = height - 1 - int(i / max(width - 1, 1) * (height - 1))
        if 0 <= y < height:
            grid[y][x] = "."
    for t, p in zip(true, pred):
        x = int((t - lo) / span * (width - 1))
        y = height - 1 - int((p - lo) / span * (height - 1))
        grid[y][x] = "*"
    lines = [title] if title else []
    lines.append(f"pred ^  range [{lo:.0f}, {hi:.0f}] ps")
    lines.extend("".join(row) for row in grid)
    lines.append("-" * width + "> true")
    return "\n".join(lines)
