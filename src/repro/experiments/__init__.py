"""Experiments: one module per paper table/figure (see DESIGN.md index)."""

from .common import (experiment_scale, experiment_epochs, get_dataset,
                     train_test_graphs, trained_timing_gnn, trained_gcnii,
                     trained_net_embedding, model_config, train_config)
from .table1 import table1_rows, format_table1
from .table4 import table4_rows, format_table4, fit_baselines
from .table5 import (table5_accuracy_rows, table5_runtime_rows,
                     format_table5, GCNII_LAYERS)
from .figure1 import receptive_field_mask, hop_distances, figure1_data
from .figure4 import figure4_data, ascii_scatter

__all__ = [
    "experiment_scale", "experiment_epochs", "get_dataset",
    "train_test_graphs", "trained_timing_gnn", "trained_gcnii",
    "trained_net_embedding", "model_config", "train_config",
    "table1_rows", "format_table1",
    "table4_rows", "format_table4", "fit_baselines",
    "table5_accuracy_rows", "table5_runtime_rows", "format_table5",
    "GCNII_LAYERS",
    "receptive_field_mask", "hop_distances", "figure1_data",
    "figure4_data", "ascii_scatter",
]
