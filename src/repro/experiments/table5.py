"""Experiment E3/E4 — Table 5: arrival/slack prediction R2 and runtime.

Left half: per-benchmark arrival-time R2 for vanilla deep GCNII with
4/8/16 layers vs. the timer-inspired GNN (Full and the two auxiliary-
loss ablations, "w/ Cell" and "w/ Net").  Expected shape from the paper:
GCNII fits training designs moderately but *fails on test designs*
(small or negative R2), while the timer-inspired model keeps high R2 on
both; the Full variant beats both single-auxiliary ablations on average,
and "w/ Net" beats "w/ Cell".

Right half: runtime — the flow's routing + STA wall time per design
(our substrate's equivalent of the OpenROAD flow columns) vs. trained-
model inference time, and the speed-up ratio.
"""

from __future__ import annotations

import time

import numpy as np

from ..models import normalized_adjacency
from ..netlist import benchmark_names
from ..training import evaluate_gcnii_output, evaluate_timing_gnn
from .common import get_dataset, trained_gcnii, trained_timing_gnn

__all__ = ["table5_accuracy_rows", "table5_runtime_rows",
           "format_table5", "GCNII_LAYERS"]

GCNII_LAYERS = (4, 8, 16)


def table5_accuracy_rows(scale=None, layers=GCNII_LAYERS):
    """Arrival-time/slack R2 per design for all Table 5 model columns."""
    records = get_dataset(scale)
    gcnii_models = {k: trained_gcnii(k, scale=scale) for k in layers}
    ours = {variant: trained_timing_gnn(variant, scale=scale)
            for variant in ("full", "cell", "net")}
    rows = []
    for split in ("train", "test"):
        for name in benchmark_names(split):
            graph = records[name].graph
            row = {"benchmark": name, "split": split, "openroad": 1.0}
            p_matrix = normalized_adjacency(graph)
            for k, model in gcnii_models.items():
                atslew = model.predict(graph, p_matrix=p_matrix).data
                row[f"gcnii_{k}"] = evaluate_gcnii_output(
                    graph, atslew)["at_slack_r2"]
            for variant, model in ours.items():
                metrics = evaluate_timing_gnn(model, graph)
                row[f"ours_{variant}"] = metrics["at_slack_r2"]
                if variant == "full":
                    row["ours_full_slack"] = metrics["slack_r2"]
            rows.append(row)
    for split in ("train", "test"):
        members = [r for r in rows if r["split"] == split]
        avg = {"benchmark": f"Avg. {split.capitalize()}", "split": split,
               "openroad": 1.0}
        for key in members[0]:
            if key in ("benchmark", "split", "openroad"):
                continue
            avg[key] = float(np.mean([r[key] for r in members]))
        rows.append(avg)
    return rows


def table5_runtime_rows(scale=None, repeats=3):
    """Flow runtime vs. model inference runtime and speed-up per design."""
    records = get_dataset(scale)
    model = trained_timing_gnn("full", scale=scale)
    rows = []
    for split in ("train", "test"):
        for name in benchmark_names(split):
            record = records[name]
            graph = record.graph
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                model.predict(graph)
                best = min(best, time.perf_counter() - t0)
            flow = record.flow_time
            rows.append({
                "benchmark": name,
                "split": split,
                "routing_s": record.routing_time,
                "sta_s": record.sta_time,
                "flow_s": flow,
                "gnn_s": best,
                "speedup": flow / best if best > 0 else float("inf"),
            })
    for split in ("train", "test"):
        members = [r for r in rows if r["split"] == split]
        rows.append({
            "benchmark": f"Avg. {split.capitalize()}", "split": split,
            "routing_s": float(np.mean([r["routing_s"] for r in members])),
            "sta_s": float(np.mean([r["sta_s"] for r in members])),
            "flow_s": float(np.mean([r["flow_s"] for r in members])),
            "gnn_s": float(np.mean([r["gnn_s"] for r in members])),
            "speedup": float(np.mean([r["speedup"] for r in members])),
        })
    return rows


def format_table5(accuracy_rows=None, runtime_rows=None, scale=None):
    accuracy_rows = (accuracy_rows if accuracy_rows is not None
                     else table5_accuracy_rows(scale))
    runtime_rows = (runtime_rows if runtime_rows is not None
                    else table5_runtime_rows(scale))
    runtime = {r["benchmark"]: r for r in runtime_rows}
    header = (f"{'Benchmark':<16}{'Split':<7}"
              f"{'GCNII-4':>9}{'GCNII-8':>9}{'GCNII-16':>10}"
              f"{'Full':>8}{'w/Cell':>8}{'w/Net':>8}"
              f"{'Flow(s)':>9}{'GNN(s)':>8}{'Speedup':>9}")
    lines = [header, "-" * len(header)]
    for row in accuracy_rows:
        rt = runtime.get(row["benchmark"], {})
        flow = rt.get("flow_s", float("nan"))
        gnn = rt.get("gnn_s", float("nan"))
        speed = rt.get("speedup", float("nan"))
        lines.append(
            f"{row['benchmark']:<16}{row['split']:<7}"
            f"{row['gcnii_4']:>9.4f}{row['gcnii_8']:>9.4f}"
            f"{row['gcnii_16']:>10.4f}"
            f"{row['ours_full']:>8.4f}{row['ours_cell']:>8.4f}"
            f"{row['ours_net']:>8.4f}"
            f"{flow:>9.3f}{gnn:>8.3f}{speed:>8.0f}x")
    return "\n".join(lines)
