"""Heterogeneous timing-graph dataset container.

One :class:`HeteroGraph` holds everything the models consume for one
design, as flat numpy arrays:

* pin (node) features and tasks of the paper's Table 2;
* net-edge and cell-edge features and tasks of Table 3;
* levelized propagation structure for the timer-inspired model.

All features and labels are stored *normalized* (see the scale constants)
so models train well; R2 metrics are scale-invariant so evaluation is
unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HeteroGraph", "LevelBlock", "LevelSchedule", "LevelCompute",
           "TIME_SCALE", "CAP_SCALE", "DIST_SCALE",
           "NODE_FEATURE_DIM", "NET_EDGE_FEATURE_DIM", "CELL_EDGE_FEATURE_DIM"]

TIME_SCALE = 100.0    # ps
CAP_SCALE = 10.0      # fF
DIST_SCALE = 200.0    # um

NODE_FEATURE_DIM = 10        # is_pio(1) + is_fanin(1) + boundary dist(4) + cap(4)
NET_EDGE_FEATURE_DIM = 2     # dx, dy
CELL_EDGE_FEATURE_DIM = 8 + 8 * 14 + 8 * 49   # valid + indices + values = 512


@dataclass
class LevelBlock:
    """Incoming edges of one topological level, grouped by edge type.

    ``net_seg``/``cell_seg`` map each edge to the position of its
    destination node inside ``net_dst``/``cell_dst`` (for segment
    reductions over a level).
    """

    level: int
    net_eids: np.ndarray
    net_dst: np.ndarray
    net_seg: np.ndarray
    cell_eids: np.ndarray
    cell_dst: np.ndarray
    cell_seg: np.ndarray

    @property
    def dst_nodes(self):
        return np.concatenate([self.net_dst, self.cell_dst])


class LevelCompute:
    """Cached index structures for one :class:`LevelBlock`.

    Full-batch training re-runs the propagation model over the same
    graphs every epoch; everything here is a pure function of the graph
    structure, so it is computed once per graph and reused by every
    forward pass (both kernel backends — the cached arrays are
    bit-identical to the per-forward recomputations they replace):

    * per-level gathers of the edge-endpoint index vectors and edge
      features (``graph.net_src[eids]`` and friends);
    * the LUT-interpolation reshapes — the ``np.repeat(np.arange(e), 8)``
      query expansion and the ``(e*8, 7/7/49)`` index/value matrices;
    * :class:`~repro.nn.kernels.SegmentSchedule` sorted-CSR layouts for
      every segment reduction and duplicate-index gradient scatter of
      the level.
    """

    __slots__ = (
        "net_eids", "net_src", "net_dst", "net_features",
        "net_src_sched", "net_dst_sched",
        "cell_eids", "cell_src", "cell_dst_edges", "cell_dst", "cell_seg",
        "cell_valid", "cell_indices", "cell_values",
        "cell_src_sched", "cell_dst_sched", "cell_seg_sched",
        "lut_rep", "lut_rep_sched", "lut_idx_x", "lut_idx_y", "lut_values",
    )

    def __init__(self, graph, block, dtype=np.float64):
        from ..nn.kernels import SegmentSchedule

        eids = block.net_eids
        self.net_eids = eids
        self.net_src = graph.net_src[eids]
        self.net_dst = graph.net_dst[eids]
        self.net_features = np.ascontiguousarray(
            graph.net_features[eids], dtype=dtype)
        self.net_src_sched = SegmentSchedule(self.net_src)
        self.net_dst_sched = SegmentSchedule(self.net_dst)

        ceids = block.cell_eids
        e = len(ceids)
        self.cell_eids = ceids
        self.cell_src = graph.cell_src[ceids]
        self.cell_dst_edges = graph.cell_dst[ceids]
        self.cell_dst = block.cell_dst
        self.cell_seg = block.cell_seg
        self.cell_src_sched = SegmentSchedule(self.cell_src)
        self.cell_dst_sched = SegmentSchedule(self.cell_dst_edges)
        self.cell_seg_sched = SegmentSchedule(block.cell_seg)
        self.cell_valid = np.asarray(graph.cell_valid[ceids],
                                     dtype=dtype)
        self.cell_indices = np.asarray(graph.cell_indices[ceids],
                                       dtype=dtype)
        self.cell_values = np.asarray(graph.cell_values[ceids],
                                      dtype=dtype)
        self.lut_rep = np.repeat(np.arange(e), 8)
        self.lut_rep_sched = SegmentSchedule(self.lut_rep)
        idx = self.cell_indices.reshape(e * 8, 14)
        self.lut_idx_x = np.ascontiguousarray(idx[:, :7])
        self.lut_idx_y = np.ascontiguousarray(idx[:, 7:])
        self.lut_values = self.cell_values.reshape(e * 8, 49)


class LevelSchedule:
    """Per-graph cache of propagation/embedding index structures.

    Built lazily by :meth:`HeteroGraph.compute_schedule` and cached on
    the graph, so full-batch training stops recomputing identical index
    structures every epoch x design.  Holds the graph-wide source list
    and net-graph reduction schedules (used by the net embedding's
    sink->driver reduction every conv layer) plus one
    :class:`LevelCompute` per topological level.

    Schedules are built per compute dtype (the cached feature arrays are
    cast once, here, instead of per forward pass) and carry the
    per-stage :class:`~repro.nn.arena.TapeArena` buffer-reuse plans —
    cached next to the CSR schedules so a graph-version bump
    (:meth:`HeteroGraph.build_levels`) invalidates the arenas together
    with the index structures, keeping the delta path correct.
    """

    __slots__ = ("num_nodes", "num_levels", "sources",
                 "net_src_sched", "net_dst_sched", "levels",
                 "dtype", "_arenas")

    def __init__(self, graph, dtype=np.float64):
        from ..nn.kernels import SegmentSchedule

        self.dtype = np.dtype(dtype)
        self.num_nodes = graph.num_nodes
        self.num_levels = len(graph.levels)
        self.sources = np.nonzero(graph.is_source)[0]
        self.net_src_sched = SegmentSchedule(graph.net_src)
        self.net_dst_sched = SegmentSchedule(graph.net_dst)
        self.levels = [LevelCompute(graph, block, dtype=self.dtype)
                       for block in graph.levels]
        self._arenas = {}

    def arena(self, stage):
        """The lazily created :class:`~repro.nn.arena.TapeArena` for one
        execution stage (e.g. ``"train"`` / ``"infer"``) of this
        schedule.  Dropped with the schedule on rebuild."""
        from ..nn.arena import TapeArena

        plan = self._arenas.get(stage)
        if plan is None:
            plan = self._arenas[stage] = TapeArena(
                tag=f"{stage}/{self.dtype.name}")
        return plan


@dataclass
class HeteroGraph:
    """The dataset view of one placed-and-timed design."""

    name: str
    split: str
    clock_period: float                    # ps (unnormalized)

    # Nodes.
    node_features: np.ndarray              # (N, 10)
    level: np.ndarray                      # (N,)
    is_source: np.ndarray                  # (N,) bool
    is_endpoint: np.ndarray                # (N,) bool
    is_net_sink: np.ndarray                # (N,) bool (fan-in nodes, Eq. 6)

    # Net edges (driver -> sink).
    net_src: np.ndarray                    # (E_net,)
    net_dst: np.ndarray                    # (E_net,)
    net_features: np.ndarray               # (E_net, 2)

    # Cell edges (input pin -> output pin).
    cell_src: np.ndarray                   # (E_cell,)
    cell_dst: np.ndarray                   # (E_cell,)
    cell_valid: np.ndarray                 # (E_cell, 8)
    cell_indices: np.ndarray               # (E_cell, 112)
    cell_values: np.ndarray                # (E_cell, 392)

    # Tasks (normalized by TIME_SCALE).
    net_delay: np.ndarray                  # (N, 4), at net-sink nodes
    arrival: np.ndarray                    # (N, 4)
    slew: np.ndarray                       # (N, 4)
    required: np.ndarray                   # (N, 4), NaN off endpoints
    cell_arc_delay: np.ndarray             # (E_cell, 4)

    levels: list = field(default_factory=list)   # list[LevelBlock]

    # Lazily built LevelSchedules keyed by dtype name (compute_schedule);
    # not part of the dataclass protocol so dataclasses.replace() resets
    # it.  None until first use, then {"float64": LevelSchedule, ...}.
    _schedule: object = field(default=None, init=False, repr=False,
                              compare=False)

    # -- shape -----------------------------------------------------------------
    @property
    def num_nodes(self):
        return len(self.node_features)

    @property
    def num_net_edges(self):
        return len(self.net_src)

    @property
    def num_cell_edges(self):
        return len(self.cell_src)

    @property
    def num_levels(self):
        return int(self.level.max()) + 1 if self.num_nodes else 0

    @property
    def num_endpoints(self):
        return int(self.is_endpoint.sum())

    def stats(self):
        """Structural statistics, Table-1 style."""
        return {"name": self.name, "nodes": self.num_nodes,
                "net_edges": self.num_net_edges,
                "cell_edges": self.num_cell_edges,
                "endpoints": self.num_endpoints}

    # -- labels ------------------------------------------------------------------
    def slack(self, arrival=None):
        """Endpoint slack (normalized) from arrivals + ground-truth RAT.

        ``arrival`` defaults to the ground truth; passing model-predicted
        arrivals reproduces the paper's slack evaluation (predicted AT
        combined with the known required times).
        Early columns (0, 1) are hold slack AT - RAT; late (2, 3) are
        setup slack RAT - AT.
        """
        if arrival is None:
            arrival = self.arrival
        out = np.full((self.num_nodes, 4), np.nan)
        eps = self.is_endpoint
        out[eps, 0:2] = arrival[eps, 0:2] - self.required[eps, 0:2]
        out[eps, 2:4] = self.required[eps, 2:4] - arrival[eps, 2:4]
        return out[eps]

    # -- levelized structure -------------------------------------------------------
    def build_levels(self):
        """Group incoming edges by destination level for the prop model."""
        self.levels = []
        for lvl in range(1, self.num_levels):
            net_mask = self.level[self.net_dst] == lvl
            cell_mask = self.level[self.cell_dst] == lvl
            net_eids = np.nonzero(net_mask)[0]
            cell_eids = np.nonzero(cell_mask)[0]
            net_dst, net_seg = np.unique(self.net_dst[net_eids],
                                         return_inverse=True)
            cell_dst, cell_seg = np.unique(self.cell_dst[cell_eids],
                                           return_inverse=True)
            self.levels.append(LevelBlock(
                level=lvl, net_eids=net_eids, net_dst=net_dst,
                net_seg=net_seg, cell_eids=cell_eids, cell_dst=cell_dst,
                cell_seg=cell_seg))
        self._schedule = None      # level structure changed; rebuild lazily
        return self.levels

    def compute_schedule(self, dtype=None):
        """The cached :class:`LevelSchedule` for this graph (lazy-built).

        One schedule is cached per compute dtype (``dtype=None`` means
        the active :func:`repro.nn.dtype.active_dtype`).  Derived purely
        from the graph structure; callers that mutate the structural
        arrays in place must call :meth:`build_levels` (which
        invalidates the cache) before the next forward pass.
        """
        if dtype is None:
            from ..nn.dtype import active_dtype
            dtype = active_dtype()
        dtype = np.dtype(dtype)
        if not self.levels and self.num_nodes:
            self.build_levels()
        if self._schedule is None:
            self._schedule = {}
        sched = self._schedule.get(dtype.name)
        if sched is None or sched.num_levels != len(self.levels):
            sched = LevelSchedule(self, dtype=dtype)
            self._schedule[dtype.name] = sched
        return sched

    # -- persistence --------------------------------------------------------------
    _ARRAY_FIELDS = [
        "node_features", "level", "is_source", "is_endpoint", "is_net_sink",
        "net_src", "net_dst", "net_features",
        "cell_src", "cell_dst", "cell_valid", "cell_indices", "cell_values",
        "net_delay", "arrival", "slew", "required", "cell_arc_delay",
    ]

    def save_npz(self, path):
        arrays = {name: getattr(self, name) for name in self._ARRAY_FIELDS}
        np.savez_compressed(path, _name=self.name, _split=self.split,
                            _clock_period=self.clock_period, **arrays)

    @classmethod
    def load_npz(cls, path):
        data = np.load(path, allow_pickle=False)
        kwargs = {name: data[name] for name in cls._ARRAY_FIELDS}
        graph = cls(name=str(data["_name"]), split=str(data["_split"]),
                    clock_period=float(data["_clock_period"]), **kwargs)
        graph.build_levels()
        return graph
