"""Dataset pipeline: benchmark name -> placed/routed/timed HeteroGraph.

Runs the full physical flow (generate, place, route, STA) per design,
records flow runtimes (used by the paper's Table 5 runtime columns), and
caches graphs on disk so experiments and benchmarks don't regenerate.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from ..liberty import make_sky130_like_library
from ..netlist import TRAIN_BENCHMARKS, TEST_BENCHMARKS, build_benchmark
from ..placement import place_design
from ..routing import route_design
from ..sta import build_timing_graph, run_sta
from .extract import extract_graph
from .hetero import HeteroGraph

__all__ = ["DesignRecord", "generate_design", "load_dataset",
           "default_cache_dir", "DATASET_VERSION"]

# Bump whenever generation/labeling semantics change, so stale caches
# are never silently reused.
DATASET_VERSION = 2


@dataclass
class DesignRecord:
    """One design's dataset graph plus flow runtimes (seconds)."""

    graph: HeteroGraph
    routing_time: float
    sta_time: float

    @property
    def flow_time(self):
        """The paper's "OpenROAD flow total": routing + STA."""
        return self.routing_time + self.sta_time


def default_cache_dir():
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = os.path.join(os.path.expanduser("~"), ".cache",
                            "repro-timing-gnn")
    os.makedirs(root, exist_ok=True)
    return root


def generate_design(name, split, library=None, scale=1.0, seed=0):
    """Run the full flow for one benchmark; returns a DesignRecord."""
    if library is None:
        library = make_sky130_like_library()
    design = build_benchmark(name, library, scale=scale)
    placement = place_design(design, seed=seed)
    t0 = time.perf_counter()
    routing = route_design(design, placement)
    routing_time = time.perf_counter() - t0
    graph = build_timing_graph(design)
    t0 = time.perf_counter()
    result = run_sta(design, placement, routing, graph=graph)
    sta_time = time.perf_counter() - t0
    hetero = extract_graph(graph, placement, result, split=split)
    return DesignRecord(graph=hetero, routing_time=routing_time,
                        sta_time=sta_time)


def load_dataset(scale=1.0, cache=True, cache_dir=None, benchmarks=None):
    """Build (or load from cache) the full 21-design dataset.

    Returns {name: DesignRecord}.  ``scale`` shrinks every design (used
    by the fast test configuration); caches are keyed by scale.
    """
    if benchmarks is None:
        benchmarks = TRAIN_BENCHMARKS + TEST_BENCHMARKS
    if cache_dir is None:
        cache_dir = default_cache_dir()
    records = {}
    library = make_sky130_like_library()
    for spec in benchmarks:
        tag = f"{spec.name}_v{DATASET_VERSION}_s{scale:g}"
        npz_path = os.path.join(cache_dir, tag + ".npz")
        meta_path = os.path.join(cache_dir, tag + ".json")
        if cache and os.path.exists(npz_path) and os.path.exists(meta_path):
            with open(meta_path) as fh:
                meta = json.load(fh)
            records[spec.name] = DesignRecord(
                graph=HeteroGraph.load_npz(npz_path),
                routing_time=meta["routing_time"],
                sta_time=meta["sta_time"])
            continue
        record = generate_design(spec.name, spec.split, library=library,
                                 scale=scale)
        if cache:
            record.graph.save_npz(npz_path)
            with open(meta_path, "w") as fh:
                json.dump({"routing_time": record.routing_time,
                           "sta_time": record.sta_time}, fh)
        records[spec.name] = record
    return records
