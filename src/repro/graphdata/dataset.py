"""Dataset pipeline: benchmark name -> placed/routed/timed HeteroGraph.

Runs the full physical flow (generate, place, route, STA) per design,
records flow runtimes (used by the paper's Table 5 runtime columns), and
caches the resulting records in a content-hash-keyed
:class:`~repro.parallel.ArtifactStore` so experiments and benchmarks
don't regenerate.

Independent designs are sharded across worker processes by
:class:`~repro.parallel.ParallelExecutor` (``workers=`` argument or the
``REPRO_WORKERS`` env var); a parallel build is bit-identical to a
serial one — every worker rebuilds the same deterministic library and
the flow itself is seed-deterministic across processes.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from ..liberty import make_sky130_like_library
from ..netlist import (TRAIN_BENCHMARKS, TEST_BENCHMARKS, build_benchmark,
                       write_verilog)
from ..obs import get_registry
from ..placement import place_design
from ..routing import route_design
from ..sta import build_timing_graph, run_sta
from .extract import extract_graph
from .hetero import HeteroGraph

__all__ = ["DesignRecord", "generate_design", "load_dataset",
           "default_cache_dir", "design_record_key", "DATASET_VERSION"]

# Bump whenever generation/labeling semantics change, so stale caches
# are never silently reused.  v3: process-stable pin offsets in the
# placer (crc32 instead of randomized hash()).
DATASET_VERSION = 3


@dataclass
class DesignRecord:
    """One design's dataset graph plus flow runtimes (seconds)."""

    graph: HeteroGraph
    routing_time: float
    sta_time: float

    @property
    def flow_time(self):
        """The paper's "OpenROAD flow total": routing + STA."""
        return self.routing_time + self.sta_time


def default_cache_dir():
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = os.path.join(os.path.expanduser("~"), ".cache",
                            "repro-timing-gnn")
    os.makedirs(root, exist_ok=True)
    return root


def _build_latency_histogram(design):
    return get_registry().histogram(
        "repro_design_build_ms",
        "Wall time to produce one design's dataset record "
        "(flow run or artifact-cache hit).", design=design)


# Each worker process (and the serial path) shares one deterministic
# library; keyed by nothing because make_sky130_like_library() is
# seed-fixed, so every process reconstructs identical cell data.
_PROCESS_LIBRARY = None


def _process_library():
    global _PROCESS_LIBRARY
    if _PROCESS_LIBRARY is None:
        _PROCESS_LIBRARY = make_sky130_like_library()
    return _PROCESS_LIBRARY


def design_record_key(design, split, scale, seed):
    """Flow fingerprint of one design's dataset record.

    Content-addressed: the exact netlist text (round-trip-exact Verilog
    writer) plus every parameter that shapes the downstream artifacts.
    Any netlist, seed, scale or pipeline-version change yields a new key.
    """
    from ..parallel import content_key
    verilog_sha = hashlib.sha256(write_verilog(design).encode()).hexdigest()
    return content_key(kind="design_record", design=design.name,
                       split=split, scale=scale, seed=seed,
                       verilog=verilog_sha,
                       dataset_version=DATASET_VERSION)


def _flow_record(design, split, seed):
    """place/route/STA/extract one built design into a DesignRecord."""
    placement = place_design(design, seed=seed)
    t0 = time.perf_counter()
    routing = route_design(design, placement)
    routing_time = time.perf_counter() - t0
    graph = build_timing_graph(design)
    t0 = time.perf_counter()
    result = run_sta(design, placement, routing, graph=graph)
    sta_time = time.perf_counter() - t0
    hetero = extract_graph(graph, placement, result, split=split)
    return DesignRecord(graph=hetero, routing_time=routing_time,
                        sta_time=sta_time)


def generate_design(name, split, library=None, scale=1.0, seed=0,
                    store=None):
    """Run the full flow for one benchmark; returns a DesignRecord.

    With ``store`` (an :class:`~repro.parallel.ArtifactStore`), the
    flow fingerprint is looked up first and the whole
    place/route/STA/extract pipeline is skipped on a hit; a miss runs
    the flow and writes the record back.
    """
    record, _hit = _generate_design_info(name, split, library=library,
                                         scale=scale, seed=seed,
                                         store=store)
    return record


def _generate_design_info(name, split, library=None, scale=1.0, seed=0,
                          store=None):
    """(DesignRecord, came-from-cache flag) for one benchmark."""
    if library is None:
        library = _process_library()
    design = build_benchmark(name, library, scale=scale)
    key = None
    if store is not None:
        key = design_record_key(design, split, scale, seed)
        record = store.get(key, kind="design_record",
                           version=DATASET_VERSION)
        if record is not None:
            return record, True
    record = _flow_record(design, split, seed)
    if store is not None:
        store.put(key, record, kind="design_record",
                  version=DATASET_VERSION,
                  meta={"design": name, "split": split, "scale": scale,
                        "seed": seed})
    return record, False


def _design_task(args):
    """One worker task: (name, split, scale, seed, store_root) -> record.

    Module-level (picklable) so :class:`ParallelExecutor` can ship it to
    worker processes; the serial path runs the very same function, which
    is what makes serial and parallel builds trivially comparable.  The
    hit flag travels back to the parent because worker-process metric
    registries die with the pool.
    """
    name, split, scale, seed, store_root = args
    store = None
    if store_root is not None:
        from ..parallel import ArtifactStore
        store = ArtifactStore(store_root)
    t0 = time.perf_counter()
    record, hit = _generate_design_info(name, split, scale=scale,
                                        seed=seed, store=store)
    return name, record, (time.perf_counter() - t0) * 1000.0, hit


def load_dataset(scale=1.0, cache=True, cache_dir=None, benchmarks=None,
                 workers=None, seed=0):
    """Build (or load from cache) the full 21-design dataset.

    Returns {name: DesignRecord}.  ``scale`` shrinks every design (used
    by the fast test configuration); cache keys cover scale, seed,
    netlist content and pipeline version.  ``workers`` shards designs
    across processes (default: ``REPRO_WORKERS``, i.e. serial unless
    asked); results are identical either way, parallel builds are just
    faster on multi-core hosts.
    """
    from ..parallel import ArtifactStore, ParallelExecutor
    if benchmarks is None:
        benchmarks = TRAIN_BENCHMARKS + TEST_BENCHMARKS
    else:
        # Accept plain design names alongside BenchmarkSpec objects.
        by_name = {spec.name: spec
                   for spec in TRAIN_BENCHMARKS + TEST_BENCHMARKS}
        resolved = []
        for spec in benchmarks:
            if isinstance(spec, str):
                if spec not in by_name:
                    raise KeyError(f"unknown benchmark design: {spec!r}")
                spec = by_name[spec]
            resolved.append(spec)
        benchmarks = resolved
    store_root = None
    if cache:
        store_root = os.path.join(cache_dir or default_cache_dir(),
                                  "artifacts")
    tasks = [(spec.name, spec.split, scale, seed, store_root)
             for spec in benchmarks]
    executor = ParallelExecutor(workers=workers)
    records = {}
    for name, record, build_ms, hit in executor.map(_design_task, tasks):
        _build_latency_histogram(name).observe(build_ms)
        # Parent-side counter: worker-process artifact counters are lost
        # with the pool, so dataset-level hit/built tallies live here.
        get_registry().counter(
            "repro_dataset_designs_total",
            "Dataset design records by origin (cache hit vs fresh build).",
            result="hit" if hit else "built").inc()
        records[name] = record
    return records
