"""Disjoint-union batching of :class:`HeteroGraph` instances.

The serving layer coalesces concurrent prediction requests into one
forward pass.  Because every model operation is either row-wise (MLPs,
gather/scatter) or a segment reduction keyed by destination node, a
block-diagonal union of several designs propagates *exactly* as the
designs would individually: nodes keep their per-design topological
level, so the levelized schedule interleaves all members of the batch
level by level, and no message ever crosses a design boundary.

``batch_graphs`` builds the union plus per-member slice records;
``split_rows`` recovers per-member views of any node/edge-aligned array
(e.g. a batched prediction's arrival matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hetero import HeteroGraph

__all__ = ["GraphSlice", "batch_graphs", "split_rows"]


@dataclass(frozen=True)
class GraphSlice:
    """Row ranges of one member design inside a batched union graph."""

    name: str
    index: int
    node_lo: int
    node_hi: int
    net_lo: int
    net_hi: int
    cell_lo: int
    cell_hi: int

    @property
    def num_nodes(self):
        return self.node_hi - self.node_lo


# Index-valued fields must be shifted by the member's node offset when
# concatenated; everything else concatenates as-is.
_NODE_INDEX_FIELDS = ("net_src", "net_dst", "cell_src", "cell_dst")


def batch_graphs(graphs):
    """Union ``graphs`` into one HeteroGraph.

    Returns ``(union, slices)`` where ``slices[i]`` locates member ``i``'s
    node/net-edge/cell-edge rows inside the union's arrays.  A
    single-element batch is returned as-is (no copy).
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("batch_graphs() needs at least one graph")
    if len(graphs) == 1:
        g = graphs[0]
        return g, [GraphSlice(g.name, 0, 0, g.num_nodes,
                              0, g.num_net_edges, 0, g.num_cell_edges)]

    slices = []
    node_off = net_off = cell_off = 0
    for i, g in enumerate(graphs):
        slices.append(GraphSlice(
            g.name, i, node_off, node_off + g.num_nodes,
            net_off, net_off + g.num_net_edges,
            cell_off, cell_off + g.num_cell_edges))
        node_off += g.num_nodes
        net_off += g.num_net_edges
        cell_off += g.num_cell_edges

    arrays = {}
    for field in HeteroGraph._ARRAY_FIELDS:
        parts = []
        for g, sl in zip(graphs, slices):
            part = getattr(g, field)
            if field in _NODE_INDEX_FIELDS:
                part = part + sl.node_lo
            parts.append(part)
        arrays[field] = np.concatenate(parts, axis=0)

    union = HeteroGraph(
        name="batch[" + "+".join(g.name for g in graphs) + "]",
        split="mixed",
        clock_period=max(g.clock_period for g in graphs),
        **arrays)
    union.build_levels()
    return union, slices


def split_rows(array, slices, kind="node"):
    """Split a union-aligned array back into per-member arrays.

    ``kind`` selects which row space ``array`` lives in: "node",
    "net" (net edges) or "cell" (cell edges).
    """
    bounds = {"node": lambda s: (s.node_lo, s.node_hi),
              "net": lambda s: (s.net_lo, s.net_hi),
              "cell": lambda s: (s.cell_lo, s.cell_hi)}[kind]
    out = []
    for sl in slices:
        lo, hi = bounds(sl)
        out.append(array[lo:hi])
    return out
