"""Hand-engineered net features for the Barboza et al. (DAC'19) baseline.

The paper's Table 4 compares its net-embedding GNN against a random
forest and an MLP trained on placement-derived statistical features per
net sink.  This module builds that feature matrix: per (net, sink) pair,
geometric and electrical statistics a feature engineer would extract
before routing.
"""

from __future__ import annotations

import numpy as np

from .hetero import CAP_SCALE, DIST_SCALE

__all__ = ["BARBOZA_FEATURE_NAMES", "barboza_features"]

BARBOZA_FEATURE_NAMES = [
    "dx", "dy", "manhattan", "bbox_w", "bbox_h", "hpwl",
    "fanout", "sink_cap_late", "total_sink_cap_late",
    "driver_to_bbox_center", "sink_rank_by_distance",
    "die_boundary_dist_min",
]


def barboza_features(hetero):
    """Feature matrix for every net edge (sink) of a design.

    Returns (X, y) where X is (E_net, 12) engineered features and y is
    the (E_net, 4) net-delay label, both aligned with the graph's net
    edges.  Everything derives from placement quantities already encoded
    in the HeteroGraph, so the baseline sees exactly the same raw
    information as the GNN.
    """
    n_edges = hetero.num_net_edges
    x = np.zeros((n_edges, len(BARBOZA_FEATURE_NAMES)))
    # Reconstruct per-pin positions from the boundary-distance features:
    # columns 2 and 4 of node_features are distance to left and bottom.
    px = hetero.node_features[:, 2] * DIST_SCALE
    py = hetero.node_features[:, 4] * DIST_SCALE
    cap_late = hetero.node_features[:, 8:10].mean(axis=1) * CAP_SCALE
    boundary_min = hetero.node_features[:, 2:6].min(axis=1) * DIST_SCALE

    # Group edges by driver to compute per-net statistics.
    order = np.argsort(hetero.net_src, kind="stable")
    src_sorted = hetero.net_src[order]
    boundaries = np.nonzero(np.diff(src_sorted))[0] + 1
    groups = np.split(order, boundaries)

    for group in groups:
        if len(group) == 0:
            continue
        driver = hetero.net_src[group[0]]
        sinks = hetero.net_dst[group]
        xs = np.concatenate([[px[driver]], px[sinks]])
        ys = np.concatenate([[py[driver]], py[sinks]])
        bbox_w = xs.max() - xs.min()
        bbox_h = ys.max() - ys.min()
        cx, cy = 0.5 * (xs.max() + xs.min()), 0.5 * (ys.max() + ys.min())
        total_cap = cap_late[sinks].sum()
        dx = px[sinks] - px[driver]
        dy = py[sinks] - py[driver]
        dist = np.abs(dx) + np.abs(dy)
        rank = np.argsort(np.argsort(dist))
        for j, edge in enumerate(group):
            x[edge] = [
                dx[j] / DIST_SCALE,
                dy[j] / DIST_SCALE,
                dist[j] / DIST_SCALE,
                bbox_w / DIST_SCALE,
                bbox_h / DIST_SCALE,
                (bbox_w + bbox_h) / DIST_SCALE,
                float(len(group)),
                cap_late[sinks[j]] / CAP_SCALE,
                total_cap / CAP_SCALE,
                (abs(px[driver] - cx) + abs(py[driver] - cy)) / DIST_SCALE,
                float(rank[j]),
                boundary_min[sinks[j]] / DIST_SCALE,
            ]
    y = hetero.net_delay[hetero.net_dst]
    return x, y
