"""In-place incremental patching of an extracted :class:`HeteroGraph`.

ECO loops (gate sizing, buffering, legalization nudges) edit a handful
of cells and re-query timing thousands of times.  Re-extracting the
whole dataset view per edit costs a full route + STA + feature pass;
this module instead keeps one *live* extraction in sync with a stream
of small edits:

* ``move_cell`` / ``resize_cell`` ride on
  :class:`~repro.sta.incremental.IncrementalTimer` (cone-limited STA at
  ``tolerance=0``, i.e. bit-identical to a full re-analysis) and then
  recompute only the touched feature rows — node boundary-distance /
  capacitance columns, net-edge distance rows, cell-edge LUT rows —
  writing both the flat ``HeteroGraph`` arrays and the cached
  per-level :class:`~repro.graphdata.hetero.LevelCompute` copies in
  place, so the cached ``LevelSchedule`` CSR layouts survive the edit.
* ``insert_buffer`` / ``remove_buffer`` change the netlist structure
  (node/edge counts change), so they fall back to a full rebuild of
  routing, timing graph, STA and extraction — exactly what a fresh
  flow would produce.

Every edit returns a :class:`DirtyDelta` naming the feature rows it
invalidated; the incremental model forward
(:mod:`repro.models.incremental`) uses those as its dirty frontier.
The differential harness in ``tests/test_delta.py`` pins the contract:
after any edit sequence, the patched arrays equal a from-scratch
re-extraction bit for bit (labels after :meth:`GraphPatcher.materialize`,
which refreshes the full backward required pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import get_tracer
from .extract import extract_graph
from .hetero import CAP_SCALE, DIST_SCALE, TIME_SCALE

__all__ = ["EditError", "DirtyDelta", "GraphPatcher", "parse_edits",
           "EDIT_OPS"]

EDIT_OPS = ("move_cell", "resize_cell", "insert_buffer", "remove_buffer")

_EMPTY = np.empty(0, dtype=np.int64)


class EditError(ValueError):
    """A malformed or inapplicable edit (maps to HTTP 400)."""


def _require(edit, op, *fields):
    for name in fields:
        if name not in edit:
            raise EditError(f"edit op {op!r} requires field {name!r}")


def parse_edits(raw):
    """Validate a JSON edit list; returns normalized edit dicts.

    Supported ops::

        {"op": "move_cell",   "cell": name, "x": um, "y": um}
        {"op": "resize_cell", "cell": name, "cell_type": lib_cell}
        {"op": "insert_buffer", "net": name, "sink": pin_name,
         "buffer_cell": lib_cell?, "name": buf_name?, "new_net": name?}
        {"op": "remove_buffer", "name": buf_name}
    """
    if not isinstance(raw, list):
        raise EditError("edits must be a list of edit objects")
    edits = []
    for pos, edit in enumerate(raw):
        if not isinstance(edit, dict):
            raise EditError(f"edit #{pos} is not an object")
        op = edit.get("op")
        if op not in EDIT_OPS:
            raise EditError(f"edit #{pos}: unknown op {op!r} "
                            f"(expected one of {', '.join(EDIT_OPS)})")
        if op == "move_cell":
            _require(edit, op, "cell", "x", "y")
            try:
                edit = {"op": op, "cell": str(edit["cell"]),
                        "x": float(edit["x"]), "y": float(edit["y"])}
            except (TypeError, ValueError) as exc:
                raise EditError(f"edit #{pos}: bad coordinates: {exc}")
        elif op == "resize_cell":
            _require(edit, op, "cell", "cell_type")
            edit = {"op": op, "cell": str(edit["cell"]),
                    "cell_type": str(edit["cell_type"])}
        elif op == "insert_buffer":
            _require(edit, op, "net", "sink")
            edit = {"op": op, "net": str(edit["net"]),
                    "sink": str(edit["sink"]),
                    "buffer_cell": str(edit.get("buffer_cell", "BUF_X2")),
                    "name": (str(edit["name"]) if edit.get("name")
                             else None),
                    "new_net": (str(edit["new_net"]) if edit.get("new_net")
                                else None)}
        else:   # remove_buffer
            _require(edit, op, "name")
            edit = {"op": op, "name": str(edit["name"])}
        edits.append(edit)
    return edits


@dataclass
class DirtyDelta:
    """Feature rows invalidated by one edit.

    ``structural`` means node/edge counts changed (buffer edits): every
    cached forward state for the graph must be rebuilt from scratch.
    """

    structural: bool = False
    nodes: np.ndarray = field(default_factory=lambda: _EMPTY)
    net_eids: np.ndarray = field(default_factory=lambda: _EMPTY)
    cell_eids: np.ndarray = field(default_factory=lambda: _EMPTY)


class GraphPatcher:
    """Keeps one design's :class:`HeteroGraph` live across ECO edits.

    Owns the full artefact chain (design, placement, routing, timing
    graph, STA result, extraction) of ONE analysis and mutates it in
    place; the serving layer holds one patcher per delta session, built
    from a deterministic rebuild of the cached base graph so the shared
    graph cache entry itself is never mutated.
    """

    def __init__(self, design, placement, routing, graph, result, hetero):
        from ..sta import IncrementalTimer

        self.design = design
        self.placement = placement
        self.routing = routing
        self.graph = graph
        self.result = result
        self.hetero = hetero
        self.clock_period = result.clock_period
        self.version = 0
        # LIFO of (buffer cell, split net, detached sink, new net):
        # the structural revert relies on append-only design arrays.
        self._buffer_stack = []
        self._n_buffers = 0
        self._timer_cls = IncrementalTimer
        self._bind()

    # -- index structures --------------------------------------------------
    def _bind(self):
        """(Re)build lookup tables after construction or a rebuild."""
        if not self.hetero.levels and self.hetero.num_nodes:
            self.hetero.build_levels()
        self.timer = self._timer_cls(self.design, self.placement,
                                     self.routing, self.graph, self.result,
                                     tolerance=0.0)
        self._cells = {cell.name: cell for cell in self.design.cells}
        self._nets = {net.name: net for net in self.design.nets}
        self._cell_eids = {}
        for eid, edge in enumerate(self.graph.cell_edges):
            self._cell_eids.setdefault(id(edge.cell), []).append(eid)
        # eid -> (level index, position inside the level) so patched rows
        # land in the cached LevelCompute copies too.
        h = self.hetero
        self._net_lvl = np.full(h.num_net_edges, -1, dtype=np.int64)
        self._net_pos = np.full(h.num_net_edges, -1, dtype=np.int64)
        self._cell_lvl = np.full(h.num_cell_edges, -1, dtype=np.int64)
        self._cell_pos = np.full(h.num_cell_edges, -1, dtype=np.int64)
        for li, block in enumerate(h.levels):
            self._net_lvl[block.net_eids] = li
            self._net_pos[block.net_eids] = np.arange(len(block.net_eids))
            self._cell_lvl[block.cell_eids] = li
            self._cell_pos[block.cell_eids] = np.arange(
                len(block.cell_eids))

    def _cell_nodes(self, cell):
        """Graph nodes of a cell's timed (non-clock, connected) pins."""
        nodes = []
        for pin in cell.pins.values():
            if pin.is_clock or pin.net is None:
                continue
            nodes.append(int(self.graph.node_of_pin[pin.index]))
        return np.asarray(sorted(nodes), dtype=np.int64)

    def _lookup_cell(self, name):
        cell = self._cells.get(name)
        if cell is None:
            raise EditError(f"no cell named {name!r}")
        return cell

    # -- edits -------------------------------------------------------------
    def apply(self, edit):
        """Apply one parsed edit; bumps the version, returns DirtyDelta."""
        op = edit["op"]
        with get_tracer().span("graphdata.patch", op=op,
                               design=self.design.name):
            if op == "move_cell":
                delta = self._move_cell(edit)
            elif op == "resize_cell":
                delta = self._resize_cell(edit)
            elif op == "insert_buffer":
                delta = self._insert_buffer(edit)
            elif op == "remove_buffer":
                delta = self._remove_buffer(edit)
            else:
                raise EditError(f"unknown edit op {op!r}")
        self.version += 1
        return delta

    def _move_cell(self, edit):
        cell = self._lookup_cell(edit["cell"])
        self.timer.move_cell(cell, (edit["x"], edit["y"]))
        nodes = self._cell_nodes(cell)
        die = self.placement.die
        h = self.hetero
        for node in nodes:
            pin = self.graph.node_pins[node]
            h.node_features[node, 2:6] = die.boundary_distances(
                self.placement.pin_xy[pin.index]) / DIST_SCALE
        moved = np.zeros(h.num_nodes, dtype=bool)
        moved[nodes] = True
        eids = np.nonzero(moved[h.net_src] | moved[h.net_dst])[0]
        self._patch_net_features(eids)
        self._sync_labels()
        return DirtyDelta(nodes=nodes, net_eids=eids)

    def _resize_cell(self, edit):
        cell = self._lookup_cell(edit["cell"])
        try:
            new_type = self.design.library[edit["cell_type"]]
        except KeyError:
            raise EditError(f"no library cell {edit['cell_type']!r}")
        try:
            self.timer.resize_cell(cell, new_type)
        except ValueError as exc:          # pin-incompatible swap
            raise EditError(str(exc))
        nodes = self._cell_nodes(cell)
        h = self.hetero
        for node in nodes:
            pin = self.graph.node_pins[node]
            h.node_features[node, 6:10] = \
                self.design.pin_capacitance(pin) / CAP_SCALE
        eids = np.asarray(self._cell_eids.get(id(cell), []),
                          dtype=np.int64)
        for eid in eids:
            self._patch_cell_edge(int(eid))
        self._sync_labels()
        return DirtyDelta(nodes=nodes, cell_eids=eids)

    def _insert_buffer(self, edit):
        net = self._nets.get(edit["net"])
        if net is None:
            raise EditError(f"no net named {edit['net']!r}")
        sink_pin = next((p for p in net.sinks if p.name == edit["sink"]),
                        None)
        if sink_pin is None:
            raise EditError(f"net {net.name!r} has no sink pin "
                            f"{edit['sink']!r}")
        try:
            buffer_type = self.design.library[edit["buffer_cell"]]
        except KeyError:
            raise EditError(f"no library cell {edit['buffer_cell']!r}")
        name = edit["name"] or f"deltabuf{self._n_buffers}"
        if name in self._cells:
            raise EditError(f"cell name {name!r} already exists")
        net_name = edit["new_net"] or f"{name}_net"
        if net_name in self._nets:
            raise EditError(f"net name {net_name!r} already exists")
        self._n_buffers += 1

        # Same structural recipe as repro.opt.buffering: detach the sink,
        # drive it through a buffer placed at the arc midpoint.
        placement = self.placement
        driver_pin = net.driver
        buf = self.design.add_cell(name, buffer_type)
        net.sinks.remove(sink_pin)
        self.design.connect(net, buf.pins["A"])
        new_net = self.design.add_net(net_name, buf.pins["Y"], [sink_pin])
        mid = 0.5 * (placement.pin_xy[driver_pin.index] +
                     placement.pin_xy[sink_pin.index])
        placement.cell_xy = np.vstack([placement.cell_xy, mid])
        for pin in buf.pins.values():
            offset = placement._pin_offset(pin)
            placement.pin_xy = np.vstack(
                [placement.pin_xy, placement.die.clamp(mid + offset)])
        self._buffer_stack.append((buf, net, sink_pin, new_net))
        self._rebuild()
        return DirtyDelta(structural=True)

    def _remove_buffer(self, edit):
        name = edit["name"]
        if not self._buffer_stack or \
                self._buffer_stack[-1][0].name != name:
            have = (self._buffer_stack[-1][0].name
                    if self._buffer_stack else None)
            raise EditError(
                f"remove_buffer only reverts the most recently inserted "
                f"buffer (last: {have!r}, requested: {name!r})")
        buf, net, sink_pin, new_net = self._buffer_stack.pop()
        # The revert relies on the buffer being the latest append to the
        # design/placement arrays — guaranteed by the LIFO check above.
        assert self.design.nets[-1] is new_net
        assert self.design.cells[-1] is buf
        self.design.cells.remove(buf)
        self.design.nets.pop()
        net.sinks.remove(buf.pins["A"])
        self.design.connect(net, sink_pin)
        self.design.pins = self.design.pins[:-len(buf.pins)]
        self.placement.cell_xy = self.placement.cell_xy[:-1]
        self.placement.pin_xy = self.placement.pin_xy[:-len(buf.pins)]
        self._rebuild()
        return DirtyDelta(structural=True)

    # -- feature row recomputation (exact extract.py formulas) -------------
    def _patch_net_features(self, eids):
        h = self.hetero
        pin_xy = self.placement.pin_xy
        node_pins = self.graph.node_pins
        scheds = list((h._schedule or {}).values())
        for eid in eids:
            eid = int(eid)
            sxy = pin_xy[node_pins[h.net_src[eid]].index]
            dxy = pin_xy[node_pins[h.net_dst[eid]].index]
            row = (dxy - sxy) / DIST_SCALE
            h.net_features[eid] = row
            # Every cached per-dtype schedule mirrors the row (assignment
            # into a float32 schedule casts, matching a fresh build).
            for sched in scheds:
                lv = sched.levels[self._net_lvl[eid]]
                lv.net_features[self._net_pos[eid]] = row

    def _patch_cell_edge(self, eid):
        h = self.hetero
        edge = self.graph.cell_edges[eid]
        v, idx, val = edge.arc.stacked_luts()
        idx = idx.copy()
        idx[:, :7] /= TIME_SCALE
        idx[:, 7:] /= CAP_SCALE
        val = val / TIME_SCALE
        h.cell_valid[eid] = v
        h.cell_indices[eid] = idx.reshape(-1)
        h.cell_values[eid] = val.reshape(-1)
        for sched in (h._schedule or {}).values():
            lv = sched.levels[self._cell_lvl[eid]]
            pos = int(self._cell_pos[eid])
            lv.cell_valid[pos] = v
            lv.cell_indices[pos] = idx.reshape(-1)
            lv.cell_values[pos] = val.reshape(-1)
            # lut_idx_x/y are contiguous copies; lut_values is a view of
            # cell_values but is rewritten too so the invariant is local.
            lv.lut_idx_x[pos * 8:(pos + 1) * 8] = idx[:, :7]
            lv.lut_idx_y[pos * 8:(pos + 1) * 8] = idx[:, 7:]
            lv.lut_values[pos * 8:(pos + 1) * 8] = val.reshape(8, 49)

    # -- label sync --------------------------------------------------------
    def _sync_labels(self):
        """Mirror the (cone-updated) STA result into the dataset view.

        Endpoint required times are static in the clock period and the
        endpoint cell types, so they are refreshed exactly here; interior
        required times are only brought to full-backward parity by
        :meth:`materialize` (predictions never read them).
        """
        from ..sta.engine import _set_required_at_endpoints

        r, h = self.result, self.hetero
        np.divide(r.net_delay, TIME_SCALE, out=h.net_delay)
        np.divide(r.arrival, TIME_SCALE, out=h.arrival)
        np.divide(r.slew, TIME_SCALE, out=h.slew)
        np.divide(r.cell_arc_delay, TIME_SCALE, out=h.cell_arc_delay)
        _set_required_at_endpoints(self.graph, r, r.clock_period,
                                   po_margin_frac=0.05)
        np.divide(r.required, TIME_SCALE, out=h.required)

    def materialize(self):
        """Full label parity with a from-scratch re-analysis.

        Runs the full backward required pass (interior rows are stale
        after cone updates) and re-syncs every label array; returns the
        patched :class:`HeteroGraph`.
        """
        self.timer.refresh_required()
        self._sync_labels()
        return self.hetero

    # -- structural rebuild ------------------------------------------------
    def _rebuild(self):
        """Full re-route + STA + extraction after a structural edit."""
        from ..routing import route_design
        from ..sta import build_timing_graph, run_sta

        self.routing = route_design(self.design, self.placement)
        self.graph = build_timing_graph(self.design)
        self.result = run_sta(self.design, self.placement, self.routing,
                              clock_period=self.clock_period,
                              graph=self.graph)
        self.hetero = extract_graph(self.graph, self.placement,
                                    self.result, split=self.hetero.split)
        self._bind()
