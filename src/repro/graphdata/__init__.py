"""Dataset layer: heterogeneous graph extraction, features, caching."""

from .hetero import (HeteroGraph, LevelBlock, TIME_SCALE, CAP_SCALE,
                     DIST_SCALE, NODE_FEATURE_DIM, NET_EDGE_FEATURE_DIM,
                     CELL_EDGE_FEATURE_DIM)
from .extract import extract_graph
from .patch import (EDIT_OPS, DirtyDelta, EditError, GraphPatcher,
                    parse_edits)
from .features import BARBOZA_FEATURE_NAMES, barboza_features
from .dataset import (DesignRecord, generate_design, load_dataset,
                      default_cache_dir, design_record_key)
from .batch import GraphSlice, batch_graphs, split_rows

__all__ = [
    "HeteroGraph", "LevelBlock",
    "TIME_SCALE", "CAP_SCALE", "DIST_SCALE",
    "NODE_FEATURE_DIM", "NET_EDGE_FEATURE_DIM", "CELL_EDGE_FEATURE_DIM",
    "extract_graph",
    "EDIT_OPS", "DirtyDelta", "EditError", "GraphPatcher", "parse_edits",
    "BARBOZA_FEATURE_NAMES", "barboza_features",
    "DesignRecord", "generate_design", "load_dataset", "default_cache_dir",
    "design_record_key",
    "GraphSlice", "batch_graphs", "split_rows",
]
