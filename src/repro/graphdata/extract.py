"""Extraction: placed + routed + timed design -> :class:`HeteroGraph`.

Features follow the paper exactly:

Table 2 pin features (10 dims, all from *placement only*):
    is primary I/O (1), is fanin-or-fanout i.e. drives a net (1),
    distance to the 4 die boundaries (4), pin capacitance per corner (4).
Table 2 tasks: net delay to root (4), arrival time (4), slew (4),
    endpoint flag, required arrival time at endpoints (4).

Table 3 net-edge features: signed x/y distance from driver to sink (2).
Table 3 cell-edge features: 8 LUT valid flags, 8x(7+7) LUT indices,
    8x(7x7) LUT value matrices (512).  Task: cell arc delay (4).
"""

from __future__ import annotations

import numpy as np

from ..obs import get_registry, get_tracer
from .hetero import (CAP_SCALE, DIST_SCALE, TIME_SCALE, HeteroGraph)

__all__ = ["extract_graph"]


def _node_features(graph, placement):
    design = graph.design
    n = graph.num_nodes
    feats = np.zeros((n, 10))
    die = placement.die
    for node, pin in enumerate(graph.node_pins):
        xy = placement.pin_xy[pin.index]
        feats[node, 0] = 1.0 if pin.is_port else 0.0
        feats[node, 1] = 1.0 if pin.is_net_driver else 0.0
        feats[node, 2:6] = die.boundary_distances(xy) / DIST_SCALE
        feats[node, 6:10] = design.pin_capacitance(pin) / CAP_SCALE
    return feats


def _net_edge_arrays(graph, placement):
    e = len(graph.net_edges)
    src = np.zeros(e, dtype=np.int64)
    dst = np.zeros(e, dtype=np.int64)
    feats = np.zeros((e, 2))
    for i, edge in enumerate(graph.net_edges):
        src[i] = edge.src
        dst[i] = edge.dst
        sxy = placement.pin_xy[graph.node_pins[edge.src].index]
        dxy = placement.pin_xy[graph.node_pins[edge.dst].index]
        feats[i] = (dxy - sxy) / DIST_SCALE
    return src, dst, feats


def _cell_edge_arrays(graph):
    e = len(graph.cell_edges)
    src = np.zeros(e, dtype=np.int64)
    dst = np.zeros(e, dtype=np.int64)
    valid = np.zeros((e, 8))
    indices = np.zeros((e, 8 * 14))
    values = np.zeros((e, 8 * 49))
    # LUT feature tensors are identical for all edges sharing a (cell type,
    # arc) pair, so build them once per arc object.
    cache = {}
    for i, edge in enumerate(graph.cell_edges):
        src[i] = edge.src
        dst[i] = edge.dst
        key = id(edge.arc)
        if key not in cache:
            v, idx, val = edge.arc.stacked_luts()
            # Normalize: slew indices (first 7 of each 14) by TIME_SCALE,
            # load indices by CAP_SCALE, values by TIME_SCALE.
            idx = idx.copy()
            idx[:, :7] /= TIME_SCALE
            idx[:, 7:] /= CAP_SCALE
            cache[key] = (v, idx.reshape(-1), (val / TIME_SCALE).reshape(-1))
        v, idx_flat, val_flat = cache[key]
        valid[i] = v
        indices[i] = idx_flat
        values[i] = val_flat
    return src, dst, valid, indices, values


def extract_graph(graph, placement, result, split="train"):
    """Build the dataset view of one analysed design.

    ``graph`` is the STA :class:`~repro.sta.graph.TimingGraph`,
    ``result`` the :class:`~repro.sta.engine.TimingResult` labels.
    """
    with get_tracer().span("graphdata.extract",
                           design=graph.design.name,
                           nodes=int(graph.num_nodes),
                           net_edges=len(graph.net_edges),
                           cell_edges=len(graph.cell_edges)):
        return _extract_graph(graph, placement, result, split)


def _extract_graph(graph, placement, result, split):
    node_features = _node_features(graph, placement)
    net_src, net_dst, net_features = _net_edge_arrays(graph, placement)
    cell_src, cell_dst, cell_valid, cell_indices, cell_values = \
        _cell_edge_arrays(graph)

    n = graph.num_nodes
    is_source = np.zeros(n, dtype=bool)
    is_source[graph.source_nodes()] = True
    is_net_sink = np.zeros(n, dtype=bool)
    is_net_sink[net_dst] = True

    hetero = HeteroGraph(
        name=graph.design.name,
        split=split,
        clock_period=result.clock_period,
        node_features=node_features,
        level=graph.level.copy(),
        is_source=is_source,
        is_endpoint=result.endpoint_mask.copy(),
        is_net_sink=is_net_sink,
        net_src=net_src, net_dst=net_dst, net_features=net_features,
        cell_src=cell_src, cell_dst=cell_dst,
        cell_valid=cell_valid, cell_indices=cell_indices,
        cell_values=cell_values,
        net_delay=result.net_delay / TIME_SCALE,
        arrival=result.arrival / TIME_SCALE,
        slew=result.slew / TIME_SCALE,
        required=result.required / TIME_SCALE,
        cell_arc_delay=result.cell_arc_delay / TIME_SCALE,
    )
    hetero.build_levels()
    get_registry().counter(
        "repro_graphs_extracted_total",
        "HeteroGraphs built from analysed designs.").inc()
    return hetero
