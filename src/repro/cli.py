"""Command-line interface: run the flow, train, predict, export files.

Usage (also available as ``python -m repro``):

    repro flow picorv32a                 # place/route/STA + timing report
    repro dataset --scale 1.0            # build + cache the 21-design suite
    repro build-dataset --workers 4      # parallel build of the design suite
    repro cache ls                       # inspect the on-disk artifact store
    repro train --variant full           # train the timer-inspired GNN
    repro predict usbf_device            # model vs. ground-truth slack
    repro serve --port 8080              # HTTP slack-prediction service
    repro bench-serve --clients 8        # loadgen benchmark of the service
    repro bench-compute --reps 5         # fused vs. naive kernel benchmark
    repro bench diff --check             # gate BENCH files vs. run ledger
    repro runs ls                        # recorded training/bench runs
    repro profile --backend fused        # per-op profile of a train step
    repro report --html -o report.html   # static HTML trajectory report
    repro stats --url http://host:8080   # stats/metrics of a live server
    repro top --url http://host:8080     # live fleet dashboard (ANSI)
    repro trace picorv32a -o t.jsonl     # traced flow run -> JSONL spans
    repro trace --export t.jsonl --trace-id 4f...  # one request timeline
    repro write-verilog des -o des.v     # export a benchmark netlist
    repro write-liberty -c late -o s.lib # export one library corner
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _cmd_flow(args):
    from .liberty import make_sky130_like_library
    from .netlist import build_benchmark, validate_design
    from .placement import place_design
    from .routing import route_design
    from .sta import build_timing_graph, format_path_report, run_sta, \
        timing_summary

    library = make_sky130_like_library()
    design = build_benchmark(args.benchmark, library, scale=args.scale)
    validate_design(design)
    placement = place_design(design, seed=args.seed)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph,
                     clock_period=args.clock)
    stats = design.stats()
    print(f"design {stats['name']}: {stats['nodes']} pins, "
          f"{stats['net_edges']} net arcs, {stats['cell_edges']} cell "
          f"arcs, {stats['endpoints']} endpoints, "
          f"{routing.total_wirelength:.0f} um routed")
    for key, value in timing_summary(result).items():
        print(f"  {key}: {value:.1f}" if isinstance(value, float)
              else f"  {key}: {value}")
    print()
    print(format_path_report(result, mode="setup"))
    return 0


def _cmd_dataset(args):
    from .experiments import format_table1, get_dataset
    get_dataset(args.scale)
    print(format_table1(scale=args.scale))
    return 0


def _cmd_build_dataset(args):
    import time

    from .graphdata import load_dataset
    from .netlist import BENCHMARKS
    from .obs import get_registry

    benchmarks = BENCHMARKS
    if args.designs:
        by_name = {b.name: b for b in BENCHMARKS}
        unknown = [n for n in args.designs if n not in by_name]
        if unknown:
            print(f"unknown benchmarks: {unknown}", file=sys.stderr)
            return 2
        benchmarks = [by_name[n] for n in args.designs]
    t0 = time.perf_counter()
    records = load_dataset(scale=args.scale, cache=not args.no_cache,
                           cache_dir=args.cache_dir, benchmarks=benchmarks,
                           workers=args.workers)
    elapsed = time.perf_counter() - t0
    print(f"{'design':<16}{'split':<7}{'nodes':>7}{'net':>7}{'cell':>7}"
          f"{'EP':>6}{'flow s':>8}")
    for spec in benchmarks:
        record = records[spec.name]
        stats = record.graph.stats()
        print(f"{spec.name:<16}{spec.split:<7}{stats['nodes']:>7}"
              f"{stats['net_edges']:>7}{stats['cell_edges']:>7}"
              f"{stats['endpoints']:>6}{record.flow_time:>8.2f}")
    snapshot = get_registry().snapshot()
    hits = sum(entry["value"]
               for entry in snapshot.get("repro_dataset_designs_total", [])
               if entry["labels"].get("result") == "hit")
    print(f"\nbuilt {len(records)} designs in {elapsed:.2f}s "
          f"(workers={args.workers or 'REPRO_WORKERS'}, "
          f"cache hits {int(hits)})")
    return 0


def _cmd_cache(args):
    from .parallel import ArtifactStore

    root = os.path.join(args.cache_dir, "artifacts") \
        if args.cache_dir else None
    store = ArtifactStore(root)
    if args.action == "ls":
        entries = store.entries()
        if not entries:
            print(f"artifact store {store.root}: empty")
            return 0
        print(f"{'key':<26}{'kind':<15}{'ver':>4}{'KiB':>9}  meta")
        for rec in entries:
            meta = rec.get("meta") or {}
            desc = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
            print(f"{rec['key']:<26}{rec.get('kind', '?'):<15}"
                  f"{rec.get('version', 0):>4}"
                  f"{rec.get('size', 0) / 1024:>9.1f}  {desc}")
        print(f"\n{len(entries)} entries, "
              f"{store.total_bytes() / 1024 / 1024:.1f} MiB in {store.root}")
        return 0
    if args.action == "clear":
        removed = store.clear(kind=args.kind)
        print(f"removed {removed} entries from {store.root}")
        return 0
    if args.action == "verify":
        problems = store.verify()
        total = len(store.keys())
        if not problems:
            print(f"artifact store {store.root}: {total} entries ok")
            return 0
        for key, reason in problems:
            print(f"CORRUPT {key}: {reason}", file=sys.stderr)
        print(f"{len(problems)} of {total} entries corrupt", file=sys.stderr)
        return 1
    raise AssertionError(args.action)


def _cmd_train(args):
    from .experiments import train_test_graphs, trained_timing_gnn
    from .obs import default_ledger
    from .training import evaluate_on

    model = trained_timing_gnn(args.variant, scale=args.scale,
                               epochs=args.epochs)
    train, test = train_test_graphs(args.scale)
    print(f"{'design':<16}{'split':<7}{'arrival R2':>12}{'slack R2':>10}")
    for split, graphs in (("train", train), ("test", test)):
        metrics = evaluate_on(model, graphs)
        for name, m in metrics.items():
            print(f"{name:<16}{split:<7}{m['arrival_r2']:>12.4f}"
                  f"{m['slack_r2']:>10.4f}")
    latest = default_ledger().latest(kind="train")
    if latest is not None:
        print(f"\nrun recorded: {latest['run_id']}  "
              f"(see `repro runs show {latest['run_id']}`)")
    else:
        print("\nmodel loaded from checkpoint cache; no new run recorded")
    return 0


def _cmd_predict(args):
    from .experiments import get_dataset, trained_timing_gnn
    from .graphdata import TIME_SCALE
    from .training import evaluate_timing_gnn, slack_from_arrival

    records = get_dataset(args.scale)
    if args.benchmark not in records:
        print(f"unknown benchmark {args.benchmark}", file=sys.stderr)
        return 2
    graph = records[args.benchmark].graph
    model = trained_timing_gnn(args.variant, scale=args.scale)
    metrics = evaluate_timing_gnn(model, graph)
    print(f"{args.benchmark}: arrival R2 {metrics['arrival_r2']:+.4f}, "
          f"slack R2 {metrics['slack_r2']:+.4f}, "
          f"slew R2 {metrics['slew_r2']:+.4f}")
    pred = model.predict(graph)
    slack_pred = slack_from_arrival(graph, pred.numpy_arrival())
    slack_true = graph.slack()
    wns_pred = float(np.nanmin(slack_pred[:, 2:4])) * TIME_SCALE
    wns_true = float(np.nanmin(slack_true[:, 2:4])) * TIME_SCALE
    print(f"setup WNS: true {wns_true:.1f} ps, predicted {wns_pred:.1f} ps")
    return 0


def _build_service(args, workers):
    """One PredictionService (pooled when ``workers > 0``)."""
    from .serving import (ModelRegistry, PooledPredictionService,
                          PredictionService)

    registry = ModelRegistry(scale=args.scale, epochs=args.epochs)
    kwargs = dict(registry=registry, scale=args.scale,
                  batch_window_ms=args.batch_window_ms,
                  max_batch=args.max_batch)
    if workers > 0:
        return PooledPredictionService(
            workers=workers, watermark=args.watermark, **kwargs)
    return PredictionService(**kwargs)


def _cmd_serve(args):
    import signal
    import threading

    from .serving import ServingServer

    service = _build_service(args, args.workers)
    if args.warm:
        print(f"warming model {args.model_variant!r} ...")
        service.warm(models=[args.model_variant])
    server = ServingServer(service, host=args.host, port=args.port,
                           quiet=False)

    # Graceful shutdown: SIGTERM/SIGINT stop accepting, drain in-flight
    # requests, join the worker pool, and unlink every shm segment.
    # Handlers go in before the ready line is printed, so a supervisor
    # reacting to it can signal immediately.
    stop = threading.Event()

    def _graceful(signum, _frame):
        print(f"\nsignal {signum}: draining and shutting down")
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    host, port = server.address
    mode = (f"{args.workers} pool workers" if args.workers > 0
            else "in-process")
    print(f"serving on http://{host}:{port} ({mode})  "
          f"(POST /predict, GET /models /healthz /stats /metrics)",
          flush=True)
    server.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    server.stop()
    return 0


def _bench_delta(args, designs):
    """One ECO iteration: incremental delta vs full rebuild, in-process.

    Drives the largest of ``designs`` (by node count).  After a cell
    move, a service without the delta path must rebuild the graph —
    re-route, full STA, re-extraction — and run a whole-graph forward;
    that conventional iteration is the ``full_latency_ms`` baseline.
    The delta iteration is one single-edit ``/predict/delta`` request
    end to end (incremental STA cone + feature patch + cone-limited
    forward).  Recorded as ``extra["delta"]`` in BENCH_serving.json;
    scripts/ci.sh asserts ``delta_speedup > 1``.
    """
    import time

    from . import nn
    from .graphdata import extract_graph
    from .routing import route_design
    from .serving.service import PredictRequest
    from .sta import build_timing_graph, run_sta

    service = _build_service(args, 0)
    try:
        service.warm(models=[args.model_variant], designs=designs)

        def nodes(name):
            graph, _key, _hit = service.resolve_graph(
                PredictRequest(design=name,
                               model=args.model_variant).validate())
            return graph.num_nodes

        design = max(designs, key=nodes)
        body = {"design": design, "model": args.model_variant,
                "no_cache": True}
        session = service.delta_session(design)
        model = service.registry.get(args.model_variant).model
        patcher = session.patcher
        cells = patcher.design.combinational_cells
        die = patcher.placement.die
        rng = np.random.default_rng(0)

        def move_edit():
            cell = cells[int(rng.integers(len(cells)))]
            return {"op": "move_cell", "cell": cell.name,
                    "x": float(rng.uniform(0, die.width)),
                    "y": float(rng.uniform(0, die.height))}

        # Conventional iterations: the edit applies untimed, then the
        # timed section is everything a non-incremental service redoes —
        # re-route, full STA, re-extraction, whole-graph forward.
        full_ms = []
        from .graphdata.patch import parse_edits
        with session.lock:
            for _ in range(max(3, args.delta_edits // 4)):
                session.apply(parse_edits([move_edit()]))
                start = time.perf_counter()
                routing = route_design(patcher.design, patcher.placement)
                graph = build_timing_graph(patcher.design)
                result = run_sta(patcher.design, patcher.placement,
                                 routing, clock_period=patcher.clock_period,
                                 graph=graph)
                hetero = extract_graph(graph, patcher.placement, result,
                                       split=patcher.hetero.split)
                with nn.no_grad():
                    model.predict(hetero)
                full_ms.append((time.perf_counter() - start) * 1000.0)

        # First delta request pays the session catch-up (a full
        # incremental pass); run it untimed so the timed loop measures
        # steady-state single-edit cones.
        service.predict_delta(dict(body, edits=[]))
        delta_ms = []
        for _ in range(args.delta_edits):
            start = time.perf_counter()
            service.predict_delta(dict(body, edits=[move_edit()]))
            delta_ms.append((time.perf_counter() - start) * 1000.0)

        full = float(np.median(full_ms))
        delta = float(np.median(delta_ms))
        return {"design": design, "num_nodes": nodes(design),
                "edits": args.delta_edits,
                "full_latency_ms": round(full, 3),
                "delta_latency_ms": round(delta, 3),
                "delta_speedup": round(full / delta, 3) if delta > 0
                else 0.0}
    finally:
        service.close()


def _cmd_bench_serve(args):
    from .netlist import benchmark_names
    from .serving import (ServingServer, format_loadgen_report,
                          run_loadgen)

    designs = args.designs or benchmark_names("test")[:args.num_designs]

    def drive(workers, label):
        service = _build_service(args, workers)
        print(f"[{label}] warming model {args.model_variant!r} and "
              f"{len(designs)} design graphs ...")
        service.warm(models=[args.model_variant], designs=designs)
        try:
            with ServingServer(service) as server:
                print(f"[{label}] driving {server.url} with "
                      f"{args.clients} clients x "
                      f"{args.requests_per_client} requests over "
                      f"{designs}")
                return run_loadgen(
                    server.url, designs, clients=args.clients,
                    requests_per_client=args.requests_per_client,
                    model=args.model_variant,
                    deadline_ms=args.deadline_ms,
                    warmup_requests=args.warmup_requests,
                    no_cache=args.no_cache)
        finally:
            service.close()

    single = None
    if args.workers > 0 and args.single_baseline:
        # Reference phase: identical load against the in-process service,
        # so the recorded pool speedup compares like with like.
        single = drive(0, "single-process reference")
    label = (f"pool x{args.workers}" if args.workers > 0
             else "in-process")
    result = drive(args.workers, label)
    print(format_loadgen_report(result))

    extra = {"workers": args.workers}
    pool_stats = result.server_stats.get("pool") or {}
    if pool_stats.get("per_worker"):
        # Per-worker latency breakdown (fleet-aggregated from the worker
        # registries); scripts/ci.sh asserts these fields exist for
        # pooled runs.
        extra["per_worker_latency"] = [
            {"worker": w["worker"],
             "requests": w.get("requests", 0),
             "latency_p50_ms": w.get("latency_p50_ms", 0.0),
             "latency_p99_ms": w.get("latency_p99_ms", 0.0),
             "latency_mean_ms": w.get("latency_mean_ms", 0.0)}
            for w in pool_stats["per_worker"]]
    if single is not None:
        extra["single_process"] = {
            "throughput_rps": round(single.throughput_rps, 4),
            "latency_p50_ms": round(single.latency_p50_ms, 4),
            "latency_p99_ms": round(single.latency_p99_ms, 4),
            "batch_max": single.batch_max,
        }
        if single.throughput_rps > 0:
            extra["pool_speedup"] = round(
                result.throughput_rps / single.throughput_rps, 3)
            print(f"pool speedup vs single process: "
                  f"{extra['pool_speedup']:.2f}x "
                  f"({single.throughput_rps:.1f} -> "
                  f"{result.throughput_rps:.1f} req/s)")
    quality = result.server_stats.get("quality") or {}
    if quality.get("enabled"):
        # Shadow-audit digest (REPRO_AUDIT_RATE > 0); scripts/ci.sh
        # asserts these fields are well-formed for audited runs.
        extra["audit"] = {
            "samples": int(quality.get("samples", 0) or 0),
            "worker_audits": int(quality.get("worker_audits", 0) or 0),
            "slack_mae_ps": quality.get("slack_mae_ps"),
            "drift_score": quality.get("drift_score"),
            "rate": quality.get("rate"),
        }
        mae = extra["audit"]["slack_mae_ps"]
        print(f"shadow audits: {extra['audit']['samples']} scored, "
              f"slack MAE "
              + (f"{mae:.2f} ps" if mae is not None else "n/a"))
    if args.delta:
        print(f"[delta] timing {args.delta_edits} single-edit deltas "
              f"vs full rebuild-and-forward iterations ...")
        extra["delta"] = _bench_delta(args, designs)
        print(f"delta speedup on {extra['delta']['design']}: "
              f"{extra['delta']['delta_speedup']:.2f}x "
              f"({extra['delta']['full_latency_ms']:.1f} ms full -> "
              f"{extra['delta']['delta_latency_ms']:.1f} ms delta)")
    if args.bench_json:
        from .serving import write_bench_json
        path = write_bench_json(result, args.bench_json, params={
            "clients": args.clients,
            "requests_per_client": args.requests_per_client,
            "model": args.model_variant, "designs": list(designs),
            "scale": args.scale, "epochs": args.epochs,
            "deadline_ms": args.deadline_ms,
            "batch_window_ms": args.batch_window_ms,
            "max_batch": args.max_batch,
            "workers": args.workers, "watermark": args.watermark,
            "no_cache": args.no_cache}, extra=extra)
        print(f"wrote {path}")
    bad = result.errors + result.incorrect
    if bad:
        print(f"FAILED: {bad} bad responses", file=sys.stderr)
        return 1
    if args.workers > 0 and result.batch_max <= 1:
        print("FAILED: pooled run never formed a multi-item batch "
              "(batch_max <= 1)", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_compute(args):
    from .bench import (format_compute_report, run_compute_bench,
                        write_compute_bench_json)
    from .graphdata import load_dataset
    from .netlist import BENCHMARKS

    scale = args.scale
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    if args.quick:
        # Smoke mode: one design at a bounded scale, the two stages the
        # CI speedup gate reads, enough interleaved reps to dodge noise.
        # Explicit --scale / --designs still win.
        if args.scale is None:
            scale = min(scale, 0.5)
        if args.designs is None:
            args.num_designs = 1
        args.stages = ["forward", "forward_backward"]
        args.reps = max(args.reps, 7)
        args.warmup = max(args.warmup, 2)
    by_name = {b.name: b for b in BENCHMARKS}
    if args.designs:
        unknown = [n for n in args.designs if n not in by_name]
        if unknown:
            print(f"unknown benchmarks: {unknown}", file=sys.stderr)
            return 2
        benchmarks = [by_name[n] for n in args.designs]
        records = load_dataset(scale=scale, benchmarks=benchmarks)
        graphs = [records[b.name].graph for b in benchmarks]
    else:
        # Default: the --num-designs largest designs of the suite, where
        # the kernel-level differences actually show.
        records = load_dataset(scale=scale)
        graphs = sorted((r.graph for r in records.values()),
                        key=lambda g: g.num_nodes,
                        reverse=True)[:args.num_designs]
    from . import nn
    import contextlib

    threads_ctx = (nn.use_threads(args.threads)
                   if args.threads is not None else contextlib.nullcontext())
    with threads_ctx:
        threads = nn.thread_count()
        print(f"benchmarking {len(graphs)} designs at scale {scale} "
              f"({args.reps} reps, {args.warmup} warmup, "
              f"dtypes {args.dtypes}, threads {threads}) ...")
        result = run_compute_bench(graphs, reps=args.reps,
                                   warmup=args.warmup, stages=args.stages,
                                   dtypes=args.dtypes)
    print(format_compute_report(result))
    if args.bench_json:
        path = write_compute_bench_json(result, args.bench_json, params={
            "designs": [g.name for g in graphs], "scale": scale,
            "reps": args.reps, "warmup": args.warmup,
            "dtypes": list(args.dtypes), "threads": threads,
            "quick": bool(args.quick)})
        print(f"wrote {path}")
    return 0


def _summarize_run(record):
    """One-line description of a run record for `repro runs ls`."""
    kind = str(record.get("kind", "?"))
    if kind.startswith("train"):
        loss = record.get("loss") or []
        detail = (f"epochs={len(loss)} "
                  f"final_loss={record.get('final_loss'):.5g}"
                  if record.get("final_loss") is not None
                  else f"epochs={len(loss)}")
    elif kind.startswith("bench"):
        payload = record.get("payload") or {}
        if payload.get("benchmark") == "serving":
            detail = (f"rps={payload.get('throughput_rps', 0):.1f} "
                      f"p99={payload.get('latency_p99_ms', 0):.1f}ms")
        else:
            summary = payload.get("summary") or {}
            geo = summary.get("speedup_train_step_geomean")
            detail = f"speedup={geo:.2f}x" if geo else \
                f"designs={len(payload.get('designs', []))}"
    else:
        detail = ""
    return detail


def _cmd_runs(args):
    import json

    from .obs import default_ledger

    ledger = default_ledger()
    if args.action == "ls":
        records, corrupt = ledger.scan(kind=args.kind)
        if args.last:
            records = records[-args.last:]
        if not records:
            print(f"no runs recorded in {ledger.path}")
            return 0
        print(f"{'run':<42}{'recorded':<22}{'backend':<9}detail")
        for record in records:
            print(f"{record['run_id']:<42}"
                  f"{record.get('recorded_at', '?'):<22}"
                  f"{record.get('backend', '—') or '—':<9}"
                  f"{_summarize_run(record)}")
        note = f", {corrupt} corrupt lines skipped" if corrupt else ""
        print(f"\n{len(records)} runs in {ledger.path}{note}")
        return 0
    if args.action == "show":
        if not args.run_id:
            print("runs show: RUN_ID required", file=sys.stderr)
            return 2
        record = ledger.get(args.run_id)
        if record is None:
            print(f"no run matching {args.run_id!r} in {ledger.path}",
                  file=sys.stderr)
            return 1
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    if args.action == "export":
        records, corrupt = ledger.scan(kind=args.kind)
        out = sys.stdout if args.output in (None, "-") \
            else open(args.output, "w")
        try:
            for record in records:
                out.write(json.dumps(record) + "\n")
        finally:
            if out is not sys.stdout:
                out.close()
                print(f"wrote {len(records)} runs to {args.output}"
                      + (f" ({corrupt} corrupt lines skipped)"
                         if corrupt else ""))
        return 0
    raise AssertionError(args.action)


def _cmd_audit(args):
    import json

    from .obs import AuditLog

    log = AuditLog(path=args.path)
    if args.action == "ls":
        records, corrupt = log.scan()
        if args.last:
            records = records[-args.last:]
        if not records:
            print(f"no audits recorded in {log.path}")
            return 0
        print(f"{'audit':<42}{'design':<14}{'model':<14}"
              f"{'mae_ps':>9}{'drift':>8}")
        for record in records:
            mae = record.get("slack_mae_ps")
            drift = record.get("drift_score")
            mae_col = f"{mae:>9.2f}" if mae is not None else f"{'—':>9}"
            drift_col = (f"{drift:>8.3f}" if drift is not None
                         else f"{'—':>8}")
            print(f"{record['audit_id']:<42}"
                  f"{record.get('design') or '—':<14}"
                  f"{record.get('model') or '—':<14}"
                  f"{mae_col}{drift_col}")
        note = f", {corrupt} corrupt lines skipped" if corrupt else ""
        print(f"\n{len(records)} audits in {log.path}{note}")
        return 0
    if args.action == "show":
        if not args.audit_id:
            print("audit show: AUDIT_ID required", file=sys.stderr)
            return 2
        record = log.get(args.audit_id)
        if record is None:
            print(f"no audit matching {args.audit_id!r} in {log.path}",
                  file=sys.stderr)
            return 1
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    raise AssertionError(args.action)


def _cmd_bench(args):
    from .bench import (DEFAULT_TOLERANCE, check_bench_file,
                        format_diff_report)
    from .obs import default_ledger

    assert args.action == "diff"
    ledger = default_ledger()
    tolerance = args.tolerance if args.tolerance is not None \
        else DEFAULT_TOLERANCE
    regressed, seen = False, 0
    for path in (args.compute, args.serving):
        if not path:
            continue
        status, deltas = check_bench_file(
            path, ledger=ledger, tolerance=tolerance, record=args.record)
        if status == "missing":
            print(f"bench diff {path}: missing (skipped)")
            continue
        seen += 1
        print(format_diff_report(path, status, deltas, tolerance=tolerance))
        regressed = regressed or status == "regression"
    if seen == 0:
        print("bench diff: no BENCH files found — run `repro bench-compute`"
              " / `repro bench-serve` first")
    if regressed:
        print("bench diff: REGRESSION past tolerance "
              f"{tolerance * 100:.0f}%", file=sys.stderr)
        return 1 if args.check else 0
    return 0


def _cmd_profile(args):
    from .graphdata import load_dataset
    from .netlist import BENCHMARKS
    from .obs import format_profile_table, profile_train_step

    scale = args.scale
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    by_name = {b.name: b for b in BENCHMARKS}
    if args.design not in by_name:
        print(f"unknown benchmark {args.design}", file=sys.stderr)
        return 2
    records = load_dataset(scale=scale, benchmarks=[by_name[args.design]])
    graph = records[args.design].graph
    backends = ["fused", "naive"] if args.backend == "both" \
        else [args.backend]
    for backend in backends:
        prof, reference_ms = profile_train_step(graph, backend=backend)
        title = (f"train step on {args.design} (scale {scale}, "
                 f"backend {backend})")
        print(format_profile_table(prof, top=args.top,
                                   reference_ms=reference_ms, title=title))
        print()
    return 0


def _cmd_report(args):
    from .obs import default_ledger, render_html_report, write_html_report

    ledger = default_ledger()
    if args.html:
        if args.output == "-":
            print(render_html_report(ledger=ledger))
        else:
            write_html_report(args.output, ledger=ledger)
            print(f"wrote {args.output}")
        return 0
    records, corrupt = ledger.scan()
    print(f"{len(records)} runs in {ledger.path}"
          + (f" ({corrupt} corrupt lines skipped)" if corrupt else ""))
    for record in records[-10:]:
        print(f"  {record['run_id']:<42}{_summarize_run(record)}")
    print("use `repro report --html -o report.html` for the full report")
    return 0


def _cmd_stats(args):
    import json
    import urllib.request

    url = args.url.rstrip("/")
    path = "/metrics" if args.metrics else "/stats"
    try:
        with urllib.request.urlopen(url + path, timeout=args.timeout) \
                as resp:
            body = resp.read().decode()
    except OSError as exc:
        print(f"cannot reach {url}{path}: {exc}", file=sys.stderr)
        return 1
    if args.metrics:
        print(body, end="")
    else:
        print(json.dumps(json.loads(body), indent=2, sort_keys=True))
    return 0


def _cmd_trace(args):
    from .obs import format_span_tree, get_tracer, iter_trace_records

    if args.export:
        # Stream an existing (possibly rotated) JSONL sink; with
        # --trace-id only the matching records are ever held in memory,
        # so one request timeline can be pulled out of a huge sink.
        records = list(iter_trace_records(args.export,
                                          trace_id=args.trace_id))
        if not records:
            what = (f"trace {args.trace_id!r}" if args.trace_id
                    else "spans")
            print(f"no {what} found in {args.export}", file=sys.stderr)
            return 1
        if args.output:
            import json
            with open(args.output, "w") as fh:
                for record in records:
                    fh.write(json.dumps(record) + "\n")
            print(f"wrote {len(records)} spans to {args.output}")
        else:
            print(format_span_tree(records))
            print(f"\n{len(records)} spans from {args.export}"
                  + (f" (trace {args.trace_id})" if args.trace_id
                     else ""))
        return 0

    if not args.benchmark:
        print("trace: a benchmark name is required unless --export is "
              "given", file=sys.stderr)
        return 2
    from .flow import Flow

    tracer = get_tracer()
    tracer.reset()
    output = args.output or f"trace_{args.benchmark}.jsonl"
    tracer.set_sink(output, mode="w")
    try:
        flow = Flow.from_benchmark(args.benchmark, scale=args.scale)
        flow.run(seed=args.seed)
        flow.extract()
    finally:
        tracer.clear_sink()
    spans = tracer.spans()
    print(format_span_tree(spans))
    print(f"\nwrote {len(spans)} spans to {output}")
    return 0


def _cmd_top(args):
    import json
    import time
    import urllib.request

    from .obs import render_top

    url = args.url.rstrip("/")

    def fetch(path):
        with urllib.request.urlopen(url + path,
                                    timeout=args.timeout) as resp:
            return json.loads(resp.read())

    prev = prev_t = None
    frames = 0
    try:
        while True:
            try:
                stats = fetch("/stats")
                healthz = fetch("/healthz")
            except OSError as exc:
                print(f"cannot reach {url}: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            frame = render_top(stats, healthz, prev=prev,
                               dt=(now - prev_t) if prev_t else None,
                               url=url)
            if not args.no_clear:
                sys.stdout.write("\x1b[H\x1b[2J")   # ANSI home + clear
            print(frame, flush=True)
            prev, prev_t = stats, now
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_write_verilog(args):
    from .liberty import make_sky130_like_library
    from .netlist import build_benchmark, write_verilog

    library = make_sky130_like_library()
    design = build_benchmark(args.benchmark, library, scale=args.scale)
    text = write_verilog(design)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_write_sdf(args):
    from .liberty import make_sky130_like_library
    from .netlist import build_benchmark
    from .placement import place_design
    from .routing import route_design
    from .sta import build_timing_graph, run_sta, write_sdf

    library = make_sky130_like_library()
    design = build_benchmark(args.benchmark, library, scale=args.scale)
    placement = place_design(design, seed=args.seed)
    routing = route_design(design, placement)
    graph = build_timing_graph(design)
    result = run_sta(design, placement, routing, graph=graph)
    text = write_sdf(result, design_name=design.name)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_write_spef(args):
    from .liberty import make_sky130_like_library
    from .netlist import build_benchmark
    from .placement import place_design
    from .routing import route_design, write_spef

    library = make_sky130_like_library()
    design = build_benchmark(args.benchmark, library, scale=args.scale)
    placement = place_design(design, seed=args.seed)
    routing = route_design(design, placement)
    text = write_spef(routing, corner=args.corner, design_name=design.name)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_write_liberty(args):
    from .liberty import make_sky130_like_library, write_liberty

    library = make_sky130_like_library()
    text = write_liberty(library, args.corner)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Timing-engine-inspired GNN reproduction (DAC'22)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("flow", help="run place/route/STA on a benchmark")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--clock", type=float, default=None,
                   help="clock period in ps (default: auto-derived)")
    p.set_defaults(func=_cmd_flow)

    p = sub.add_parser("dataset", help="build/cache the benchmark dataset")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=_cmd_dataset)

    p = sub.add_parser("build-dataset",
                       help="build the design suite on a worker pool, "
                            "write-through the artifact store")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: REPRO_WORKERS, i.e. "
                        "serial unless set)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--designs", nargs="*", default=None,
                   help="benchmark subset (default: all 21)")
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the artifact store entirely")
    p.set_defaults(func=_cmd_build_dataset)

    p = sub.add_parser("cache",
                       help="inspect the on-disk artifact store")
    p.add_argument("action", choices=["ls", "clear", "verify"])
    p.add_argument("--cache-dir", default=None,
                   help="cache root; the store lives in its artifacts/ "
                        "subdirectory (default: REPRO_CACHE_DIR)")
    p.add_argument("--kind", default=None,
                   help="restrict `clear` to one artifact kind")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("train", help="train (or load) the timing GNN")
    p.add_argument("--variant", default="full",
                   choices=["full", "cell", "net", "none"])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--epochs", type=int, default=None)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("predict", help="evaluate the model on one design")
    p.add_argument("benchmark")
    p.add_argument("--variant", default="full")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("serve",
                       help="run the HTTP slack-prediction service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--model-variant", default="timing-full",
                   help="registry model to pre-warm (e.g. timing-full, "
                        "net-embedding)")
    p.add_argument("--scale", type=float, default=None,
                   help="design scale (default: REPRO_SCALE)")
    p.add_argument("--epochs", type=int, default=None,
                   help="training epochs if a checkpoint must be trained")
    p.add_argument("--batch-window-ms", type=float, default=2.0)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--workers", type=int,
                   default=int(os.environ.get("REPRO_WORKERS", "0") or 0),
                   help="predictor worker processes; 0 serves in-process "
                        "(default: REPRO_WORKERS)")
    p.add_argument("--watermark", type=int, default=32,
                   help="per-worker admission watermark; past it requests "
                        "are shed with 503")
    p.add_argument("--no-warm", dest="warm", action="store_false",
                   help="skip eager model loading at startup")
    p.set_defaults(func=_cmd_serve, warm=True)

    p = sub.add_parser("bench-serve",
                       help="benchmark the serving layer with concurrent "
                            "clients")
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests-per-client", type=int, default=8)
    p.add_argument("--model-variant", default="timing-full")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--epochs", type=int, default=None)
    p.add_argument("--designs", nargs="*", default=None,
                   help="benchmark names to request (default: first "
                        "--num-designs test designs)")
    p.add_argument("--num-designs", type=int, default=3)
    p.add_argument("--deadline-ms", type=float, default=None)
    p.add_argument("--batch-window-ms", type=float, default=2.0)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--workers", type=int, default=0,
                   help="predictor worker processes; 0 benches the "
                        "in-process service")
    p.add_argument("--watermark", type=int, default=32,
                   help="per-worker admission watermark (503 past it)")
    p.add_argument("--cached", dest="no_cache", action="store_false",
                   help="let requests hit the server result cache "
                        "(default: bypass it so every request runs a "
                        "real model forward)")
    p.add_argument("--no-single-baseline", dest="single_baseline",
                   action="store_false",
                   help="skip the single-process reference phase before "
                        "a pooled run")
    p.add_argument("--warmup-requests", type=int, default=None,
                   help="untimed /predict calls before the timed phase "
                        "(default: one per design; 0 disables)")
    p.add_argument("--bench-json", default="BENCH_serving.json",
                   help="record the run to this JSON file "
                        "('' disables)")
    p.add_argument("--delta", action="store_true",
                   help="also time single-edit /predict/delta requests "
                        "against conventional rebuild-and-forward ECO "
                        "iterations on the largest design")
    p.add_argument("--delta-edits", type=int, default=16,
                   help="number of timed move_cell deltas in the "
                        "--delta phase")
    p.set_defaults(func=_cmd_bench_serve, no_cache=True,
                   single_baseline=True)

    p = sub.add_parser("bench-compute",
                       help="benchmark fused vs. naive kernel backends "
                            "on full-model passes")
    p.add_argument("--designs", nargs="*", default=None,
                   help="benchmark names (default: the --num-designs "
                        "largest designs of the suite)")
    p.add_argument("--num-designs", type=int, default=3)
    p.add_argument("--scale", type=float, default=None,
                   help="design scale (default: REPRO_SCALE)")
    p.add_argument("--reps", type=int, default=3,
                   help="timed passes per (design, backend, stage) cell")
    p.add_argument("--warmup", type=int, default=1,
                   help="untimed passes before timing each cell")
    p.add_argument("--stages", nargs="*",
                   default=["forward", "forward_backward", "train_step"],
                   choices=["forward", "forward_backward", "train_step"])
    p.add_argument("--dtypes", nargs="*", default=["float64", "float32"],
                   choices=["float64", "float32"],
                   help="dtypes the fused backend is timed at (naive "
                        "always runs the float64 reference)")
    p.add_argument("--threads", type=int, default=None,
                   help="compute-thread budget for the run (default: "
                        "REPRO_COMPUTE_THREADS)")
    p.add_argument("--quick", action="store_true",
                   help="smoke mode: largest design only, forward + "
                        "forward_backward, capped scale/reps — the CI "
                        "smoke settings")
    p.add_argument("--bench-json", default="BENCH_compute.json",
                   help="record the run to this JSON file ('' disables)")
    p.set_defaults(func=_cmd_bench_compute)

    p = sub.add_parser("bench",
                       help="bench artefact tooling (`bench diff` gates "
                            "BENCH files against the run ledger)")
    p.add_argument("action", choices=["diff"])
    p.add_argument("--check", action="store_true",
                   help="exit non-zero when any metric regresses past "
                        "the tolerance")
    p.add_argument("--record", action="store_true",
                   help="append the current BENCH payloads to the ledger "
                        "after comparing (start/extend the baseline "
                        "history)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative regression tolerance (default 0.5 = "
                        "50%%)")
    p.add_argument("--compute", default="BENCH_compute.json",
                   help="compute bench artefact ('' skips)")
    p.add_argument("--serving", default="BENCH_serving.json",
                   help="serving bench artefact ('' skips)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("runs",
                       help="inspect the run ledger (REPRO_RUNS_DIR)")
    p.add_argument("action", choices=["ls", "show", "export"])
    p.add_argument("run_id", nargs="?", default=None,
                   help="run id (or unique prefix) for `show`")
    p.add_argument("--kind", default=None,
                   help="filter by kind prefix (train, bench, ...)")
    p.add_argument("-n", "--last", type=int, default=None,
                   help="only the N most recent runs (ls)")
    p.add_argument("-o", "--output", default=None,
                   help="export destination ('-' = stdout)")
    p.set_defaults(func=_cmd_runs)

    p = sub.add_parser("audit",
                       help="inspect the shadow-audit log "
                            "(REPRO_RUNS_DIR/audits.jsonl)")
    p.add_argument("action", choices=["ls", "show"])
    p.add_argument("audit_id", nargs="?", default=None,
                   help="audit id (or unique prefix) for `show`")
    p.add_argument("-n", "--last", type=int, default=None,
                   help="only the N most recent audits (ls)")
    p.add_argument("--path", default=None,
                   help="explicit audit-log path (default: "
                        "REPRO_RUNS_DIR/audits.jsonl)")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser("profile",
                       help="tape-level profile of a full train step "
                            "per kernel backend")
    p.add_argument("--design", default="usbf_device",
                   help="benchmark design to profile on")
    p.add_argument("--backend", default="both",
                   choices=["fused", "naive", "both"])
    p.add_argument("--scale", type=float, default=None,
                   help="design scale (default: REPRO_SCALE)")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the per-op table")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("report",
                       help="render the run-ledger trajectory (HTML "
                            "with --html)")
    p.add_argument("--html", action="store_true",
                   help="write the full static HTML report")
    p.add_argument("-o", "--output", default="report.html",
                   help="HTML destination ('-' = stdout)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("stats",
                       help="print /stats (or /metrics) of a running "
                            "server")
    p.add_argument("--url", default="http://127.0.0.1:8080")
    p.add_argument("--metrics", action="store_true",
                   help="fetch the Prometheus text endpoint instead")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("top",
                       help="live terminal dashboard over a running "
                            "server (/stats + /healthz)")
    p.add_argument("--url", default="http://127.0.0.1:8080")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between refreshes")
    p.add_argument("-n", "--iterations", type=int, default=0,
                   help="frames to draw before exiting (0 = until "
                        "Ctrl-C)")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of redrawing in place")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("trace",
                       help="run a traced flow, or filter an existing "
                            "JSONL trace sink (--export)")
    p.add_argument("benchmark", nargs="?", default=None)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--export", default=None, metavar="SINK",
                   help="render spans from this (possibly rotated) JSONL "
                        "sink instead of running a flow")
    p.add_argument("--trace-id", default=None,
                   help="with --export: only spans of this trace id")
    p.add_argument("-o", "--output", default=None,
                   help="JSONL destination (default: "
                        "trace_<benchmark>.jsonl; with --export, write "
                        "the matching spans there instead of rendering)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("write-verilog", help="export a benchmark netlist")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_write_verilog)

    p = sub.add_parser("write-sdf", help="run the flow, export SDF delays")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_write_sdf)

    p = sub.add_parser("write-spef",
                       help="run place+route, export SPEF parasitics")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("-c", "--corner", default="late",
                   choices=["early", "late"])
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_write_spef)

    p = sub.add_parser("write-liberty", help="export a library corner")
    p.add_argument("-c", "--corner", default="late",
                   choices=["early", "late"])
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_write_liberty)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `repro stats | head`) closed early.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
