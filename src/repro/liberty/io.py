"""Liberty-format writer/parser for the synthetic library.

Emits one ``.lib`` per corner (as real flows do: a fast/early and a
slow/late library) covering the subset this reproduction needs: pin
direction + capacitance, combinational timing arcs with ``timing_sense``
and four 7x7 NLDM tables (cell_rise/cell_fall/rise_transition/
fall_transition), and sequential cells with CK->Q arcs plus setup/hold
constraint values.  :func:`parse_liberty` reads both corners back into a
single :class:`~repro.liberty.library.Library`, round-trip exact.
"""

from __future__ import annotations

import re

import numpy as np

from .cell import CellType, EL_RF, PinSpec, Sense, TimingArc
from .library import Library, WireModel
from .lut import TimingLUT

__all__ = ["write_liberty", "parse_liberty", "LibertyError"]


class LibertyError(ValueError):
    """Raised on malformed liberty text."""


_SENSE_TO_LIB = {Sense.POSITIVE: "positive_unate",
                 Sense.NEGATIVE: "negative_unate",
                 Sense.NON_UNATE: "non_unate"}
_LIB_TO_SENSE = {v: k for k, v in _SENSE_TO_LIB.items()}

_TABLE_KEYS = {("delay", "rise"): "cell_rise",
               ("delay", "fall"): "cell_fall",
               ("slew", "rise"): "rise_transition",
               ("slew", "fall"): "fall_transition"}
_KEY_TO_TABLE = {v: k for k, v in _TABLE_KEYS.items()}


def _fmt_values(arr):
    return ", ".join(f"{v:.6f}" for v in np.asarray(arr).reshape(-1))


def _table_text(name, lut, indent):
    pad = " " * indent
    rows = [f'{pad}{name} (lut7x7) {{',
            f'{pad}  index_1 ("{_fmt_values(lut.slew_axis)}");',
            f'{pad}  index_2 ("{_fmt_values(lut.load_axis)}");',
            f'{pad}  values ("{_fmt_values(lut.values)}");',
            f'{pad}}}']
    return "\n".join(rows)


def write_liberty(library, corner):
    """Serialize one corner of the library as liberty text."""
    if corner not in ("early", "late"):
        raise LibertyError(f"unknown corner {corner!r}")
    out = [f'library ({library.name}_{corner}) {{',
           '  time_unit : "1ps";',
           '  capacitive_load_unit (1, ff);',
           f'  default_input_slew : {library.default_input_slew};']
    for cell in library.cells.values():
        out.append(f'  cell ({cell.name}) {{')
        if cell.is_sequential:
            out.append('    ff (IQ, IQN) { }')
        for pin_spec in cell.pins.values():
            out.append(f'    pin ({pin_spec.name}) {{')
            out.append(f'      direction : {pin_spec.direction};')
            if pin_spec.is_clock:
                out.append('      clock : true;')
            if pin_spec.direction == "input":
                caps = pin_spec.capacitance
                base = 0 if corner == "early" else 2
                out.append(f'      rise_capacitance : {caps[base]:.6f};')
                out.append(f'      fall_capacitance : {caps[base + 1]:.6f};')
            out.append('    }')
        for arc in cell.arcs:
            out.append('    timing () {')
            out.append(f'      related_pin : "{arc.input_pin}";')
            out.append(f'      output_pin : "{arc.output_pin}";')
            out.append(f'      timing_sense : {_SENSE_TO_LIB[arc.sense]};')
            for (kind, transition), key in _TABLE_KEYS.items():
                lut = arc.luts.get((kind, corner, transition))
                if lut is not None:
                    out.append(_table_text(key, lut, 6))
            out.append('    }')
        if cell.is_sequential:
            base = 0 if corner == "early" else 2
            out.append(f'    setup_rising : "{cell.setup[base]:.6f}, '
                       f'{cell.setup[base + 1]:.6f}";')
            out.append(f'    hold_rising : "{cell.hold[base]:.6f}, '
                       f'{cell.hold[base + 1]:.6f}";')
        out.append('  }')
    out.append('}')
    return "\n".join(out) + "\n"


def _parse_numbers(text):
    return np.asarray([float(tok) for tok in
                       re.findall(r"[-+0-9.eE]+", text)])


def parse_liberty(early_text, late_text):
    """Parse the early and late corner libraries back into a Library."""
    cells_data = {}
    lib_name = None
    default_slew = 25.0
    for corner, text in (("early", early_text), ("late", late_text)):
        name_m = re.search(r"library\s*\((\w+)\)", text)
        if not name_m:
            raise LibertyError("missing library declaration")
        lib_name = name_m.group(1).rsplit("_", 1)[0]
        slew_m = re.search(r"default_input_slew\s*:\s*([0-9.]+)", text)
        if slew_m:
            default_slew = float(slew_m.group(1))
        for cell_text, cell_name in _split_cells(text):
            data = cells_data.setdefault(cell_name, {
                "pins": {}, "arcs": {}, "setup": np.zeros(4),
                "hold": np.zeros(4), "sequential": False})
            _parse_cell(cell_text, corner, data)
    library = Library(name=lib_name, wire=WireModel(),
                      default_input_slew=default_slew)
    for cell_name, data in cells_data.items():
        arcs = []
        for (inp, outp), arc_data in data["arcs"].items():
            arcs.append(TimingArc(inp, outp, arc_data["sense"],
                                  arc_data["luts"]))
        library.add(CellType(
            name=cell_name, pins=data["pins"], arcs=arcs,
            is_sequential=data["sequential"],
            setup=data["setup"] if data["sequential"] else None,
            hold=data["hold"] if data["sequential"] else None))
    return library


def _split_cells(text):
    """Yield (cell body text, cell name) for each cell group."""
    for match in re.finditer(r"cell\s*\((\w+)\)\s*\{", text):
        start = match.end()
        depth = 1
        pos = start
        while depth > 0 and pos < len(text):
            ch = text[pos]
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
            pos += 1
        yield text[start:pos - 1], match.group(1)


def _split_groups(text, keyword):
    """Yield bodies (and name args) of `keyword (args) { ... }` groups."""
    pattern = re.compile(rf"{keyword}\s*\(([^)]*)\)\s*\{{")
    for match in pattern.finditer(text):
        start = match.end()
        depth = 1
        pos = start
        while depth > 0 and pos < len(text):
            ch = text[pos]
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
            pos += 1
        yield match.group(1).strip(), text[start:pos - 1]


def _strip_nested_groups(text):
    """Remove brace groups, keeping only this level's attributes."""
    out = []
    depth = 0
    for ch in text:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def _parse_cell(cell_text, corner, data):
    if re.search(r"\bff\s*\(", cell_text):
        data["sequential"] = True
    for pin_name, pin_body in _split_groups(cell_text, "pin"):
        direction_m = re.search(r"direction\s*:\s*(\w+)", pin_body)
        direction = direction_m.group(1) if direction_m else "input"
        spec = data["pins"].setdefault(
            pin_name, PinSpec(pin_name, direction,
                              capacitance=np.zeros(4),
                              is_clock="clock : true" in pin_body))
        if direction == "input":
            rise_m = re.search(r"rise_capacitance\s*:\s*([0-9.eE+-]+)",
                               pin_body)
            fall_m = re.search(r"fall_capacitance\s*:\s*([0-9.eE+-]+)",
                               pin_body)
            base = 0 if corner == "early" else 2
            if rise_m:
                spec.capacitance[base] = float(rise_m.group(1))
            if fall_m:
                spec.capacitance[base + 1] = float(fall_m.group(1))
    for _args, arc_body in _split_groups(cell_text, "timing"):
        related = re.search(r'related_pin\s*:\s*"(\w+)"', arc_body)
        output = re.search(r'output_pin\s*:\s*"(\w+)"', arc_body)
        sense_m = re.search(r"timing_sense\s*:\s*(\w+)", arc_body)
        if not (related and output and sense_m):
            raise LibertyError("incomplete timing group")
        key = (related.group(1), output.group(1))
        arc = data["arcs"].setdefault(
            key, {"sense": _LIB_TO_SENSE[sense_m.group(1)], "luts": {}})
        for lib_key, (kind, transition) in _KEY_TO_TABLE.items():
            for _a, body in _split_groups(arc_body, lib_key):
                idx1 = _parse_numbers(
                    re.search(r'index_1\s*\("([^"]*)"\)', body).group(1))
                idx2 = _parse_numbers(
                    re.search(r'index_2\s*\("([^"]*)"\)', body).group(1))
                values = _parse_numbers(
                    re.search(r'values\s*\("([^"]*)"\)', body,
                              re.S).group(1)).reshape(7, 7)
                arc["luts"][(kind, corner, transition)] = TimingLUT(
                    idx1, idx2, values)
    top = _strip_nested_groups(cell_text)
    base = 0 if corner == "early" else 2
    setup_m = re.search(r'setup_rising\s*:\s*"([^"]*)"', top)
    hold_m = re.search(r'hold_rising\s*:\s*"([^"]*)"', top)
    if setup_m:
        vals = _parse_numbers(setup_m.group(1))
        data["setup"][base:base + 2] = vals
    if hold_m:
        vals = _parse_numbers(hold_m.group(1))
        data["hold"][base:base + 2] = vals
