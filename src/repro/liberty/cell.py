"""Cell, pin and timing-arc models for the synthetic liberty library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .lut import TimingLUT

__all__ = [
    "CORNERS", "TRANSITIONS", "EL_RF",
    "Sense", "TimingArc", "PinSpec", "CellType",
]

# Timing corners, in the fixed order used for all 4-vectors throughout the
# repo and the dataset ("EL/RF" in the paper): (early, rise), (early, fall),
# (late, rise), (late, fall).
CORNERS = ("early", "late")
TRANSITIONS = ("rise", "fall")
EL_RF = tuple((c, t) for c in CORNERS for t in TRANSITIONS)


class Sense:
    """Unateness of a combinational timing arc."""

    POSITIVE = "positive"      # output rise is caused by input rise
    NEGATIVE = "negative"      # output rise is caused by input fall
    NON_UNATE = "non_unate"    # either input transition can cause either


@dataclass
class TimingArc:
    """A characterised input->output arc of a cell.

    ``luts`` maps (kind, corner, transition) -> TimingLUT where kind is
    "delay" or "slew", corner is "early"/"late" and transition is the
    *output* transition.  That is the paper's 8 LUTs per cell arc.
    """

    input_pin: str
    output_pin: str
    sense: str
    luts: dict = field(default_factory=dict)

    def lut(self, kind, corner, transition):
        return self.luts[(kind, corner, transition)]

    def input_transition_for(self, out_transition):
        """Input transitions that can cause ``out_transition``."""
        if self.sense == Sense.POSITIVE:
            return (out_transition,)
        if self.sense == Sense.NEGATIVE:
            return ("fall" if out_transition == "rise" else "rise",)
        return ("rise", "fall")

    def stacked_luts(self):
        """Return (valid, indices, values) arrays in the dataset's 8-LUT order.

        Order: (delay, slew) x (early, late) x (rise, fall) — shape
        valid (8,), indices (8, 14), values (8, 49).
        """
        valid, indices, values = [], [], []
        for kind in ("delay", "slew"):
            for corner in CORNERS:
                for transition in TRANSITIONS:
                    lut = self.luts.get((kind, corner, transition))
                    if lut is None:
                        valid.append(0.0)
                        indices.append(np.zeros(14))
                        values.append(np.zeros(49))
                    else:
                        valid.append(1.0)
                        indices.append(np.concatenate([lut.slew_axis,
                                                       lut.load_axis]))
                        values.append(lut.values.reshape(-1))
        return (np.asarray(valid), np.asarray(indices), np.asarray(values))


@dataclass
class PinSpec:
    """Static properties of a library pin."""

    name: str
    direction: str               # "input" or "output"
    # Capacitance per corner/transition in EL_RF order, fF (inputs only).
    capacitance: np.ndarray = field(
        default_factory=lambda: np.zeros(4))
    is_clock: bool = False


@dataclass
class CellType:
    """A library cell: pins, arcs, and sequential constraints."""

    name: str
    pins: dict                     # name -> PinSpec
    arcs: list                     # list of TimingArc
    is_sequential: bool = False
    # Sequential constraints (ps), per corner-transition in EL_RF order.
    setup: np.ndarray = None
    hold: np.ndarray = None
    function: str = ""             # human-readable logic function
    # False for ECO-only variants (sizing alternatives the synthesis
    # menu must not pick, so benchmark generation stays reproducible).
    use_in_synthesis: bool = True

    @property
    def input_pins(self):
        return [p.name for p in self.pins.values()
                if p.direction == "input" and not p.is_clock]

    @property
    def output_pins(self):
        return [p.name for p in self.pins.values() if p.direction == "output"]

    @property
    def clock_pins(self):
        return [p.name for p in self.pins.values() if p.is_clock]

    def arcs_to(self, output_pin):
        return [a for a in self.arcs if a.output_pin == output_pin]

    def arc(self, input_pin, output_pin):
        for a in self.arcs:
            if a.input_pin == input_pin and a.output_pin == output_pin:
                return a
        raise KeyError(f"no arc {input_pin}->{output_pin} in {self.name}")

    def pin_capacitance(self, pin_name):
        return self.pins[pin_name].capacitance
