"""Synthetic SkyWater-130-like standard cell library.

The reproduction has no access to the real SkyWater PDK, so this module
characterises a realistic cell set analytically: every combinational arc
gets 8 NLDM LUTs (delay + output slew, early/late corners, rise/fall
output transitions) on 7x7 slew/load grids, with per-cell randomised
coefficients so different cells genuinely have different surfaces.

Units: ps, kOhm, fF, um (1 kOhm x 1 fF = 1 ps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cell import CellType, EL_RF, PinSpec, Sense, TimingArc
from .lut import LUT_SIZE, TimingLUT

__all__ = ["Library", "WireModel", "make_sky130_like_library"]

# NLDM index grids: input slew 5..320 ps, output load 1..180 fF, log spaced.
SLEW_AXIS = np.geomspace(5.0, 320.0, LUT_SIZE)
LOAD_AXIS = np.geomspace(1.0, 180.0, LUT_SIZE)

# Derating of the early corner relative to late (fast silicon / low V_t).
EARLY_DERATE = 0.82


@dataclass
class WireModel:
    """Per-unit-length wire parasitics with early/late derating.

    The per-um values are scaled up relative to physical SkyWater 130nm
    because the synthetic benchmarks are ~1/50-size and their dies
    correspondingly smaller: with signoff parasitics, every net would be
    electrically invisible.  These values restore the paper's regime,
    where net delay is tens of ps and a meaningful fraction of stage
    delay — the regime the net-delay prediction task (Table 4) lives in.
    """

    resistance_per_um: float = 0.020     # kOhm / um
    capacitance_per_um: float = 0.50     # fF / um
    early_derate: float = 0.88
    late_derate: float = 1.0

    def unit_r(self, corner):
        derate = self.early_derate if corner == "early" else self.late_derate
        return self.resistance_per_um * derate

    def unit_c(self, corner):
        derate = self.early_derate if corner == "early" else self.late_derate
        return self.capacitance_per_um * derate


@dataclass
class Library:
    """A collection of cell types plus the interconnect/wire model."""

    name: str
    cells: dict = field(default_factory=dict)
    wire: WireModel = field(default_factory=WireModel)
    default_input_slew: float = 25.0     # ps, driven at primary inputs
    clock_period_guess: float = 4000.0   # ps, refined per design by STA

    def add(self, cell):
        self.cells[cell.name] = cell

    def __getitem__(self, name):
        return self.cells[name]

    def __contains__(self, name):
        return name in self.cells

    @property
    def combinational_cells(self):
        return [c for c in self.cells.values() if not c.is_sequential]

    @property
    def sequential_cells(self):
        return [c for c in self.cells.values() if c.is_sequential]

    def cells_with_inputs(self, n_inputs):
        return [c for c in self.combinational_cells
                if len(c.input_pins) == n_inputs]


def _arc_luts(rng, drive, inversion_speedup=1.0):
    """Create the 8 LUTs of one timing arc.

    ``drive`` scales the load sensitivity (X2 drives twice the load of X1
    at the same delay).  Coefficients are jittered per arc so every cell
    type presents a distinct surface to the learned interpolator.
    """
    base_intrinsic = rng.uniform(18.0, 55.0) * inversion_speedup
    load_coeff = rng.uniform(1.6, 2.6) / drive
    slew_coeff = rng.uniform(0.10, 0.22)
    cross = rng.uniform(0.05, 0.18) / np.sqrt(drive)

    luts = {}
    for corner in ("early", "late"):
        corner_scale = EARLY_DERATE if corner == "early" else 1.0
        for transition in ("rise", "fall"):
            # Rise is typically slower than fall for NMOS-strong cells.
            tran_scale = 1.0 if transition == "rise" else rng.uniform(0.82, 0.95)
            scale = corner_scale * tran_scale
            luts[("delay", corner, transition)] = TimingLUT.from_model(
                SLEW_AXIS, LOAD_AXIS,
                intrinsic=base_intrinsic * scale,
                load_coeff=load_coeff * scale,
                slew_coeff=slew_coeff * scale,
                cross_coeff=cross * scale)
            # Output slew: small intrinsic, strong load dependence, weak
            # input-slew feedthrough.
            luts[("slew", corner, transition)] = TimingLUT.from_model(
                SLEW_AXIS, LOAD_AXIS,
                intrinsic=rng.uniform(6.0, 14.0) * scale,
                load_coeff=load_coeff * rng.uniform(0.9, 1.3) * scale,
                slew_coeff=rng.uniform(0.05, 0.12) * scale,
                cross_coeff=cross * 0.5 * scale)
    return luts


def _input_cap(rng, drive):
    """Pin capacitance 4-vector (EL_RF order), fF; scales with drive."""
    base = rng.uniform(2.2, 5.0) * drive
    caps = []
    for corner, transition in EL_RF:
        jitter = rng.uniform(0.95, 1.05)
        derate = 0.92 if corner == "early" else 1.0
        caps.append(base * jitter * derate)
    return np.asarray(caps)


def _comb_cell(rng, name, n_inputs, sense, drive=1.0, function="",
               use_in_synthesis=True):
    """Build a combinational cell with ``n_inputs`` inputs and one output."""
    pins = {}
    for i in range(n_inputs):
        pin_name = chr(ord("A") + i)
        pins[pin_name] = PinSpec(pin_name, "input",
                                 capacitance=_input_cap(rng, drive))
    pins["Y"] = PinSpec("Y", "output")
    arcs = []
    speedup = 0.85 if sense == Sense.NEGATIVE else 1.0
    for i in range(n_inputs):
        pin_name = chr(ord("A") + i)
        # Later inputs are usually closer to the output node -> faster.
        pos_speedup = speedup * (1.0 - 0.06 * i)
        arcs.append(TimingArc(pin_name, "Y", sense,
                              _arc_luts(rng, drive, pos_speedup)))
    return CellType(name=name, pins=pins, arcs=arcs, function=function,
                    use_in_synthesis=use_in_synthesis)


def _dff_cell(rng, name, drive=1.0):
    """Build a D flip-flop: CK -> Q launch arc plus setup/hold on D."""
    pins = {
        "D": PinSpec("D", "input", capacitance=_input_cap(rng, drive)),
        "CK": PinSpec("CK", "input", capacitance=_input_cap(rng, 0.8),
                      is_clock=True),
        "Q": PinSpec("Q", "output"),
    }
    arcs = [TimingArc("CK", "Q", Sense.POSITIVE, _arc_luts(rng, drive, 1.1))]
    setup = np.asarray([rng.uniform(28.0, 40.0) for _ in EL_RF])
    hold = np.asarray([rng.uniform(4.0, 10.0) for _ in EL_RF])
    return CellType(name=name, pins=pins, arcs=arcs, is_sequential=True,
                    setup=setup, hold=hold, function="DFF")


def make_sky130_like_library(seed=2022):
    """Create the deterministic synthetic library used by all experiments."""
    rng = np.random.default_rng(seed)
    lib = Library(name="synth_sky130")
    specs = [
        ("INV_X1", 1, Sense.NEGATIVE, 1.0, "Y=!A"),
        ("INV_X2", 1, Sense.NEGATIVE, 2.0, "Y=!A"),
        ("INV_X4", 1, Sense.NEGATIVE, 4.0, "Y=!A"),
        ("BUF_X1", 1, Sense.POSITIVE, 1.0, "Y=A"),
        ("BUF_X2", 1, Sense.POSITIVE, 2.0, "Y=A"),
        ("BUF_X4", 1, Sense.POSITIVE, 4.0, "Y=A"),
        ("NAND2_X1", 2, Sense.NEGATIVE, 1.0, "Y=!(A&B)"),
        ("NAND3_X1", 3, Sense.NEGATIVE, 1.0, "Y=!(A&B&C)"),
        ("NOR2_X1", 2, Sense.NEGATIVE, 1.0, "Y=!(A|B)"),
        ("NOR3_X1", 3, Sense.NEGATIVE, 1.0, "Y=!(A|B|C)"),
        ("AND2_X1", 2, Sense.POSITIVE, 1.0, "Y=A&B"),
        ("AND3_X1", 3, Sense.POSITIVE, 1.0, "Y=A&B&C"),
        ("OR2_X1", 2, Sense.POSITIVE, 1.0, "Y=A|B"),
        ("OR3_X1", 3, Sense.POSITIVE, 1.0, "Y=A|B|C"),
        ("XOR2_X1", 2, Sense.NON_UNATE, 1.0, "Y=A^B"),
        ("XNOR2_X1", 2, Sense.NON_UNATE, 1.0, "Y=!(A^B)"),
        ("MUX2_X1", 3, Sense.NON_UNATE, 1.0, "Y=S?B:A"),
        ("AOI21_X1", 3, Sense.NEGATIVE, 1.0, "Y=!((A&B)|C)"),
        ("OAI21_X1", 3, Sense.NEGATIVE, 1.0, "Y=!((A|B)&C)"),
    ]
    for name, n_in, sense, drive, function in specs:
        lib.add(_comb_cell(rng, name, n_in, sense, drive, function))
    lib.add(_dff_cell(rng, "DFF_X1", 1.0))
    lib.add(_dff_cell(rng, "DFF_X2", 2.0))
    # ECO-only sizing variants: appended after the synthesis cells (so
    # their RNG draws don't perturb the base library) and excluded from
    # the synthesis menu (so benchmark generation is unchanged).  Gate
    # sizing swaps between these and the X1 originals.
    eco_specs = [
        ("NAND2_X2", 2, Sense.NEGATIVE, 2.0, "Y=!(A&B)"),
        ("NAND3_X2", 3, Sense.NEGATIVE, 2.0, "Y=!(A&B&C)"),
        ("NOR2_X2", 2, Sense.NEGATIVE, 2.0, "Y=!(A|B)"),
        ("NOR3_X2", 3, Sense.NEGATIVE, 2.0, "Y=!(A|B|C)"),
        ("AND2_X2", 2, Sense.POSITIVE, 2.0, "Y=A&B"),
        ("AND3_X2", 3, Sense.POSITIVE, 2.0, "Y=A&B&C"),
        ("OR2_X2", 2, Sense.POSITIVE, 2.0, "Y=A|B"),
        ("OR3_X2", 3, Sense.POSITIVE, 2.0, "Y=A|B|C"),
        ("XOR2_X2", 2, Sense.NON_UNATE, 2.0, "Y=A^B"),
        ("XNOR2_X2", 2, Sense.NON_UNATE, 2.0, "Y=!(A^B)"),
        ("MUX2_X2", 3, Sense.NON_UNATE, 2.0, "Y=S?B:A"),
        ("AOI21_X2", 3, Sense.NEGATIVE, 2.0, "Y=!((A&B)|C)"),
        ("OAI21_X2", 3, Sense.NEGATIVE, 2.0, "Y=!((A|B)&C)"),
    ]
    for name, n_in, sense, drive, function in eco_specs:
        lib.add(_comb_cell(rng, name, n_in, sense, drive, function,
                           use_in_synthesis=False))
    return lib


def sizing_alternatives(library, cell_type):
    """Pin-compatible drive variants of ``cell_type``, sorted by drive.

    Variants share the name prefix before the ``_X<drive>`` suffix.
    """
    prefix = cell_type.name.rsplit("_X", 1)[0]
    variants = []
    for cell in library.cells.values():
        if cell.name.rsplit("_X", 1)[0] != prefix:
            continue
        if set(cell.pins) != set(cell_type.pins):
            continue
        if cell.is_sequential != cell_type.is_sequential:
            continue
        variants.append(cell)
    return sorted(variants,
                  key=lambda c: float(c.name.rsplit("_X", 1)[1]))
