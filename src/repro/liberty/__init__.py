"""Synthetic NLDM cell library (stand-in for the SkyWater 130nm PDK)."""

from .lut import TimingLUT, LUT_SIZE
from .cell import CORNERS, TRANSITIONS, EL_RF, Sense, TimingArc, PinSpec, CellType
from .library import (Library, WireModel, make_sky130_like_library,
                      sizing_alternatives, SLEW_AXIS, LOAD_AXIS)
from .io import write_liberty, parse_liberty, LibertyError

__all__ = [
    "TimingLUT", "LUT_SIZE",
    "CORNERS", "TRANSITIONS", "EL_RF",
    "Sense", "TimingArc", "PinSpec", "CellType",
    "Library", "WireModel", "make_sky130_like_library",
    "sizing_alternatives",
    "SLEW_AXIS", "LOAD_AXIS",
    "write_liberty", "parse_liberty", "LibertyError",
]
