"""Non-linear delay model (NLDM) look-up tables.

SkyWater130's liberty files characterise each cell arc with 7x7 tables of
delay and output slew indexed by input slew and output load.  The STA
engine interpolates these bilinearly, exactly like OpenSTA; the GNN
consumes the raw index vectors and value matrices as edge features
(Table 3 of the paper: 8 LUTs per arc, 7+7 indices, 7x7 values).
"""

from __future__ import annotations

import numpy as np

__all__ = ["TimingLUT", "LUT_SIZE"]

LUT_SIZE = 7


class TimingLUT:
    """A 2-D look-up table ``values[slew_index, load_index]``.

    Parameters
    ----------
    slew_axis : (7,) input-transition index values, strictly increasing (ps).
    load_axis : (7,) output-capacitance index values, strictly increasing (fF).
    values : (7, 7) table values (ps).
    """

    __slots__ = ("slew_axis", "load_axis", "values")

    def __init__(self, slew_axis, load_axis, values):
        self.slew_axis = np.asarray(slew_axis, dtype=np.float64)
        self.load_axis = np.asarray(load_axis, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.slew_axis.shape != (LUT_SIZE,) or self.load_axis.shape != (LUT_SIZE,):
            raise ValueError("LUT axes must have 7 entries")
        if self.values.shape != (LUT_SIZE, LUT_SIZE):
            raise ValueError("LUT values must be 7x7")
        if np.any(np.diff(self.slew_axis) <= 0) or np.any(np.diff(self.load_axis) <= 0):
            raise ValueError("LUT axes must be strictly increasing")

    def lookup(self, slew, load):
        """Bilinear interpolation (with linear extrapolation at the edges).

        ``slew`` and ``load`` may be scalars or same-shaped arrays.
        """
        slew = np.asarray(slew, dtype=np.float64)
        load = np.asarray(load, dtype=np.float64)
        si = np.clip(np.searchsorted(self.slew_axis, slew) - 1, 0, LUT_SIZE - 2)
        li = np.clip(np.searchsorted(self.load_axis, load) - 1, 0, LUT_SIZE - 2)
        s0, s1 = self.slew_axis[si], self.slew_axis[si + 1]
        l0, l1 = self.load_axis[li], self.load_axis[li + 1]
        ts = (slew - s0) / (s1 - s0)
        tl = (load - l0) / (l1 - l0)
        v00 = self.values[si, li]
        v01 = self.values[si, li + 1]
        v10 = self.values[si + 1, li]
        v11 = self.values[si + 1, li + 1]
        top = v00 * (1 - tl) + v01 * tl
        bot = v10 * (1 - tl) + v11 * tl
        return top * (1 - ts) + bot * ts

    def scaled(self, factor):
        """Return a new LUT with all values multiplied by ``factor``."""
        return TimingLUT(self.slew_axis, self.load_axis, self.values * factor)

    @staticmethod
    def from_model(slew_axis, load_axis, intrinsic, load_coeff, slew_coeff,
                   cross_coeff=0.0):
        """Build a LUT from an analytic delay model.

        value(s, c) = intrinsic + load_coeff*c + slew_coeff*s
                      + cross_coeff*sqrt(s*c)

        This is how the synthetic library characterises cells: the model is
        mildly non-linear (the sqrt cross term), so bilinear interpolation
        and the GNN's learned interpolation both have real work to do.
        """
        s = np.asarray(slew_axis)[:, None]
        c = np.asarray(load_axis)[None, :]
        values = intrinsic + load_coeff * c + slew_coeff * s + \
            cross_coeff * np.sqrt(s * c)
        return TimingLUT(slew_axis, load_axis, values)
