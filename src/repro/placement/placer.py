"""Placement: quadratic (force-directed) global placement + grid legalization.

The paper's inputs are *placed* designs (DREAMPlace/RePlAce-class academic
placers inside OpenROAD).  This module provides the equivalent substrate:

1. ports are pinned around the die boundary;
2. cells iterate to the weighted barycenter of their net neighbours
   (Jacobi relaxation of the star-model quadratic program);
3. a grid legalizer spreads cells to unique sites, preserving the
   relative order found by the quadratic solve.

The result is a placement where connected cells are physically close, so
routed wirelength — and therefore timing — is a learnable function of pin
coordinates, which is exactly the structure the paper's models exploit.
"""

from __future__ import annotations

import zlib

import numpy as np

from .die import Die

__all__ = ["Placement", "place_design"]


class Placement:
    """Pin and cell coordinates for a design on a die."""

    def __init__(self, design, die, cell_xy, port_xy):
        self.design = design
        self.die = die
        self.cell_xy = cell_xy          # (num_cells, 2)
        self.port_xy = port_xy          # (num_ports, 2)
        self.pin_xy = self._pin_coordinates()

    def _pin_offset(self, pin):
        """Deterministic small offset of a pin within its cell footprint.

        Uses crc32, not ``hash()``: string hashing is randomized per
        process (PYTHONHASHSEED), and pin offsets must be bit-identical
        across processes for parallel dataset builds and artifact-cache
        fingerprints to agree with serial ones.
        """
        tag = f"{pin.cell.cell_type.name}/{pin.lib_pin}".encode()
        h = zlib.crc32(tag) & 0xFFFF
        dx = (h % 16) / 16.0 * 2.0 - 1.0
        dy = ((h // 16) % 16) / 16.0 * 2.0 - 1.0
        return np.asarray([dx, dy])

    def _pin_coordinates(self):
        design = self.design
        cell_index = {id(c): i for i, c in enumerate(design.cells)}
        port_index = {p.index: i for i, p in enumerate(design.ports)}
        xy = np.zeros((design.num_pins, 2))
        for pin in design.pins:
            if pin.is_port:
                xy[pin.index] = self.port_xy[port_index[pin.index]]
            else:
                base = self.cell_xy[cell_index[id(pin.cell)]]
                xy[pin.index] = base + self._pin_offset(pin)
        return self.die.clamp(xy)


def _boundary_positions(n, die):
    """Evenly distribute ``n`` points around the die perimeter."""
    perimeter = 2.0 * (die.width + die.height)
    out = np.zeros((n, 2))
    for i in range(n):
        d = (i + 0.5) / n * perimeter
        if d < die.width:
            out[i] = (d, 0.0)
        elif d < die.width + die.height:
            out[i] = (die.width, d - die.width)
        elif d < 2 * die.width + die.height:
            out[i] = (2 * die.width + die.height - d, die.height)
        else:
            out[i] = (0.0, perimeter - d)
    return out


def _star_neighbours(design, cell_index, port_index, net_weights=None):
    """For each movable cell: connected (cell ids, port ids, weights).

    ``net_weights`` (net name -> weight, default 1.0) implements
    timing-driven placement: critical nets pull their cells together
    more strongly in the quadratic solve.
    """
    cell_cells = [[] for _ in design.cells]
    cell_ports = [[] for _ in design.cells]
    cell_wc = [[] for _ in design.cells]
    cell_wp = [[] for _ in design.cells]
    for net in design.nets:
        weight = 1.0 if net_weights is None else \
            float(net_weights.get(net.name, 1.0))
        members_c, members_p = set(), set()
        for pin in net.pins:
            if pin.is_port:
                members_p.add(port_index[pin.index])
            elif not pin.is_clock:
                members_c.add(cell_index[id(pin.cell)])
        for c in members_c:
            others = members_c - {c}
            cell_cells[c].extend(others)
            cell_wc[c].extend([weight] * len(others))
            cell_ports[c].extend(members_p)
            cell_wp[c].extend([weight] * len(members_p))
    return cell_cells, cell_ports, cell_wc, cell_wp


def _legalize(xy, die, pitch):
    """Spread cells onto unique grid sites, preserving relative order."""
    n = len(xy)
    if n == 0:
        return xy
    n_cols = max(1, int(die.width // pitch))
    n_rows = max(1, int(die.height // pitch))
    while n_cols * n_rows < n:
        pitch *= 0.8
        n_cols = max(1, int(die.width // pitch))
        n_rows = max(1, int(die.height // pitch))
    per_col = int(np.ceil(n / n_cols))
    per_col = min(per_col, n_rows)
    while per_col * n_cols < n:
        per_col += 1
    order_x = np.argsort(xy[:, 0], kind="stable")
    out = np.zeros_like(xy)
    for col in range(n_cols):
        members = order_x[col * per_col:(col + 1) * per_col]
        if len(members) == 0:
            break
        members = members[np.argsort(xy[members, 1], kind="stable")]
        x = (col + 0.5) * die.width / n_cols
        ys = (np.arange(len(members)) + 0.5) * die.height / max(len(members), 1)
        out[members, 0] = x
        out[members, 1] = ys
    return out


def place_design(design, seed=0, iterations=32, pitch=6.0, utilization=0.7,
                 net_weights=None):
    """Place ``design``; returns a :class:`Placement`.

    Deterministic given ``seed``.  ``iterations`` controls the quadratic
    relaxation; 32 is ample for the benchmark sizes used here.
    ``net_weights`` (net name -> weight) enables timing-driven
    placement: heavier nets contract more (see repro.opt).
    """
    rng = np.random.default_rng(seed)
    n_cells = len(design.cells)
    die = Die.for_cell_count(max(n_cells, 16), pitch=pitch,
                             utilization=utilization)
    cell_index = {id(c): i for i, c in enumerate(design.cells)}
    port_index = {p.index: i for i, p in enumerate(design.ports)}
    port_xy = _boundary_positions(len(design.ports), die)
    cell_xy = rng.uniform([0, 0], [die.width, die.height], size=(n_cells, 2))

    cell_cells, cell_ports, cell_wc, cell_wp = _star_neighbours(
        design, cell_index, port_index, net_weights=net_weights)
    weights_c = [np.asarray(w) for w in cell_wc]
    weights_p = [np.asarray(w) for w in cell_wp]
    for _ in range(iterations):
        new_xy = cell_xy.copy()
        for c in range(n_cells):
            neigh_c = cell_cells[c]
            neigh_p = cell_ports[c]
            total = (weights_c[c].sum() if len(neigh_c) else 0.0) + \
                    (weights_p[c].sum() if len(neigh_p) else 0.0)
            if total <= 0:
                continue
            acc = np.zeros(2)
            if neigh_c:
                acc += (cell_xy[neigh_c] * weights_c[c][:, None]).sum(axis=0)
            if neigh_p:
                acc += (port_xy[neigh_p] * weights_p[c][:, None]).sum(axis=0)
            new_xy[c] = acc / total
        cell_xy = new_xy
    # Tiny jitter breaks exact coincidence before legalization.
    cell_xy += rng.normal(scale=0.25, size=cell_xy.shape)
    cell_xy = _legalize(die.clamp(cell_xy), die, pitch)
    return Placement(design, die, cell_xy, port_xy)
