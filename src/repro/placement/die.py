"""Die area and row geometry for placement."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Die"]


@dataclass(frozen=True)
class Die:
    """A rectangular die, origin at (0, 0), dimensions in um."""

    width: float
    height: float

    @staticmethod
    def for_cell_count(n_cells, pitch=6.0, utilization=0.7):
        """Size a square die so ``n_cells`` fit at the given utilization."""
        area = n_cells * pitch * pitch / utilization
        side = float(np.sqrt(area))
        return Die(width=side, height=side)

    def clamp(self, xy):
        """Clamp (N, 2) coordinates into the die."""
        xy = np.asarray(xy, dtype=np.float64)
        out = xy.copy()
        out[..., 0] = np.clip(out[..., 0], 0.0, self.width)
        out[..., 1] = np.clip(out[..., 1], 0.0, self.height)
        return out

    def boundary_distances(self, xy):
        """Distances to the 4 boundaries (left, right, bottom, top), (N, 4)."""
        xy = np.asarray(xy, dtype=np.float64)
        return np.stack([xy[..., 0], self.width - xy[..., 0],
                         xy[..., 1], self.height - xy[..., 1]], axis=-1)

    def contains(self, xy, tol=1e-9):
        xy = np.asarray(xy)
        return bool(np.all(xy[..., 0] >= -tol) and
                    np.all(xy[..., 0] <= self.width + tol) and
                    np.all(xy[..., 1] >= -tol) and
                    np.all(xy[..., 1] <= self.height + tol))
