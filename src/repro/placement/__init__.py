"""Placement substrate: die model, quadratic placer, wirelength metrics."""

from .die import Die
from .placer import Placement, place_design
from .hpwl import net_hpwl, total_hpwl, net_bounding_box

__all__ = ["Die", "Placement", "place_design",
           "net_hpwl", "total_hpwl", "net_bounding_box"]
