"""Wirelength metrics over a placement."""

from __future__ import annotations

import numpy as np

__all__ = ["net_hpwl", "total_hpwl", "net_bounding_box"]


def net_bounding_box(net, pin_xy):
    """(xmin, ymin, xmax, ymax) of a net's pins."""
    idx = [p.index for p in net.pins]
    xy = pin_xy[idx]
    return (xy[:, 0].min(), xy[:, 1].min(), xy[:, 0].max(), xy[:, 1].max())


def net_hpwl(net, pin_xy):
    """Half-perimeter wirelength of one net (um)."""
    x0, y0, x1, y1 = net_bounding_box(net, pin_xy)
    return float((x1 - x0) + (y1 - y0))


def total_hpwl(design, pin_xy):
    """Sum of HPWL over all nets — the surrogate analytic placers optimize."""
    return float(sum(net_hpwl(net, pin_xy) for net in design.nets
                     if net.degree >= 2))
