"""Online prediction-quality monitoring: shadow-STA audits and drift.

Latency and throughput observability (metrics/tracing/fleet) say whether
the service is *fast*; nothing so far said whether it is still *right*.
This module closes that gap with three pieces:

* **Shadow-STA auditing** — :class:`QualityMonitor` samples a
  configurable fraction of served predictions (``REPRO_AUDIT_RATE``,
  default 0 = off) and, on a background thread, compares the served
  arrival times against the ground-truth STA labels the graph extraction
  already computed.  The request path only pays for one array copy and a
  non-blocking queue put; everything else — endpoint metrics, counters,
  the JSONL audit log — happens off-path.  A token-bucket budget
  (``REPRO_AUDIT_BUDGET`` audits/minute) and a bounded queue
  (drop-on-full) keep the auditor from ever becoming the bottleneck.
* **Endpoint accuracy metrics** — audits call the same
  :func:`repro.training.evaluate.endpoint_metrics_for` used by offline
  evaluation, so the online numbers and the run-ledger numbers are
  identical for the same (model, design) — differentially tested.
* **Feature-drift detection** — :class:`FeatureProfile` captures
  per-channel decile histograms of ``HeteroGraph`` node features at
  train time (stored as a ``.profile.json`` sidecar next to the model
  checkpoint); :class:`DriftTracker` accumulates the served feature
  distribution online and scores the divergence with a PSI (population
  stability index) per channel.  Scores above ``REPRO_DRIFT_THRESHOLD``
  raise alert counters and structured-log events.

The audit log (``audits.jsonl`` under ``REPRO_RUNS_DIR``) follows the
run-ledger discipline: one atomic ``O_APPEND`` write per record,
corrupt-line-tolerant reads, and rotation to ``<path>.1`` once
``REPRO_AUDIT_MAX_LINES`` lines accumulate (mirroring
``REPRO_TRACE_MAX_LINES``).
"""

from __future__ import annotations

import json
import os
import queue
import random
import threading
import time
from collections import deque

import numpy as np

from .logging import get_logger
from .runs import default_runs_dir, new_run_id

__all__ = ["FeatureProfile", "DriftTracker", "AuditLog", "QualityMonitor",
           "AccuracySlo", "audit_rate", "drift_threshold",
           "default_audit_log_path"]

_log = get_logger("repro.obs.quality")

AUDIT_LOG_NAME = "audits.jsonl"


def _env_float(name, default):
    try:
        return float(os.environ.get(name, default) or default)
    except (TypeError, ValueError):
        return float(default)


def audit_rate():
    """Fraction of served requests to shadow-audit (``REPRO_AUDIT_RATE``)."""
    return min(max(_env_float("REPRO_AUDIT_RATE", 0.0), 0.0), 1.0)


def drift_threshold():
    """PSI score above which drift alerts fire (``REPRO_DRIFT_THRESHOLD``)."""
    return _env_float("REPRO_DRIFT_THRESHOLD", 0.25)


def default_audit_log_path(root=None):
    return os.path.join(root or default_runs_dir(), AUDIT_LOG_NAME)


# -- feature-drift reference profiles --------------------------------------------
class FeatureProfile:
    """Per-channel reference distribution of extracted node features.

    Captured once from the training graphs: per-channel count/mean/std
    plus decile bin edges and reference bin probabilities.  Serialized
    as a JSON sidecar next to the model checkpoint so a warm registry
    reload gets the same reference the model was trained against.
    """

    def __init__(self, mean, std, edges, probs, count):
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        self.edges = np.asarray(edges, dtype=np.float64)    # (C, bins+1)
        self.probs = np.asarray(probs, dtype=np.float64)    # (C, bins)
        self.count = int(count)

    @property
    def num_channels(self):
        return self.edges.shape[0]

    @property
    def bins(self):
        return self.edges.shape[1] - 1

    @classmethod
    def from_graphs(cls, graphs, bins=10):
        """Profile the pooled node features of a set of graphs."""
        X = np.concatenate(
            [np.asarray(g.node_features, dtype=np.float64) for g in graphs],
            axis=0)
        qs = np.linspace(0.0, 1.0, int(bins) + 1)
        edges = np.quantile(X, qs, axis=0).T
        profile = cls(X.mean(axis=0), X.std(axis=0), edges,
                      np.zeros((edges.shape[0], int(bins))), X.shape[0])
        counts = profile.bin_counts(X)
        totals = np.maximum(counts.sum(axis=1, keepdims=True), 1.0)
        profile.probs = counts / totals
        return profile

    def bin_counts(self, features):
        """Observed per-channel bin counts of a feature matrix, (C, bins).

        Binning uses each channel's *inner* edges, so every value lands
        in some bin (open-ended extremes).  A constant channel has all
        inner edges equal: reference and observed mass both collapse
        into one bin and its PSI is exactly zero — no special-casing.
        """
        X = np.asarray(features, dtype=np.float64)
        counts = np.empty((self.num_channels, self.bins), dtype=np.float64)
        for c in range(self.num_channels):
            idx = np.searchsorted(self.edges[c, 1:-1], X[:, c],
                                  side="right")
            counts[c] = np.bincount(idx, minlength=self.bins)[:self.bins]
        return counts

    def psi(self, observed_counts, eps=1e-4):
        """Per-channel PSI of observed counts vs. the reference, (C,)."""
        obs = np.asarray(observed_counts, dtype=np.float64)
        totals = np.maximum(obs.sum(axis=1, keepdims=True), 1.0)
        q = np.clip(obs / totals, eps, None)
        p = np.clip(self.probs, eps, None)
        q = q / q.sum(axis=1, keepdims=True)
        p = p / p.sum(axis=1, keepdims=True)
        return ((q - p) * np.log(q / p)).sum(axis=1)

    # -- persistence ------------------------------------------------------------
    def to_dict(self):
        return {"mean": self.mean.tolist(), "std": self.std.tolist(),
                "edges": self.edges.tolist(), "probs": self.probs.tolist(),
                "count": self.count}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["mean"], payload["std"], payload["edges"],
                   payload["probs"], payload["count"])

    def save(self, path):
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path):
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class DriftTracker:
    """Accumulates served feature histograms against one reference."""

    def __init__(self, profile):
        self.profile = profile
        self._counts = np.zeros_like(profile.probs)
        self._graphs = 0
        self._lock = threading.Lock()

    def observe(self, features):
        counts = self.profile.bin_counts(features)
        with self._lock:
            self._counts += counts
            self._graphs += 1

    def score(self):
        """``{max, mean, graphs, channels}`` PSI summary (NaN-free)."""
        with self._lock:
            counts = self._counts.copy()
            graphs = self._graphs
        if graphs == 0:
            return {"max": 0.0, "mean": 0.0, "graphs": 0, "channels": []}
        psi = self.profile.psi(counts)
        return {"max": float(psi.max()), "mean": float(psi.mean()),
                "graphs": graphs,
                "channels": [round(float(v), 6) for v in psi]}


# -- the audit log ---------------------------------------------------------------
def _count_lines(path):
    try:
        with open(path, "rb") as fh:
            return sum(chunk.count(b"\n")
                       for chunk in iter(lambda: fh.read(1 << 20), b""))
    except OSError:
        return 0


class AuditLog:
    """Rotated, corrupt-tolerant JSONL log of shadow-audit records.

    Same write discipline as the run ledger (one atomic ``O_APPEND``
    write per record) and the same rotation contract as trace sinks:
    at ``max_lines`` (``REPRO_AUDIT_MAX_LINES``, default 100000) the
    file moves to ``<path>.1`` and writing restarts.
    """

    def __init__(self, path=None, max_lines=None):
        self.path = path or default_audit_log_path()
        if max_lines is None:
            max_lines = int(os.environ.get("REPRO_AUDIT_MAX_LINES",
                                           100000) or 0) or None
        self.max_lines = max_lines
        self._lock = threading.Lock()
        self._lines = None   # counted lazily on first append

    def append(self, record):
        """Append one audit record; returns the stamped record."""
        record = dict(record)
        record.setdefault("audit_id", new_run_id("audit"))
        record.setdefault(
            "recorded_at",
            time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()))
        line = (json.dumps(record, default=str) + "\n").encode()
        with self._lock:
            if self._lines is None:
                self._lines = _count_lines(self.path)
            if self.max_lines and self._lines >= self.max_lines:
                try:
                    os.replace(self.path, self.path + ".1")
                except OSError:
                    pass
                self._lines = 0
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
            self._lines += 1
        return record

    def scan(self):
        """(records, corrupt_line_count), oldest first, bad lines skipped."""
        records, corrupt = [], 0
        try:
            fh = open(self.path, encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return records, corrupt
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    corrupt += 1
                    continue
                if not isinstance(record, dict) or "audit_id" not in record:
                    corrupt += 1
                    continue
                records.append(record)
        return records, corrupt

    def get(self, audit_id):
        """The record with ``audit_id`` (or a unique prefix), or None."""
        exact, prefixed = None, []
        for record in self.scan()[0]:
            if record["audit_id"] == audit_id:
                exact = record
            elif str(record["audit_id"]).startswith(audit_id):
                prefixed.append(record)
        if exact is not None:
            return exact
        return prefixed[-1] if prefixed else None


# -- accuracy SLO ----------------------------------------------------------------
class AccuracySlo:
    """Rolling good/bad window against a slack-MAE objective (in ps).

    The accuracy sibling of the latency :class:`~.fleet.SloTracker`: an
    audit is *good* when its worst-slack MAE stays within
    ``REPRO_SLO_SLACK_MAE_PS`` (default 50 ps) over the last
    ``REPRO_SLO_ACCURACY_WINDOW`` audits (default 256).  ``ok()`` trips
    once the good ratio falls below ``REPRO_SLO_ACCURACY_RATIO``
    (default 0.9) — surfaced as ``degraded`` by ``/healthz``.
    """

    def __init__(self, objective_ps=None, window=None, min_ratio=None):
        if objective_ps is None:
            objective_ps = _env_float("REPRO_SLO_SLACK_MAE_PS", 50.0)
        if window is None:
            window = int(os.environ.get("REPRO_SLO_ACCURACY_WINDOW",
                                        256) or 256)
        if min_ratio is None:
            min_ratio = _env_float("REPRO_SLO_ACCURACY_RATIO", 0.9)
        self.objective_ps = float(objective_ps)
        self.window = max(int(window), 1)
        self.min_ratio = float(min_ratio)
        self._lock = threading.Lock()
        self._events = deque(maxlen=self.window)
        self._errors = deque(maxlen=self.window)

    def record(self, slack_mae_ps):
        value = float(slack_mae_ps)
        good = np.isfinite(value) and value <= self.objective_ps
        with self._lock:
            self._events.append(bool(good))
            if np.isfinite(value):
                self._errors.append(value)
        return good

    def rolling_mae(self):
        with self._lock:
            if not self._errors:
                return None
            return float(np.mean(self._errors))

    def ok(self):
        with self._lock:
            total = len(self._events)
            good = sum(self._events)
        return total == 0 or good / total >= self.min_ratio

    def summary(self):
        with self._lock:
            total = len(self._events)
            good = sum(self._events)
        return {"objective_ps": self.objective_ps, "window": self.window,
                "total": total, "good": good, "bad": total - good,
                "good_ratio": round(good / total, 4) if total else 1.0,
                "min_ratio": self.min_ratio}


# -- the monitor -----------------------------------------------------------------
class QualityMonitor:
    """Budget-limited async shadow-STA auditor for one serving process.

    ``prefix`` names the metric families: the in-process service uses
    ``repro_quality_*``; pool workers use ``repro_worker_quality_*`` so
    their snapshots merge through the fleet aggregator without colliding
    with the parent's families.  ``maybe_audit`` is the only request-path
    entry point and does O(copy) work; everything else runs on a daemon
    thread that is started lazily on the first sampled request (so a
    pre-fork parent never forks with the thread alive).
    """

    QUEUE_REASONS = ("queue_full", "budget", "error")

    def __init__(self, registry=None, prefix="repro_quality_", rate=None,
                 budget_per_min=None, log_path=None, max_lines=None,
                 threshold=None, slo=None, queue_size=64, seed=None):
        from .metrics import MetricsRegistry
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.prefix = prefix
        self.rate = audit_rate() if rate is None else min(max(
            float(rate), 0.0), 1.0)
        if budget_per_min is None:
            budget_per_min = _env_float("REPRO_AUDIT_BUDGET", 120.0)
        self.budget_per_min = max(float(budget_per_min), 0.0)
        self.threshold = drift_threshold() if threshold is None \
            else float(threshold)
        self.slo = slo or AccuracySlo()
        self.log = AuditLog(path=log_path, max_lines=max_lines) \
            if log_path is not False else None
        self._rng = random.Random(seed)
        self._queue = queue.Queue(maxsize=int(queue_size))
        self._pending = 0
        self._lock = threading.Lock()
        self._thread = None
        self._stopped = False
        self._tokens = self.budget_per_min   # token bucket, refills /s
        self._token_ts = time.monotonic()
        self._drift = {}                     # model name -> DriftTracker
        self._recent = deque(maxlen=64)      # recent audit summaries
        self.enabled = self.rate > 0.0
        if self.enabled:
            self._make_instruments()

    def _make_instruments(self):
        p = self.prefix
        self._c_audits = self.registry.counter(
            f"{p}audits_total", "Shadow-STA audits completed.")
        self._c_drops = {
            reason: self.registry.counter(
                f"{p}audit_drops_total",
                "Sampled requests dropped before auditing, by reason.",
                reason=reason)
            for reason in self.QUEUE_REASONS}
        self._c_alerts = self.registry.counter(
            f"{p}drift_alerts_total",
            "Audits whose PSI drift score exceeded the threshold.")
        self._h_mae = self.registry.histogram(
            f"{p}slack_mae_ps",
            "Per-audit worst-slack MAE (served vs ground truth), ps.")
        self._h_wns = self.registry.histogram(
            f"{p}wns_setup_err_ps",
            "Per-audit absolute setup-WNS error, ps.")
        self._h_rank = self.registry.histogram(
            f"{p}rank_setup",
            "Per-audit endpoint setup-slack Spearman rank correlation.")
        self._g_drift = self.registry.gauge(
            f"{p}drift_score",
            "Max-channel PSI of served features vs the train profile.")

    # -- request-path entry point ------------------------------------------------
    def maybe_audit(self, graph, arrival, *, design=None, model=None,
                    request_id=None, profile=None):
        """Sample this served prediction for auditing; never blocks.

        ``arrival`` is copied immediately: served outputs may live in
        arena-recycled buffers that a later forward overwrites, so a
        deferred read without a copy would audit corrupted data.
        """
        if not self.enabled or self._stopped:
            return False
        if self._rng.random() >= self.rate:
            return False
        if not self._take_token():
            self._c_drops["budget"].inc()
            return False
        item = (graph, np.array(arrival, dtype=np.float64, copy=True),
                design or getattr(graph, "name", "?"), model,
                request_id, profile, time.time())
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self._c_drops["queue_full"].inc()
            return False
        with self._lock:
            self._pending += 1
        self._ensure_thread()
        return True

    def _take_token(self):
        if self.budget_per_min <= 0:
            return False
        now = time.monotonic()
        with self._lock:
            self._tokens = min(
                self.budget_per_min,
                self._tokens + (now - self._token_ts)
                * self.budget_per_min / 60.0)
            self._token_ts = now
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True

    def _ensure_thread(self):
        if self._thread is not None and self._thread.is_alive():
            return
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="quality-audit", daemon=True)
                self._thread.start()

    # -- the audit loop ----------------------------------------------------------
    def _loop(self):
        while not self._stopped:
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                self._process(item)
            except Exception as exc:   # noqa: BLE001 — telemetry only
                self._c_drops["error"].inc()
                _log.warning("audit_failed", error=str(exc))
            finally:
                with self._lock:
                    self._pending -= 1

    def _process(self, item):
        graph, arrival, design, model, request_id, profile, served_ts = item
        # Lazy: training.evaluate imports back into obs (ledger).
        from ..training.evaluate import endpoint_metrics_for
        metrics = endpoint_metrics_for(graph, arrival)
        self._c_audits.inc()
        mae_ps = metrics.get("slack_mae", float("nan"))
        if np.isfinite(mae_ps):
            self._h_mae.observe(float(mae_ps))
        if np.isfinite(metrics.get("wns_setup_err", float("nan"))):
            self._h_wns.observe(float(metrics["wns_setup_err"]))
        if np.isfinite(metrics.get("rank_setup", float("nan"))):
            self._h_rank.observe(float(metrics["rank_setup"]))
        self.slo.record(mae_ps)

        drift_max = None
        if profile is not None:
            tracker = self._drift.get(model)
            if tracker is None or tracker.profile is not profile:
                tracker = self._drift[model] = DriftTracker(profile)
            tracker.observe(graph.node_features)
            score = tracker.score()
            drift_max = score["max"]
            self._g_drift.set(drift_max)
            if drift_max > self.threshold:
                self._c_alerts.inc()
                _log.warning("drift_alert", model=str(model),
                             design=str(design),
                             score=round(drift_max, 4),
                             threshold=self.threshold)

        summary = {"design": design, "model": model,
                   "request_id": request_id,
                   "slack_mae_ps": None if not np.isfinite(mae_ps)
                   else round(float(mae_ps), 6),
                   "drift_score": drift_max}
        self._recent.append(summary)
        if self.log is not None:
            try:
                self.log.append({**summary, "served_at": served_ts,
                                 "endpoint": metrics})
            except OSError:
                pass   # telemetry must never fail the auditor

    # -- introspection / lifecycle -----------------------------------------------
    def flush(self, timeout=5.0):
        """Wait until every enqueued audit has been processed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._pending == 0:
                    return True
            time.sleep(0.005)
        return False

    def drift_score(self):
        """Max PSI across every tracked model (None before any audit)."""
        scores = [tracker.score()["max"]
                  for tracker in self._drift.values()
                  if tracker.score()["graphs"]]
        return max(scores) if scores else None

    def stats(self):
        if not self.enabled:
            return {"enabled": False, "samples": 0}
        mae = self._h_mae.snapshot()
        return {
            "enabled": True,
            "rate": self.rate,
            "samples": int(self._c_audits.value),
            "dropped": {reason: int(counter.value)
                        for reason, counter in self._c_drops.items()},
            "slack_mae_ps": None if not mae["count"]
            else round(mae["mean"], 3),
            "slack_mae_p50_ps": None if not mae["count"]
            else round(mae["p50"], 3),
            "rank_setup": None if not self._h_rank.snapshot()["count"]
            else round(self._h_rank.snapshot()["mean"], 4),
            "drift_score": self.drift_score(),
            "drift_alerts": int(self._c_alerts.value),
            "slo": self.slo.summary(),
        }

    def healthz(self):
        """``{ok, breached, ...}`` — feeds the service ``degraded`` flag."""
        if not self.enabled:
            return {"ok": True, "enabled": False}
        breached = []
        if not self.slo.ok():
            breached.append("accuracy_slo")
        drift = self.drift_score()
        if drift is not None and drift > self.threshold:
            breached.append("drift")
        return {"ok": not breached, "enabled": True,
                "samples": int(self._c_audits.value),
                "slack_mae_ps": self.slo.rolling_mae(),
                "drift_score": drift, "drift_threshold": self.threshold,
                "accuracy_slo": self.slo.summary(), "breached": breached}

    def close(self, timeout=2.0):
        if self.enabled:
            self.flush(timeout=timeout)
        self._stopped = True
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=1.0)
