"""Span-based tracing with parent/child nesting and JSONL export.

Usage::

    from repro.obs import get_tracer

    tracer = get_tracer()
    with tracer.span("flow.place", design="spm") as sp:
        ...
        sp.set(hpwl=123.4)          # attach attributes mid-span

Spans nest per thread: a span opened while another is active on the
same thread records it as its parent, and the outermost span of a chain
mints the ``trace_id`` every descendant shares.  Finished spans are
retained in a bounded buffer (for ``repro trace`` and tests) and, when
a sink is set — explicitly via :meth:`Tracer.set_sink` or through the
``REPRO_TRACE=<path>`` environment variable — streamed to that file as
one JSON object per line.

Tracing is cheap (one clock read and a small object per span) but can
be switched off wholesale with ``tracer.enabled = False``, which turns
``span()`` into a no-op.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from collections import deque

__all__ = ["Span", "Tracer", "get_tracer", "format_span_tree",
           "mint_trace_id", "make_span_record", "iter_trace_records"]


def mint_trace_id():
    """A fresh 16-hex-char trace id (front-ends mint one per request)."""
    return uuid.uuid4().hex[:16]


def make_span_record(name, trace_id, parent_id, start_ts, duration_ms,
                     status="ok", **attrs):
    """A finished span record built by hand (no context manager).

    Pool workers use this to synthesize their per-request span trees —
    queue wait, batch window, shm attach, forward — whose phases overlap
    between items of one batch and therefore cannot be expressed as
    nested ``with`` blocks.  The resulting dict is shape-compatible with
    :meth:`Span.to_dict` so :func:`Tracer.ingest` and
    :func:`format_span_tree` accept it unchanged.
    """
    return {"name": name, "trace_id": trace_id,
            "span_id": uuid.uuid4().hex[:16], "parent_id": parent_id,
            "start_ts": round(float(start_ts), 6),
            "duration_ms": round(max(float(duration_ms), 0.0), 4),
            "thread": threading.current_thread().name,
            "status": status, "attrs": dict(attrs)}


def iter_trace_records(path, trace_id=None):
    """Stream span records out of a JSONL sink, oldest first.

    Reads the rotated generation (``<path>.1``, when present) before the
    live file, line by line — a single trace can be filtered out of a
    multi-gigabyte sink without ever holding more than the matching
    records.  Corrupt lines are skipped, matching the run ledger's
    tolerance for torn writes.
    """
    path = os.fspath(path)
    candidates = [path + ".1", path]
    for candidate in candidates:
        try:
            fh = open(candidate)
        except OSError:
            continue
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict) or "span_id" not in record:
                    continue
                if trace_id is not None \
                        and record.get("trace_id") != trace_id:
                    continue
                yield record


class Span:
    """One timed operation; finished spans are immutable records."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "start_ts", "duration_ms", "thread", "status", "_t0")

    def __init__(self, name, trace_id, parent_id, attrs):
        self.name = name
        self.trace_id = trace_id
        self.span_id = uuid.uuid4().hex[:16]
        self.parent_id = parent_id
        self.attrs = dict(attrs)
        self.start_ts = time.time()
        self.duration_ms = None
        self.thread = threading.current_thread().name
        self.status = "ok"
        self._t0 = time.perf_counter()

    def set(self, **attrs):
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)

    def to_dict(self):
        return {"name": self.name, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "start_ts": round(self.start_ts, 6),
                "duration_ms": (round(self.duration_ms, 4)
                                if self.duration_ms is not None else None),
                "thread": self.thread, "status": self.status,
                "attrs": self.attrs}


class _NullSpan:
    """Stand-in yielded when tracing is disabled; absorbs writes."""

    __slots__ = ()

    def set(self, **attrs):
        pass


_NULL_SPAN = _NullSpan()


def _count_lines(path):
    """Newline count of an existing file (0 when absent)."""
    count = 0
    try:
        with open(path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                count += chunk.count(b"\n")
    except OSError:
        pass
    return count


class Tracer:
    """Per-process span factory with a bounded retention buffer."""

    def __init__(self, keep=10000, enabled=True):
        self.enabled = enabled
        self._retained = deque(maxlen=int(keep))
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sink = None
        self._sink_owned = False
        self._sink_path = None
        self._sink_lines = 0
        self._sink_max_lines = None

    # -- span lifecycle --------------------------------------------------------
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self):
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name, trace_id=None, parent_id=None, **attrs):
        """Open a span; ``trace_id``/``parent_id`` override inheritance.

        Without the overrides a span joins the innermost open span on
        this thread (or mints a fresh trace).  With them, a transport
        can continue a *distributed* trace: the HTTP front-end mints the
        trace id, and worker-side records ship back carrying the same id
        (see :meth:`ingest`).
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        if trace_id is None:
            trace_id = parent.trace_id if parent else mint_trace_id()
        if parent_id is None:
            parent_id = parent.span_id if parent else None
        span = Span(name, trace_id, parent_id, attrs)
        stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.duration_ms = (time.perf_counter() - span._t0) * 1000.0
            stack.pop()
            self._finish(span)

    def _finish(self, span):
        self._write(span.to_dict())

    def ingest(self, records):
        """Adopt finished span records from another process.

        The pool router feeds worker span trees (shipped back on the
        result path) through here, so retention and the JSONL sink hold
        one stitched timeline per request — ``repro trace`` renders the
        worker's queue-wait/attach/forward phases indented under the
        parent's ``pool.submit`` span.  Returns the number adopted.
        """
        count = 0
        for record in records or ():
            if not isinstance(record, dict) or "span_id" not in record:
                continue
            self._write(dict(record))
            count += 1
        return count

    def _write(self, record):
        with self._lock:
            self._retained.append(record)
            if self._sink is not None:
                if self._sink_path is not None \
                        and self._sink_max_lines is not None \
                        and self._sink_lines >= self._sink_max_lines:
                    self._rotate_locked()
                self._sink.write(json.dumps(record) + "\n")
                self._sink.flush()
                self._sink_lines += 1

    def _rotate_locked(self):
        """Roll the owned path sink over to ``<path>.1`` (lock held)."""
        self._sink.close()
        try:
            os.replace(self._sink_path, self._sink_path + ".1")
        except OSError:
            pass
        self._sink = open(self._sink_path, "w")
        self._sink_lines = 0

    # -- export ----------------------------------------------------------------
    def set_sink(self, target, mode="a", max_lines=None):
        """Stream finished spans to ``target`` (a path or file object).

        Path sinks are size-bounded: once the file holds ``max_lines``
        lines (default ``REPRO_TRACE_MAX_LINES``, 100000) it is rotated
        to ``<path>.1`` — one generation is kept — and writing restarts
        on a fresh file, so a long-running ``REPRO_TRACE`` session never
        grows a trace without bound.  File-object sinks are the caller's
        to bound.
        """
        self.clear_sink()
        if max_lines is None:
            max_lines = int(os.environ.get("REPRO_TRACE_MAX_LINES",
                                           100000) or 0) or None
        with self._lock:
            if hasattr(target, "write"):
                self._sink, self._sink_owned = target, False
            else:
                self._sink = open(target, mode)
                self._sink_owned = True
                self._sink_path = os.fspath(target)
                self._sink_max_lines = max_lines
                if "a" in mode:
                    self._sink_lines = _count_lines(self._sink_path)

    def clear_sink(self):
        with self._lock:
            sink, owned = self._sink, self._sink_owned
            self._sink, self._sink_owned = None, False
            self._sink_path, self._sink_lines = None, 0
            self._sink_max_lines = None
        if sink is not None and owned:
            sink.close()

    def spans(self):
        """Finished spans (as dicts), oldest first."""
        with self._lock:
            return list(self._retained)

    def export_jsonl(self, path):
        """Write every retained span to ``path`` as JSON lines."""
        records = self.spans()
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return len(records)

    def reset(self):
        """Drop retained spans (sink, if any, is left in place)."""
        with self._lock:
            self._retained.clear()


def format_span_tree(records):
    """Indented parent/child rendering of finished span records.

    Accepts span dicts (as stored by the tracer or read back from a
    JSONL trace) and returns one line per span, children indented under
    their parents, ordered by start time.
    """
    by_parent = {}
    index = {}
    for record in records:
        index[record["span_id"]] = record
        by_parent.setdefault(record["parent_id"], []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: r["start_ts"])

    lines = []

    def visit(record, depth):
        attrs = " ".join(f"{k}={v}" for k, v in record["attrs"].items())
        duration = record["duration_ms"]
        duration_txt = (f"{duration:9.2f} ms" if duration is not None
                        else "      ?    ")
        flag = "" if record["status"] == "ok" else "  [ERROR]"
        lines.append(f"{duration_txt}  {'  ' * depth}{record['name']}"
                     f"{('  ' + attrs) if attrs else ''}{flag}")
        for child in by_parent.get(record["span_id"], []):
            visit(child, depth + 1)

    roots = [r for r in records
             if r["parent_id"] is None or r["parent_id"] not in index]
    roots.sort(key=lambda r: r["start_ts"])
    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


_default_tracer = Tracer()
if os.environ.get("REPRO_TRACE"):
    _default_tracer.set_sink(os.environ["REPRO_TRACE"])


def get_tracer():
    """The process-wide default tracer."""
    return _default_tracer
