"""Structured key=value logging with per-module levels.

Replaces bare ``print()`` diagnostics with one-line, machine-parseable
records::

    log = get_logger("repro.training")
    log.info("epoch", model="timing-gnn", epoch=3, loss=0.1234)
    # ts=2026-08-06T12:00:00.123Z lvl=info log=repro.training \
    #   event=epoch model=timing-gnn epoch=3 loss=0.1234

Levels are resolved per logger name by longest-prefix match, so
``configure(**{"repro.training": "debug"})`` turns on debug records for
the whole training package while everything else stays at the default.
The ``REPRO_LOG`` environment variable seeds the same configuration:
``REPRO_LOG=debug`` (global) or
``REPRO_LOG=repro.training=debug,default=warning``.

Records go to ``stderr`` by default; ``configure(stream=...)`` points
them anywhere (tests use a ``StringIO``).  Writes are serialized by one
lock, so interleaved multi-threaded records never shear.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

__all__ = ["Logger", "LogManager", "get_logger", "configure",
           "LEVELS"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_DEFAULT_LEVEL = "info"


def _format_value(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (int, bool)) or value is None:
        return str(value)
    text = str(value)
    if not text or any(c in text for c in ' "=\n\t'):
        return json.dumps(text)
    return text


class LogManager:
    """Owns the output stream and the per-module level table."""

    def __init__(self, default_level=_DEFAULT_LEVEL, stream=None,
                 env=None):
        self._lock = threading.Lock()
        self._stream = stream
        self._levels = {}
        self._default = LEVELS[default_level]
        if env is None:
            env = os.environ.get("REPRO_LOG", "")
        if env:
            self._apply_env(env)

    def _apply_env(self, spec):
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                module, _, level = part.partition("=")
                self.set_level(level.strip(), module.strip())
            else:
                self.set_level(part)

    def set_level(self, level, module=None):
        """Set the default level, or a specific module's level."""
        value = LEVELS.get(str(level).lower())
        if value is None:
            raise ValueError(f"unknown log level {level!r}")
        with self._lock:
            if module is None or module == "default":
                self._default = value
            else:
                self._levels[module] = value

    def level_for(self, name):
        """Effective numeric threshold for ``name`` (longest prefix)."""
        with self._lock:
            best, best_len = self._default, -1
            for module, value in self._levels.items():
                if (name == module or name.startswith(module + ".")) \
                        and len(module) > best_len:
                    best, best_len = value, len(module)
            return best

    def configure(self, default_level=None, stream=None, **module_levels):
        """Adjust defaults at runtime; returns self for chaining."""
        if default_level is not None:
            self.set_level(default_level)
        if stream is not None:
            with self._lock:
                self._stream = stream
        for module, level in module_levels.items():
            self.set_level(level, module)
        return self

    def emit(self, line):
        with self._lock:
            stream = self._stream if self._stream is not None \
                else sys.stderr
            stream.write(line + "\n")


class Logger:
    """Named logger bound to a manager, with optional sticky fields."""

    __slots__ = ("name", "manager", "fields")

    def __init__(self, name, manager=None, fields=None):
        self.name = name
        self.manager = manager or _default_manager
        self.fields = dict(fields or {})

    def bind(self, **fields):
        """A child logger that stamps ``fields`` on every record."""
        return Logger(self.name, self.manager,
                      {**self.fields, **fields})

    def enabled_for(self, level):
        return LEVELS[level] >= self.manager.level_for(self.name)

    def _log(self, level, event, fields):
        if not self.enabled_for(level):
            return
        ts = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        ts += f".{int((time.time() % 1) * 1000):03d}Z"
        parts = [f"ts={ts}", f"lvl={level}", f"log={self.name}",
                 f"event={_format_value(event)}"]
        for key, value in {**self.fields, **fields}.items():
            parts.append(f"{key}={_format_value(value)}")
        self.manager.emit(" ".join(parts))

    def debug(self, event, **fields):
        self._log("debug", event, fields)

    def info(self, event, **fields):
        self._log("info", event, fields)

    def warning(self, event, **fields):
        self._log("warning", event, fields)

    def error(self, event, **fields):
        self._log("error", event, fields)


_default_manager = LogManager()


def get_logger(name, manager=None):
    """A :class:`Logger` for ``name`` bound to the default manager."""
    return Logger(name, manager)


def configure(default_level=None, stream=None, **module_levels):
    """Configure the process-wide default log manager."""
    return _default_manager.configure(default_level=default_level,
                                      stream=stream, **module_levels)
