"""Tape-level profiler for the autograd engine (both kernel backends).

``with obs.profile() as prof:`` instruments the numeric substrate for
the duration of the block:

* every forward op — tensor arithmetic, the graph ops of
  :mod:`repro.nn.ops`, the fused kernels of :mod:`repro.nn.kernels`,
  the whole-level propagation mega-op, optimizer steps — is timed and
  its output bytes accounted;
* every tape node minted while profiling gets its *backward closure*
  wrapped too, so the backward sweep is attributed per op
  (``bwd:<op>`` rows) rather than lumped into one number;
* nested calls are handled with self-time accounting: a composite op
  (say, naive ``segment_minmax`` calling ``segment_max`` twice) is
  charged only for the time not already charged to its children, so
  the per-op totals add up to the real wall time instead of double
  counting.

Profiling is opt-in and scoped: entering ``profile()`` patches the op
entry points (module and class attributes), leaving restores them, and
ops created inside the scope but backpropagated after it fall back to
their unwrapped cost-free path.  A ``obs.profile`` trace span brackets
the block so profiled regions show up in ``repro trace`` output.

``repro profile`` profiles a full train step per backend and prints the
aggregated top-K table (:func:`profile_train_step`,
:func:`format_profile_table`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np

from .tracing import get_tracer

__all__ = ["OpStat", "Profiler", "profile", "active_profiler",
           "format_profile_table", "profile_train_step"]

_ACTIVE = None                      # the installed Profiler, or None
_INSTALL_LOCK = threading.Lock()

#: Tensor methods wrapped while profiling (aliases dedup to one wrapper).
_TENSOR_OPS = (
    "__add__", "__radd__", "__neg__", "__sub__", "__rsub__", "__mul__",
    "__rmul__", "__truediv__", "__rtruediv__", "__pow__", "__matmul__",
    "affine", "reshape", "transpose", "__getitem__", "sum", "mean",
    "max", "relu", "leaky_relu", "sigmoid", "tanh", "exp", "log",
    "sqrt", "softplus", "softmax",
)

#: Fused kernel entry points (repro.nn.kernels).
_KERNEL_OPS = (
    "affine_act", "mlp_chain", "mlp_chain_forward_raw",
    "mlp_chain_backward_raw", "gather_concat", "gather_rows_csr",
    "segment_sum_csr", "segment_max_csr", "segment_minmax_csr",
    "gather_add_csr", "lut_kron_combine_csr", "segment_minmax_gate_csr",
    "scatter_add_rows",
)


class OpStat:
    """Aggregate cost of one op name across all profiled calls."""

    __slots__ = ("name", "calls", "total_ms", "self_ms", "bytes_out")

    def __init__(self, name):
        self.name = name
        self.calls = 0
        self.total_ms = 0.0
        self.self_ms = 0.0
        self.bytes_out = 0

    def to_dict(self):
        return {"name": self.name, "calls": self.calls,
                "total_ms": round(self.total_ms, 4),
                "self_ms": round(self.self_ms, 4),
                "bytes_out": int(self.bytes_out)}


def _nbytes(out):
    """Output bytes of an op result (Tensor, ndarray, or nests thereof)."""
    data = getattr(out, "data", None)
    if data is not None and hasattr(data, "nbytes"):
        return int(data.nbytes)
    if hasattr(out, "nbytes"):
        return int(out.nbytes)
    if isinstance(out, (tuple, list)):
        return sum(_nbytes(item) for item in out)
    return 0


class Profiler:
    """Thread-safe per-op wall-time / bytes aggregator.

    ``call_overhead_ns`` is the measured cost of the timing wrapper
    itself (calibrated on a no-op when the profiler activates); child
    calls charge it to their parent frame so exclusive times reflect
    real compute, not instrumentation, and the table total tracks the
    unprofiled wall time.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.stats = {}                 # name -> OpStat
        self.wall_ms = None             # elapsed in the profile() block
        self.call_overhead_ns = 0.0

    def _frames(self):
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = []
        return frames

    def _record(self, name, total_ns, self_ns, nbytes):
        with self._lock:
            stat = self.stats.get(name)
            if stat is None:
                stat = self.stats[name] = OpStat(name)
            stat.calls += 1
            stat.total_ms += total_ns * 1e-6
            stat.self_ms += self_ns * 1e-6
            stat.bytes_out += nbytes

    def total_self_ms(self):
        """Sum of exclusive times — the profiled estimate of wall time."""
        with self._lock:
            return sum(stat.self_ms for stat in self.stats.values())

    def top(self, k=None):
        """OpStats sorted by exclusive time, heaviest first."""
        with self._lock:
            stats = sorted(self.stats.values(),
                           key=lambda s: s.self_ms, reverse=True)
        return stats if k is None else stats[:k]

    def snapshot(self):
        """JSON-friendly summary (for the run ledger / trace attrs)."""
        return {"wall_ms": (round(self.wall_ms, 4)
                            if self.wall_ms is not None else None),
                "total_self_ms": round(self.total_self_ms(), 4),
                "ops": [stat.to_dict() for stat in self.top()]}


def active_profiler():
    """The installed profiler, or None (used by the tape hook)."""
    return _ACTIVE


def _timed(name, fn):
    """Wrap ``fn`` with frame-stack timing against the active profiler."""

    def wrapper(*args, **kwargs):
        prof = _ACTIVE
        if prof is None:
            return fn(*args, **kwargs)
        frames = prof._frames()
        frames.append(0.0)
        t0 = time.perf_counter_ns()
        out = None
        try:
            out = fn(*args, **kwargs)
            return out
        finally:
            dt = time.perf_counter_ns() - t0
            child_ns = frames.pop()
            prof._record(name, dt, dt - child_ns, _nbytes(out))
            if frames:
                # charge the parent this call's real span including the
                # record/bytes epilogue, plus the calibrated prologue —
                # so exclusive times reflect compute, not the wrapper
                frames[-1] += (time.perf_counter_ns() - t0
                               + prof.call_overhead_ns)

    wrapper.__name__ = getattr(fn, "__name__", name)
    wrapper.__qualname__ = getattr(fn, "__qualname__", name)
    wrapper.__profiled_original__ = fn
    return wrapper


_BWD_NAMES = {}                     # qualname -> display name cache


def _bwd_name(fn):
    qual = getattr(fn, "__qualname__", "op")
    name = _BWD_NAMES.get(qual)
    if name is None:
        op = qual.split(".<locals>")[0]
        if op.startswith("Tensor."):
            op = op[len("Tensor."):]
        name = _BWD_NAMES[qual] = "bwd:" + op.strip("_")
    return name


def _tape_backward_hook(fn):
    """Wrap a tape node's backward closure; name derives from the op.

    Called once per tape node minted while profiling, so creation must
    stay cheap (a bare closure): name resolution and the timing logic
    — same frame-stack scheme as :func:`_timed` — run only when the
    backward sweep actually executes the closure, and closures that
    outlive the profiling scope fall through to the raw call.
    """

    def timed_backward(*args, **kwargs):
        prof = _ACTIVE
        if prof is None:
            return fn(*args, **kwargs)
        frames = prof._frames()
        frames.append(0.0)
        t0 = time.perf_counter_ns()
        try:
            return fn(*args, **kwargs)
        finally:
            dt = time.perf_counter_ns() - t0
            child_ns = frames.pop()
            prof._record(_bwd_name(fn), dt, dt - child_ns, 0)
            if frames:
                frames[-1] += (time.perf_counter_ns() - t0
                               + prof.call_overhead_ns)

    timed_backward.__profiled_original__ = fn
    return timed_backward


def _op_name(owner, attr, fn):
    if isinstance(owner, type):
        if attr == "backward":
            return "autograd.backward"
        if owner.__name__ == "Tensor":
            return attr.strip("_")
        return f"{owner.__name__.lower()}.{attr}"
    return getattr(fn, "__name__", attr)


def _collect_targets():
    """(owner, attr) pairs to patch, resolved lazily at install time."""
    from .. import nn
    from ..models import propagation
    from ..nn import kernels, modules, ops, optim, tensor

    targets = [(tensor.Tensor, attr) for attr in _TENSOR_OPS
               if attr in vars(tensor.Tensor)]
    targets.append((tensor.Tensor, "backward"))
    targets += [(optim.Adam, "step"), (optim.SGD, "step")]
    for attr in _KERNEL_OPS:
        targets.append((kernels, attr))
    for attr in ops.__all__:
        targets.append((ops, attr))
    targets.append((optim, "clip_grad_norm"))
    if hasattr(propagation, "_fused_propagate"):
        targets.append((propagation, "_fused_propagate"))
    # Aliased re-export namespaces: anything in repro.nn (or repro.nn.
    # modules' `kernels` reference — same module object) bound to one of
    # the originals above must point at the same wrapper.
    alias_spaces = (nn, modules)
    return targets, alias_spaces


def _install():
    """Patch every target; returns the undo list (owner, attr, original)."""
    targets, alias_spaces = _collect_targets()
    undo, wrappers = [], {}
    for owner, attr in targets:
        original = getattr(owner, attr, None)
        if original is None or hasattr(original, "__profiled_original__"):
            continue
        wrapper = wrappers.get(id(original))
        if wrapper is None:
            wrapper = wrappers[id(original)] = _timed(
                _op_name(owner, attr, original), original)
        undo.append((owner, attr, original))
        setattr(owner, attr, wrapper)
    originals = {id(orig): wrappers[id(orig)] for _o, _a, orig in undo}
    for space in alias_spaces:
        for attr in dir(space):
            bound = getattr(space, attr, None)
            wrapper = originals.get(id(bound))
            if wrapper is not None:
                undo.append((space, attr, bound))
                setattr(space, attr, wrapper)
    return undo


def _uninstall(undo):
    for owner, attr, original in reversed(undo):
        setattr(owner, attr, original)


def _calibrate(prof, iters=4000):
    """Measured prologue cost (ns) of the timing wrapper on a no-op.

    A wrapped child runs inside a wrapped parent with ``prof`` active,
    so the full path — frame stack, clock reads, stat recording, bytes
    probe — is exercised.  The wrapper already charges its parent the
    *measured* call span (which covers the epilogue); what is left
    uncompensated is the prologue (dispatch, frame push, first clock
    read), estimated here as total per-call overhead minus the span the
    wrapper observed for itself.  The calibration rows are dropped from
    the stats afterwards.
    """
    def noop():
        return None

    child = _timed("__calib_child__", noop)

    def loop():
        for _ in range(iters):
            child()

    parent = _timed("__calib_parent__", loop)
    t0 = time.perf_counter_ns()
    for _ in range(iters):
        noop()
    raw_ns = time.perf_counter_ns() - t0
    prof.call_overhead_ns = 0.0
    parent()
    parent_stat = prof.stats.pop("__calib_parent__", None)
    prof.stats.pop("__calib_child__", None)
    prof._frames().clear()
    if parent_stat is None or parent_stat.calls == 0:
        return 0.0
    total_ns = parent_stat.total_ms * 1e6
    observed_ns = (parent_stat.total_ms - parent_stat.self_ms) * 1e6
    full_per_call = (total_ns - raw_ns) / iters
    observed_per_call = observed_ns / iters
    return max(full_per_call - observed_per_call, 0.0)


@contextmanager
def profile():
    """Scoped tape-level profiling; yields the :class:`Profiler`.

    Not re-entrant (one profiler per process at a time); cheap to leave
    installed on tapes — closures wrapped inside the scope no-op once
    the scope exits.
    """
    global _ACTIVE
    from ..nn import tensor

    with _INSTALL_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a profiler is already active")
        prof = Profiler()
        undo = _install()
        tensor._set_tape_profile_hook(_tape_backward_hook)
        _ACTIVE = prof
        prof.call_overhead_ns = _calibrate(prof)
    t0 = time.perf_counter()
    try:
        with get_tracer().span("obs.profile") as span:
            try:
                yield prof
            finally:
                prof.wall_ms = (time.perf_counter() - t0) * 1000.0
                top = prof.top(3)
                span.set(ops=len(prof.stats),
                         total_self_ms=round(prof.total_self_ms(), 3),
                         top_ops=",".join(s.name for s in top))
    finally:
        with _INSTALL_LOCK:
            _ACTIVE = None
            tensor._set_tape_profile_hook(None)
            _uninstall(undo)


def profile_train_step(graph, backend="fused", cfg=None, warmup=2, reps=4):
    """Profile a full TimingGNN train step on ``graph`` per ``backend``.

    Runs ``warmup`` untimed steps (builds cached level/segment
    schedules), measures ``reps`` *unprofiled* reference steps keeping
    the fastest, then ``reps`` independently profiled steps keeping the
    fastest trial (min-vs-min is robust to GC pauses and scheduler
    noise).  Returns ``(profiler, reference_ms)`` — the per-op table's
    total self-time should land within a few percent of
    ``reference_ms`` (the acceptance bar is 10%).
    """
    from .. import nn
    from ..models import ModelConfig, TimingGNN
    from ..training.loss import combined_loss

    cfg = cfg or ModelConfig.benchmark()
    reps = max(int(reps), 1)
    with nn.use_kernels(backend):
        model = TimingGNN(cfg, rng=np.random.default_rng(cfg.seed))
        optimizer = nn.Adam(model.parameters(), lr=1e-3)

        def step():
            pred = model(graph)
            loss, _parts = combined_loss(pred, graph)
            optimizer.zero_grad()
            loss.backward(free=True)
            nn.clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()

        for _ in range(max(int(warmup), 1)):
            step()
        reference_ms = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            step()
            reference_ms = min(reference_ms,
                               (time.perf_counter() - t0) * 1000.0)
        best = None
        for _ in range(reps):
            with profile() as prof:
                step()
            if best is None or prof.wall_ms < best.wall_ms:
                best = prof
    return best, reference_ms


def format_profile_table(prof, top=20, reference_ms=None, title=""):
    """Human-readable top-K op table of one profiled region."""
    stats = prof.top()
    total_self = sum(stat.self_ms for stat in stats)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'op':<28}{'calls':>7}{'total ms':>11}{'self ms':>10}"
                 f"{'self %':>8}{'MB out':>9}")
    for stat in stats[:top]:
        pct = 100.0 * stat.self_ms / max(total_self, 1e-12)
        lines.append(f"{stat.name:<28}{stat.calls:>7}"
                     f"{stat.total_ms:>11.2f}{stat.self_ms:>10.2f}"
                     f"{pct:>7.1f}%{stat.bytes_out / 1e6:>9.1f}")
    hidden = len(stats) - min(top, len(stats))
    if hidden > 0:
        rest = sum(stat.self_ms for stat in stats[top:])
        lines.append(f"{f'... {hidden} more ops':<28}{'':>7}"
                     f"{'':>11}{rest:>10.2f}")
    summary = f"{'TOTAL (self)':<28}{'':>7}{'':>11}{total_self:>10.2f}"
    if reference_ms:
        summary += (f"   = {100.0 * total_self / reference_ms:.1f}% of "
                    f"unprofiled {reference_ms:.2f} ms")
    lines.append(summary)
    return "\n".join(lines)
