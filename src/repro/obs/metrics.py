"""Thread-safe metrics: counters, gauges, histograms, Prometheus export.

A :class:`MetricsRegistry` is the single source of truth for every
numeric fact the system reports about itself.  The serving ``/stats``
JSON and the Prometheus ``/metrics`` text endpoint are both *views* of
one registry, so they cannot drift apart.

Instruments:

* :class:`Counter`   — monotonically increasing (requests, cache hits);
* :class:`Gauge`     — a value that goes up and down (queue depth);
* :class:`Histogram` — observations with count/sum/min/max plus
  streaming quantiles from a bounded rolling reservoir.  Rendered in
  Prometheus *summary* form (``{quantile="0.5"}`` samples + ``_sum`` and
  ``_count``).

Instruments can be built standalone (``Counter("x")``) or through a
registry, which deduplicates by ``(name, labels)`` and renders the
whole family in Prometheus text exposition format.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "get_registry", "set_registry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name):
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels):
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return dict(sorted(labels.items()))


def _escape_label_value(value):
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value):
    if value != value:                       # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels, extra=None):
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                     for k, v in merged.items())
    return "{" + inner + "}"


class _Instrument:
    """Common name/labels/help plumbing for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name, help="", **labels):
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._lock = threading.Lock()


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help="", **labels):
        super().__init__(name, help, **labels)
        self._value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def samples(self):
        return [(self.name, self.labels, self.value)]

    def snapshot(self):
        return self.value


class Gauge(_Instrument):
    """Instantaneous value (may go up or down)."""

    kind = "gauge"

    def __init__(self, name, help="", **labels):
        super().__init__(name, help, **labels)
        self._value = 0.0

    def set(self, value):
        with self._lock:
            self._value = float(value)

    def inc(self, amount=1.0):
        with self._lock:
            self._value += amount

    def dec(self, amount=1.0):
        self.inc(-amount)

    @property
    def value(self):
        with self._lock:
            return self._value

    def samples(self):
        return [(self.name, self.labels, self.value)]

    def snapshot(self):
        return self.value


class Histogram(_Instrument):
    """Observations with streaming quantiles.

    Tracks exact ``count``/``sum``/``min``/``max`` over the full stream
    and keeps a bounded rolling reservoir (the most recent
    ``reservoir`` observations) for quantile estimates — exact while
    the stream fits in the reservoir, a sliding-window estimate after.
    """

    kind = "summary"

    def __init__(self, name, help="", quantiles=(0.5, 0.9, 0.99),
                 reservoir=4096, **labels):
        super().__init__(name, help, **labels)
        self.quantiles = tuple(float(q) for q in quantiles)
        for q in self.quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q} outside [0, 1]")
        self._sample = deque(maxlen=int(reservoir))
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value):
        value = float(value)
        with self._lock:
            self._sample.append(value)
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self):
        with self._lock:
            return self._count

    @property
    def sum(self):
        with self._lock:
            return self._sum

    def quantile(self, q):
        """Streaming quantile estimate; NaN when no observations yet."""
        with self._lock:
            if not self._sample:
                return float("nan")
            data = np.asarray(self._sample, dtype=float)
        return float(np.quantile(data, q))

    def sketch(self, max_points=256):
        """Mergeable quantile sketch of the stream so far.

        Returns ``{count, sum, min, max, sample}`` where ``sample`` is
        the reservoir itself (sorted) while it fits in ``max_points``,
        and an evenly spaced quantile grid of it after — either way a
        bounded, JSON-friendly stand-in for the distribution that
        :func:`repro.obs.fleet.merge_sketches` can combine across
        processes (each point weighted by ``count / len(sample)``).
        """
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if self._count else 0.0
            hi = self._max if self._count else 0.0
            data = (np.asarray(self._sample, dtype=float)
                    if self._sample else None)
        if data is None:
            sample = []
        elif len(data) <= int(max_points):
            sample = np.sort(data).tolist()
        else:
            grid = np.linspace(0.0, 1.0, int(max_points))
            sample = np.quantile(data, grid).tolist()
        return {"count": count, "sum": total, "min": lo, "max": hi,
                "sample": sample}

    def snapshot(self):
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if self._count else 0.0
            hi = self._max if self._count else 0.0
            data = (np.asarray(self._sample, dtype=float)
                    if self._sample else None)
        out = {"count": count, "sum": total, "min": lo, "max": hi,
               "mean": (total / count) if count else 0.0}
        for q in self.quantiles:
            key = f"p{q * 100:g}".replace(".", "_")
            out[key] = (float(np.quantile(data, q))
                        if data is not None else 0.0)
        return out

    def samples(self):
        snap = self.snapshot()
        out = []
        for q in self.quantiles:
            key = f"p{q * 100:g}".replace(".", "_")
            out.append((self.name, dict(self.labels, quantile=f"{q:g}"),
                        snap[key]))
        out.append((self.name + "_sum", self.labels, snap["sum"]))
        out.append((self.name + "_count", self.labels, snap["count"]))
        return out


class MetricsRegistry:
    """Thread-safe instrument registry with Prometheus text export.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same ``(name, labels)`` returns the same instrument, so
    modules can declare their metrics at use sites without coordination.
    One name maps to one instrument kind; a kind conflict raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}          # (name, labels-tuple) -> instrument
        self._kinds = {}                # name -> kind
        self._helps = {}                # name -> help text

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            if name in self._kinds and self._kinds[name] != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{self._kinds[name]}, not {cls.kind}")
            instrument = cls(name, help=help, **kwargs, **labels)
            self._instruments[key] = instrument
            self._kinds[name] = cls.kind
            if help or name not in self._helps:
                self._helps[name] = help
            return instrument

    def counter(self, name, help="", **labels):
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name, help="", **labels):
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name, help="", quantiles=(0.5, 0.9, 0.99),
                  reservoir=4096, **labels):
        return self._get_or_create(Histogram, name, help, labels,
                                   quantiles=quantiles, reservoir=reservoir)

    def get(self, name, **labels):
        """Existing instrument for ``(name, labels)`` or None."""
        key = (name, tuple(sorted(_check_labels(labels).items())))
        with self._lock:
            return self._instruments.get(key)

    def instruments(self):
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self):
        """Nested JSON-friendly view: name -> [{labels, value}, ...]."""
        out = {}
        for instrument in self.instruments():
            out.setdefault(instrument.name, []).append(
                {"labels": instrument.labels,
                 "value": instrument.snapshot()})
        return out

    def export_state(self, max_points=256):
        """Process-portable snapshot of every instrument in the registry.

        ``{name: {kind, help, series: [{labels, value}]}}`` where
        ``value`` is the raw float for counters/gauges and a mergeable
        quantile sketch (:meth:`Histogram.sketch`) for histograms — the
        wire format the fleet aggregator (:mod:`repro.obs.fleet`) ships
        from pool workers to the parent and merges with a ``worker``
        label.  Everything in it is JSON/pickle friendly.
        """
        with self._lock:
            helps = dict(self._helps)
        state = {}
        for instrument in self.instruments():
            entry = state.setdefault(
                instrument.name,
                {"kind": instrument.kind,
                 "help": helps.get(instrument.name, ""), "series": []})
            value = (instrument.sketch(max_points=max_points)
                     if isinstance(instrument, Histogram)
                     else instrument.value)
            entry["series"].append({"labels": dict(instrument.labels),
                                    "value": value})
        return state

    def render_prometheus(self):
        """Prometheus text exposition format (version 0.0.4)."""
        by_name = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        lines = []
        for name in sorted(by_name):
            family = by_name[name]
            help_text = self._helps.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family[0].kind}")
            for instrument in family:
                for sample_name, labels, value in instrument.samples():
                    lines.append(f"{sample_name}{_label_str(labels)} "
                                 f"{_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry():
    """The process-wide default registry (flow/STA/training metrics)."""
    return _default_registry


def set_registry(registry):
    """Swap the process-wide default registry; returns the old one."""
    global _default_registry
    with _default_lock:
        old, _default_registry = _default_registry, registry
        return old
