"""Append-only run ledger: durable history of training and bench runs.

The live half of the observability stack (metrics/tracing/logging)
answers "what is happening right now"; this module answers "what has
happened across runs and PRs".  A :class:`RunLedger` is a JSONL file —
one run per line — under ``REPRO_RUNS_DIR`` (default ``.repro_runs/``
in the working directory):

* **schema-versioned** — every record carries ``schema_version`` so
  later readers can migrate or skip old shapes;
* **append-only, atomic** — each record is serialized to one line and
  written with a single ``os.write`` on an ``O_APPEND`` descriptor, so
  concurrent writers (parallel trainers, a bench run racing a training
  run) never interleave partial lines;
* **corrupt-line tolerant** — reads skip lines that fail to parse (a
  crashed writer, a truncated disk) and report how many were skipped
  instead of refusing the whole history.

Every ``train_*`` call in :mod:`repro.training.trainer` and every bench
harness (``repro bench-compute`` / ``repro bench-serve``) appends a run;
``repro runs {ls,show,export}`` inspects the ledger, ``repro bench
diff`` gates new bench results against it, and ``repro report --html``
renders the whole trajectory.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid

import numpy as np

__all__ = ["RUNS_SCHEMA_VERSION", "RunLedger", "default_runs_dir",
           "default_ledger", "new_run_id", "config_fingerprint",
           "record_run"]

# v2 (PR 10): training records gain per-design endpoint accuracy metrics
# (``eval.<design>.endpoint``).  Purely additive — v1 readers that index
# known keys keep working, and this reader never rejects on version.
RUNS_SCHEMA_VERSION = 2


def default_runs_dir():
    """The ledger directory: ``REPRO_RUNS_DIR`` or ``.repro_runs/``."""
    return os.environ.get("REPRO_RUNS_DIR") or \
        os.path.join(os.getcwd(), ".repro_runs")


def new_run_id(kind="run"):
    """A unique, sortable run id: ``<kind>-<utc stamp>-<random hex>``."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{kind}-{stamp}-{uuid.uuid4().hex[:8]}"


def config_fingerprint(**parts):
    """Stable 16-hex digest of keyword config parts (dicts/lists/scalars)."""
    payload = json.dumps(parts, sort_keys=True, default=_jsonable)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _jsonable(value):
    """JSON fallback for numpy scalars/arrays and other odd values."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) \
            else list(value)
    return str(value)


class RunLedger:
    """Append-only JSONL run history under one directory.

    ``root`` defaults to :func:`default_runs_dir`; the ledger file is
    ``<root>/runs.jsonl``.  All methods are thread-safe; cross-process
    appends are safe through ``O_APPEND`` single-write semantics.
    """

    def __init__(self, root=None):
        self.root = root or default_runs_dir()
        self.path = os.path.join(self.root, "runs.jsonl")
        self._lock = threading.Lock()

    # -- writing ---------------------------------------------------------------
    def append(self, record):
        """Append one run record; returns the stamped record.

        ``run_id``, ``schema_version`` and ``recorded_at`` are filled in
        when missing.  The record must be JSON-serializable (numpy
        scalars/arrays are converted).
        """
        record = dict(record)
        record.setdefault("schema_version", RUNS_SCHEMA_VERSION)
        record.setdefault("run_id", new_run_id(record.get("kind", "run")))
        record.setdefault(
            "recorded_at",
            time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()))
        line = json.dumps(record, sort_keys=False, default=_jsonable) + "\n"
        os.makedirs(self.root, exist_ok=True)
        with self._lock:
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode())
            finally:
                os.close(fd)
        return record

    # -- reading ---------------------------------------------------------------
    def scan(self, kind=None):
        """(records, corrupt_line_count), oldest first, bad lines skipped."""
        records, corrupt = [], 0
        try:
            fh = open(self.path, encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return records, corrupt
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    corrupt += 1
                    continue
                if not isinstance(record, dict) or "run_id" not in record:
                    corrupt += 1
                    continue
                if kind is not None \
                        and not str(record.get("kind", "")).startswith(kind):
                    continue
                records.append(record)
        return records, corrupt

    def read(self, kind=None):
        """All parseable run records, oldest first."""
        return self.scan(kind=kind)[0]

    def get(self, run_id):
        """The record with ``run_id`` (or a unique prefix of it), or None."""
        exact, prefixed = None, []
        for record in self.read():
            if record["run_id"] == run_id:
                exact = record
            elif str(record["run_id"]).startswith(run_id):
                prefixed.append(record)
        if exact is not None:
            return exact
        return prefixed[-1] if len(prefixed) >= 1 else None

    def latest(self, kind=None, where=None):
        """The most recent record matching ``kind`` / predicate, or None."""
        for record in reversed(self.read(kind=kind)):
            if where is None or where(record):
                return record
        return None


def default_ledger():
    """A :class:`RunLedger` on the default directory (re-resolved per call,
    so tests flipping ``REPRO_RUNS_DIR`` get fresh isolation)."""
    return RunLedger()


def record_run(kind, **fields):
    """Append one run of ``kind`` to the default ledger; returns the record.

    Never raises on I/O problems — the ledger is telemetry, and a
    read-only filesystem must not break training or benchmarking.
    """
    try:
        return default_ledger().append({"kind": kind, **fields})
    except OSError:
        return None
