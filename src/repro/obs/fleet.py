"""Fleet-wide observability: merge per-process metrics into one view.

The pre-fork serving pool (PR 6) split the process into a router and N
predictor workers — and with it split the metrics: each worker holds its
own :class:`~repro.obs.metrics.MetricsRegistry` that the parent's
``/metrics`` endpoint cannot see.  This module is the merge layer:

* workers periodically ship ``MetricsRegistry.export_state()`` snapshots
  (counters/gauges/histogram quantile sketches) over a dedicated stats
  queue;
* the parent's :class:`FleetAggregator` keys them by worker id, folds
  dead generations on crash/restart so counters stay monotonic, expires
  stale publishers, and renders everything with a ``worker`` label next
  to the router's own series;
* :func:`merge_sketches` combines the bounded quantile sketches
  (count-weighted), so fleet p50/p99 track the pooled stream within a
  couple of ranks;
* :class:`SloTracker` keeps the rolling good/bad request ratio behind
  the ``/healthz`` SLO summary (``REPRO_SLO_LATENCY_MS`` /
  ``REPRO_SLO_WINDOW``);
* :func:`render_top` draws the ``repro top`` terminal dashboard frame
  from a ``/stats`` + ``/healthz`` pair.

Everything here is transport-agnostic: states are plain dicts, so the
same merge logic serves multiprocessing queues, tests feeding literals,
and any future shm-bundle transport.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

import numpy as np

from .metrics import _format_value, _label_str

__all__ = ["merge_sketches", "sketch_quantile", "merge_states",
           "FleetAggregator", "SloTracker", "render_top"]

_EMPTY_SKETCH = {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                 "sample": []}

# Quantile columns rendered for merged histogram sketches — matches the
# summary quantiles the in-process Histogram instruments use.
_SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


# -- quantile sketches -----------------------------------------------------------
def _weighted_quantiles(values, weights, qs):
    """Interpolated weighted quantiles (Hazen positions) of a sample."""
    order = np.argsort(values, kind="stable")
    values, weights = values[order], weights[order]
    cum = np.cumsum(weights)
    if cum[-1] <= 0:
        return np.full(len(qs), values[0] if len(values) else 0.0)
    positions = (cum - 0.5 * weights) / cum[-1]
    return np.interp(qs, positions, values)


def merge_sketches(sketches, max_points=256):
    """Combine histogram sketches from independent streams into one.

    Counts/sums/extrema merge exactly; the merged ``sample`` is a
    quantile grid of the pooled distribution where each input sketch's
    points carry weight ``count / len(sample)`` — so a worker that saw
    10x the traffic pulls the merged quantiles 10x as hard.  For streams
    that still fit in their reservoirs this reproduces the pooled
    empirical quantiles to within a few ranks (property-tested).
    """
    sketches = [s for s in sketches or () if s and s.get("count")]
    if not sketches:
        return dict(_EMPTY_SKETCH)
    count = int(sum(s["count"] for s in sketches))
    total = float(sum(s["sum"] for s in sketches))
    lo = float(min(s["min"] for s in sketches))
    hi = float(max(s["max"] for s in sketches))
    values, weights = [], []
    for s in sketches:
        points = s.get("sample") or []
        if not points:
            continue
        values.append(np.asarray(points, dtype=float))
        weights.append(np.full(len(points), s["count"] / len(points)))
    if not values:
        return {"count": count, "sum": total, "min": lo, "max": hi,
                "sample": []}
    values = np.concatenate(values)
    weights = np.concatenate(weights)
    grid = np.linspace(0.0, 1.0, min(int(max_points), len(values))
                       if len(values) > 1 else 1)
    sample = _weighted_quantiles(values, weights, grid)
    return {"count": count, "sum": total, "min": lo, "max": hi,
            "sample": np.clip(sample, lo, hi).tolist()}


def sketch_quantile(sketch, q):
    """Quantile estimate from a sketch; NaN when it holds no points."""
    points = (sketch or {}).get("sample") or []
    if not points:
        return float("nan")
    return float(np.quantile(np.asarray(points, dtype=float), q))


# -- registry-state merging ------------------------------------------------------
def _series_key(labels):
    return tuple(sorted(labels.items()))


def merge_states(states, max_points=256):
    """Merge ``MetricsRegistry.export_state()`` dicts, oldest first.

    Counters and histogram sketches accumulate; gauges are last-write —
    a later state's value replaces an earlier one, which is why callers
    order inputs by publication time.  Inputs are not mutated.
    """
    out = {}
    for state in states:
        if not state:
            continue
        for name, entry in state.items():
            target = out.get(name)
            if target is None:
                target = out[name] = {"kind": entry["kind"],
                                      "help": entry.get("help", ""),
                                      "series": []}
            if entry.get("help") and not target.get("help"):
                target["help"] = entry["help"]
            existing = {_series_key(s["labels"]): s
                        for s in target["series"]}
            for series in entry.get("series", ()):
                key = _series_key(series["labels"])
                value = series["value"]
                match = existing.get(key)
                if match is None:
                    copied = {"labels": dict(series["labels"]),
                              "value": (dict(value)
                                        if isinstance(value, dict)
                                        else value)}
                    target["series"].append(copied)
                    existing[key] = copied
                elif entry["kind"] == "counter":
                    match["value"] += value
                elif entry["kind"] == "gauge":
                    match["value"] = value
                else:
                    match["value"] = merge_sketches(
                        [match["value"], value], max_points=max_points)
    return out


def _strip_gauges(state):
    return {name: entry for name, entry in state.items()
            if entry["kind"] != "gauge"}


def _render_families(families):
    """Prometheus text from ``{name: {kind, help, rows}}`` families."""
    lines = []
    for name in sorted(families):
        family = families[name]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for labels, value in family["rows"]:
            if family["kind"] == "summary":
                for q in _SUMMARY_QUANTILES:
                    lines.append(
                        f"{name}{_label_str(labels, {'quantile': f'{q:g}'})}"
                        f" {_format_value(sketch_quantile(value, q))}")
                lines.append(f"{name}_sum{_label_str(labels)} "
                             f"{_format_value(value.get('sum', 0.0))}")
                lines.append(f"{name}_count{_label_str(labels)} "
                             f"{_format_value(value.get('count', 0))}")
            else:
                lines.append(f"{name}{_label_str(labels)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


class FleetAggregator:
    """Parent-side merge point for per-worker registry snapshots.

    ``update()`` stores the latest snapshot per source (a worker id).
    Because counters in a restarted worker restart from zero, a
    generation change (new pid for a known source) *folds* the dead
    generation's counters and sketches into a per-source base first —
    summed totals stay monotonic across crashes, while its gauges are
    dropped (a dead worker has no queue depth).  ``expire()`` does the
    same for sources that silently stopped publishing.
    """

    def __init__(self, max_age_s=10.0):
        self.max_age_s = float(max_age_s)
        self._lock = threading.Lock()
        self._live = {}    # source -> {pid, ts, state}
        self._base = {}    # source -> {pid-or-None: folded state}

    # -- ingest -----------------------------------------------------------------
    def update(self, source, state, pid=None, ts=None):
        source = str(source)
        with self._lock:
            previous = self._live.get(source)
            if previous is not None and pid is not None \
                    and previous.get("pid") not in (None, pid):
                self._fold_locked(source, previous["state"],
                                  previous.get("pid"))
            self._live[source] = {"pid": pid,
                                  "ts": time.time() if ts is None else ts,
                                  "state": state}

    def _fold_locked(self, source, state, pid):
        """Archive a generation's counters/sketches (gauges dropped).

        Keyed by pid so a known generation is *replaced*, never
        double-counted: its counters are cumulative, so the latest
        snapshot supersedes earlier folds — and a source that resurfaces
        live with the same pid shadows its own folded entry entirely
        (see :meth:`_states_locked`).  Pid-less folds accumulate, since
        generations then cannot be told apart.
        """
        folded = _strip_gauges(state)
        gens = self._base.setdefault(source, {})
        if pid is None:
            gens[None] = merge_states([gens.get(None), folded])
        else:
            gens[pid] = folded

    def retire(self, source):
        """Fold a source's live snapshot into its base (crash/shutdown)."""
        source = str(source)
        with self._lock:
            entry = self._live.pop(source, None)
            if entry is not None:
                self._fold_locked(source, entry["state"], entry.get("pid"))
        return entry is not None

    def expire(self, max_age_s=None, now=None):
        """Retire every source whose last publication is stale."""
        limit = self.max_age_s if max_age_s is None else float(max_age_s)
        now = time.time() if now is None else now
        with self._lock:
            stale = [source for source, entry in self._live.items()
                     if now - entry["ts"] > limit]
            for source in stale:
                entry = self._live.pop(source)
                self._fold_locked(source, entry["state"], entry.get("pid"))
        return stale

    # -- views ------------------------------------------------------------------
    def sources(self):
        """Every known source id (live and retired), sorted."""
        with self._lock:
            return sorted(set(self._live) | set(self._base),
                          key=lambda s: (len(s), s))

    def live_sources(self):
        with self._lock:
            return {source: {"pid": entry["pid"], "ts": entry["ts"]}
                    for source, entry in self._live.items()}

    def _states_locked(self, source):
        """Base generations + live state of one source, oldest first.

        A base generation whose pid matches the current live pid is the
        live generation's own earlier fold — skipped, because the live
        cumulative snapshot supersedes it.
        """
        entry = self._live.get(source)
        skip = entry["pid"] if entry and entry["pid"] is not None else None
        states = [state for pid_key, state
                  in self._base.get(source, {}).items()
                  if skip is None or pid_key != skip]
        if entry is not None:
            states.append(entry["state"])
        return states

    def state_for(self, source):
        """Base + live combined state of one source (empty dict if unknown)."""
        source = str(source)
        with self._lock:
            states = self._states_locked(source)
        return merge_states(states)

    def merged(self, max_points=256):
        """One state merging every source: counters/sketches summed,
        gauges last-write in publication-time order."""
        with self._lock:
            states = []
            live_order = sorted(
                (source for source in self._live),
                key=lambda source: self._live[source]["ts"])
            for source in set(self._base) - set(self._live):
                states.extend(self._states_locked(source))
            for source in live_order:
                states.extend(self._states_locked(source))
        return merge_states(states, max_points=max_points)

    def counter_total(self, name, **labels):
        """Summed value of a counter family across the whole fleet."""
        entry = self.merged().get(name)
        total = 0.0
        for series in (entry or {}).get("series", ()):
            if all(series["labels"].get(k) == v
                   for k, v in labels.items()):
                total += series["value"]
        return total

    def histogram_quantiles(self, name, qs=(0.5, 0.99)):
        """Fleet-merged quantiles of one histogram family (NaN-free)."""
        entry = self.merged().get(name)
        sketch = merge_sketches([series["value"] for series
                                 in (entry or {}).get("series", ())])
        out = {}
        for q in qs:
            value = sketch_quantile(sketch, q)
            out[f"p{q * 100:g}".replace(".", "_")] = \
                0.0 if value != value else value
        out["count"] = sketch["count"]
        return out

    def render_prometheus(self, label="worker"):
        """Every source's combined state with a ``worker=<id>`` label."""
        families = {}
        for source in self.sources():
            state = self.state_for(source)
            for name, entry in state.items():
                family = families.setdefault(
                    name, {"kind": entry["kind"],
                           "help": entry.get("help", ""), "rows": []})
                for series in entry["series"]:
                    family["rows"].append(
                        (dict(series["labels"], **{label: source}),
                         series["value"]))
        return _render_families(families)

    def summary(self):
        """JSON-friendly fleet digest for ``/stats`` and ``repro top``."""
        merged = self.merged()

        def series(name):
            return (merged.get(name) or {}).get("series", ())

        requests = {}
        for s in series("repro_worker_requests_total"):
            outcome = s["labels"].get("outcome", "ok")
            requests[outcome] = requests.get(outcome, 0) + int(s["value"])
        latency = self.histogram_quantiles("repro_worker_request_ms")
        audit_mae = self.histogram_quantiles(
            "repro_worker_quality_slack_mae_ps")
        return {
            "worker_quality": {
                "audits": int(sum(
                    s["value"] for s in
                    series("repro_worker_quality_audits_total"))),
                "drops": int(sum(
                    s["value"] for s in
                    series("repro_worker_quality_audit_drops_total"))),
                "slack_mae_p50_ps": round(audit_mae["p50"], 3),
                "scored": audit_mae["count"],
            },
            "reporting": self.sources(),
            "live": sorted(self.live_sources()),
            "worker_requests": requests,
            "worker_requests_total": int(sum(requests.values())),
            "worker_graph_cache": {
                "hits": int(sum(s["value"] for s in
                                series("repro_worker_cache_hits_total"))),
                "misses": int(sum(s["value"] for s in
                                  series("repro_worker_cache_misses_total"))),
            },
            "latency_ms": {"p50": round(latency["p50"], 3),
                           "p99": round(latency["p99"], 3),
                           "count": latency["count"]},
        }


# -- SLO tracking ----------------------------------------------------------------
class SloTracker:
    """Rolling good/bad request ratio against a latency objective.

    A request is *good* when it succeeded within ``objective_ms``
    end-to-end; errors, sheds and over-objective responses are bad.  The
    window is a bounded ring of the most recent requests, so the ratio
    is a recent-health signal rather than a lifetime average.  Defaults
    come from ``REPRO_SLO_LATENCY_MS`` (500) and ``REPRO_SLO_WINDOW``
    (512).
    """

    def __init__(self, objective_ms=None, window=None):
        if objective_ms is None:
            objective_ms = float(os.environ.get("REPRO_SLO_LATENCY_MS",
                                                500.0) or 500.0)
        if window is None:
            window = int(os.environ.get("REPRO_SLO_WINDOW", 512) or 512)
        self.objective_ms = float(objective_ms)
        self.window = max(int(window), 1)
        self._lock = threading.Lock()
        self._events = deque(maxlen=self.window)

    def record(self, latency_ms, ok=True):
        good = bool(ok) and latency_ms is not None \
            and float(latency_ms) <= self.objective_ms
        with self._lock:
            self._events.append(good)
        return good

    def summary(self):
        with self._lock:
            total = len(self._events)
            good = sum(self._events)
        return {"objective_ms": self.objective_ms, "window": self.window,
                "total": total, "good": good, "bad": total - good,
                "good_ratio": round(good / total, 4) if total else 1.0}


# -- `repro top` rendering -------------------------------------------------------
def _rate(current, previous, dt):
    if previous is None or not dt or dt <= 0:
        return 0.0
    return max(current - previous, 0) / dt


def render_top(stats, healthz=None, prev=None, dt=None, url=""):
    """One ``repro top`` dashboard frame as a plain string.

    ``stats``/``healthz`` are the JSON bodies of a live server;
    ``prev`` is the previous ``/stats`` sample and ``dt`` the seconds
    between them, used for QPS/shed-rate deltas.  Pure function: the CLI
    owns the ANSI clear/redraw loop, tests just assert on the text.
    """
    healthz = healthz or {}
    prev = prev or {}
    counts = stats.get("counts", {})
    prev_counts = prev.get("counts", {})
    latency = stats.get("latency", {})
    pool = stats.get("pool") or {}
    slo = healthz.get("slo") or {}

    qps = _rate(counts.get("requests", 0),
                prev_counts.get("requests"), dt)
    shed_rate = _rate(counts.get("shed", 0), prev_counts.get("shed"), dt)
    lines = [
        f"repro top — {url or 'server'}   "
        f"uptime {stats.get('uptime_s', 0):.0f}s   "
        f"status {healthz.get('status', '?')}",
        f"requests {int(counts.get('requests', 0))}"
        f"  qps {qps:.1f}"
        f"  errors {int(counts.get('errors', 0))}"
        f"  degraded {int(counts.get('degraded', 0))}"
        f"  shed {int(counts.get('shed', 0))} ({shed_rate:.1f}/s)",
        f"latency p50 {latency.get('p50_ms', 0.0):.1f} ms"
        f"  p99 {latency.get('p99_ms', 0.0):.1f} ms"
        f"  mean {latency.get('mean_ms', 0.0):.1f} ms",
    ]
    if slo:
        lines.append(
            f"SLO {slo.get('good_ratio', 1.0) * 100:.1f}% good "
            f"(objective {slo.get('objective_ms', 0):.0f} ms, "
            f"last {slo.get('total', 0)} of window {slo.get('window', 0)})")
    quality = stats.get("quality") or {}
    if quality.get("enabled"):
        mae = quality.get("slack_mae_ps")
        drift = quality.get("drift_score")
        acc = (quality.get("slo") or {})
        parts = [f"quality: audits {quality.get('samples', 0)}"]
        if quality.get("worker_audits"):
            parts.append(f"(+{quality['worker_audits']} worker)")
        parts.append("slack MAE "
                     + (f"{mae:.1f} ps" if mae is not None else "—"))
        parts.append("drift "
                     + (f"{drift:.3f}" if drift is not None else "—"))
        parts.append(f"acc-SLO {acc.get('good_ratio', 1.0) * 100:.1f}%")
        hq = healthz.get("quality") or {}
        if hq.get("breached"):
            parts.append("BREACHED:" + ",".join(hq["breached"]))
        lines.append("  ".join(parts))
    if pool:
        lines.append(
            f"pool: {pool.get('workers', 0)} workers"
            f"  pending {pool.get('pending', 0)}"
            f"  shed {pool.get('shed', 0)}"
            f"  restarts {pool.get('restarts', 0)}"
            f"  shm {pool.get('shm_bytes', 0) / 1e6:.1f} MB"
            f" in {pool.get('shm_segments', 0)} segments")
        header = (f"{'worker':>6} {'alive':>5} {'qps':>7} {'p50ms':>8} "
                  f"{'p99ms':>8} {'done':>7} {'batches':>8} "
                  f"{'mean':>6} {'max':>4} {'restarts':>8}")
        lines.append(header)
        prev_workers = {w.get("worker"): w for w in
                        (prev.get("pool") or {}).get("per_worker", [])}
        for w in pool.get("per_worker", []):
            before = prev_workers.get(w.get("worker"), {})
            wqps = _rate(w.get("completed", 0),
                         before.get("completed"), dt)
            lines.append(
                f"{w.get('worker', '?'):>6} "
                f"{'up' if w.get('alive') else 'DOWN':>5} "
                f"{wqps:>7.1f} "
                f"{w.get('latency_p50_ms', 0.0):>8.1f} "
                f"{w.get('latency_p99_ms', 0.0):>8.1f} "
                f"{w.get('completed', 0):>7} "
                f"{w.get('batches', 0):>8} "
                f"{w.get('mean_batch', 0.0):>6.2f} "
                f"{w.get('batch_max', 0):>4} "
                f"{w.get('restarts', 0):>8}")
    else:
        for name, b in (stats.get("batching") or {}).items():
            lines.append(f"batcher[{name}]  {b.get('batches', 0)} batches"
                         f"  mean {b.get('mean_batch', 0.0):.2f}"
                         f"  max {b.get('max_batch', 0)}"
                         f"  depth {b.get('queue_depth', 0)}")
    caches = []
    for label in ("result_cache", "graph_cache"):
        cache = stats.get(label) or {}
        if cache:
            caches.append(f"{label.split('_')[0]} "
                          f"{cache.get('hits', 0)}/{cache.get('misses', 0)}"
                          f" h/m")
    if caches:
        lines.append("caches: " + "   ".join(caches))
    return "\n".join(lines)
