"""Static HTML report over the run ledger (stdlib only, inline SVG).

``repro report --html`` renders the whole recorded trajectory into one
self-contained page — no javascript, no external assets, open it from
the filesystem:

* training loss curves (per-epoch series of the recent train runs);
* per-design R² table from the latest evaluated training runs;
* bench trajectory (compute geomean speedup / stage times and serving
  throughput across recorded bench runs);
* prediction quality: endpoint accuracy of the latest evaluated run
  plus the shadow-audit slack-error trend (repro.obs.quality);
* the paper's Figure-4 view: predicted-vs-true endpoint slack scatter
  from the latest timing-GNN run that sampled one.
"""

from __future__ import annotations

import html

from .runs import default_ledger

__all__ = ["render_html_report", "write_html_report"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       max-width: 70em; color: #1b1f23; }
h1 { border-bottom: 2px solid #d0d7de; padding-bottom: .3em; }
h2 { margin-top: 2em; color: #24292f; }
table { border-collapse: collapse; margin: 1em 0; font-size: .9em; }
th, td { border: 1px solid #d0d7de; padding: .35em .7em; text-align: right; }
th { background: #f6f8fa; }
td.l, th.l { text-align: left; font-family: ui-monospace, monospace; }
svg { background: #fff; border: 1px solid #d0d7de; margin: .5em 0; }
.note { color: #57606a; font-size: .85em; }
"""

_PALETTE = ("#0969da", "#cf222e", "#1a7f37", "#9a6700", "#8250df",
            "#bf3989", "#1b7c83", "#57606a")


def _fmt(value, digits=4):
    if value is None:
        return "—"
    try:
        value = float(value)
    except (TypeError, ValueError):
        return html.escape(str(value))
    if value != value:                 # NaN
        return "NaN"
    return f"{value:.{digits}g}"


def _finite_points(xs, ys):
    points = []
    for x, y in zip(xs, ys):
        try:
            x, y = float(x), float(y)
        except (TypeError, ValueError):
            continue
        if x == x and y == y and abs(x) != float("inf") \
                and abs(y) != float("inf"):
            points.append((x, y))
    return points


def _axes(points, pad=0.05):
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    dx = (x1 - x0) or 1.0
    dy = (y1 - y0) or 1.0
    return x0 - dx * pad, x1 + dx * pad, y0 - dy * pad, y1 + dy * pad


class _Chart:
    """Tiny inline-SVG chart builder (line or scatter series)."""

    def __init__(self, width=560, height=280, margin=45):
        self.width, self.height, self.margin = width, height, margin
        self.series = []               # (label, points, kind)

    def add(self, label, xs, ys, kind="line"):
        points = _finite_points(xs, ys)
        if points:
            self.series.append((str(label), points, kind))
        return self

    def _scale(self):
        everything = [p for _l, pts, _k in self.series for p in pts]
        x0, x1, y0, y1 = _axes(everything)
        w = self.width - 2 * self.margin
        h = self.height - 2 * self.margin

        def to_px(x, y):
            px = self.margin + (x - x0) / (x1 - x0) * w
            py = self.height - self.margin - (y - y0) / (y1 - y0) * h
            return round(px, 1), round(py, 1)

        return (x0, x1, y0, y1), to_px

    def svg(self, title="", diagonal=False, x_label="", y_label=""):
        if not self.series:
            return "<p class='note'>no data recorded yet</p>"
        (x0, x1, y0, y1), to_px = self._scale()
        parts = [f"<svg width='{self.width}' height='{self.height}' "
                 f"viewBox='0 0 {self.width} {self.height}' "
                 f"role='img' aria-label='{html.escape(title)}'>"]
        ax0, ay0 = to_px(x0, y0)
        ax1, ay1 = to_px(x1, y1)
        parts.append(f"<rect x='{ax0}' y='{ay1}' width='{ax1 - ax0}' "
                     f"height='{ay0 - ay1}' fill='none' stroke='#d0d7de'/>")
        for frac in (0.0, 0.5, 1.0):
            xv = x0 + (x1 - x0) * frac
            yv = y0 + (y1 - y0) * frac
            px, _ = to_px(xv, y0)
            _, py = to_px(x0, yv)
            parts.append(f"<text x='{px}' y='{ay0 + 16}' font-size='10' "
                         f"text-anchor='middle'>{_fmt(xv, 3)}</text>")
            parts.append(f"<text x='{ax0 - 5}' y='{py + 3}' font-size='10' "
                         f"text-anchor='end'>{_fmt(yv, 3)}</text>")
        if title:
            parts.append(f"<text x='{self.width / 2}' y='16' font-size='12' "
                         f"text-anchor='middle' font-weight='bold'>"
                         f"{html.escape(title)}</text>")
        if x_label:
            parts.append(f"<text x='{self.width / 2}' "
                         f"y='{self.height - 4}' font-size='10' "
                         f"text-anchor='middle'>{html.escape(x_label)}</text>")
        if y_label:
            parts.append(f"<text x='12' y='{self.height / 2}' font-size='10' "
                         f"text-anchor='middle' transform='rotate(-90 12 "
                         f"{self.height / 2})'>{html.escape(y_label)}</text>")
        if diagonal:
            lo, hi = max(x0, y0), min(x1, y1)
            if hi > lo:
                p0, p1 = to_px(lo, lo), to_px(hi, hi)
                parts.append(f"<line x1='{p0[0]}' y1='{p0[1]}' "
                             f"x2='{p1[0]}' y2='{p1[1]}' stroke='#57606a' "
                             f"stroke-dasharray='4,3'/>")
        for i, (label, points, kind) in enumerate(self.series):
            color = _PALETTE[i % len(_PALETTE)]
            pixels = [to_px(x, y) for x, y in points]
            if kind == "line" and len(pixels) > 1:
                path = " ".join(f"{x},{y}" for x, y in pixels)
                parts.append(f"<polyline points='{path}' fill='none' "
                             f"stroke='{color}' stroke-width='1.5'/>")
            else:
                for x, y in pixels:
                    parts.append(f"<circle cx='{x}' cy='{y}' r='2.2' "
                                 f"fill='{color}' fill-opacity='0.65'/>")
            ly = 28 + 14 * i
            parts.append(f"<rect x='{self.width - 180}' y='{ly - 8}' "
                         f"width='10' height='10' fill='{color}'/>")
            parts.append(f"<text x='{self.width - 165}' y='{ly}' "
                         f"font-size='10'>{html.escape(label[:28])}</text>")
        parts.append("</svg>")
        return "".join(parts)


def _training_section(train_runs):
    out = ["<h2>Training runs</h2>"]
    if not train_runs:
        out.append("<p class='note'>no training runs recorded — run "
                   "<code>repro train</code> first</p>")
        return out
    recent = train_runs[-8:]
    chart = _Chart()
    for record in recent:
        loss = record.get("loss") or []
        chart.add(record.get("run_id", "?"),
                  list(range(1, len(loss) + 1)), loss)
    out.append(chart.svg(title="per-epoch training loss",
                         x_label="epoch", y_label="loss"))
    out.append("<table><tr><th class='l'>run</th><th class='l'>kind</th>"
               "<th class='l'>backend</th><th>epochs</th>"
               "<th>wall s</th><th>final loss</th></tr>")
    for record in reversed(recent):
        loss = record.get("loss") or []
        out.append(
            "<tr>"
            f"<td class='l'>{html.escape(str(record.get('run_id', '?')))}</td>"
            f"<td class='l'>{html.escape(str(record.get('kind', '?')))}</td>"
            f"<td class='l'>{html.escape(str(record.get('backend', '—')))}</td>"
            f"<td>{len(loss)}</td>"
            f"<td>{_fmt(record.get('wall_time_s'), 3)}</td>"
            f"<td>{_fmt(loss[-1] if loss else None)}</td></tr>")
    out.append("</table>")
    return out


def _r2_section(train_runs):
    out = ["<h2>Per-design R²</h2>"]
    evaluated = [r for r in train_runs if r.get("eval")]
    if not evaluated:
        out.append("<p class='note'>no evaluated runs yet</p>")
        return out
    record = evaluated[-1]
    evals = record["eval"]
    metrics = sorted({m for scores in evals.values()
                      for m in scores if m.endswith("_r2")})
    out.append(f"<p class='note'>latest evaluated run: "
               f"<code>{html.escape(str(record.get('run_id')))}</code></p>")
    out.append("<table><tr><th class='l'>design</th>"
               + "".join(f"<th>{html.escape(m[:-3])}</th>" for m in metrics)
               + "</tr>")
    for design in sorted(evals):
        cells = "".join(f"<td>{_fmt(evals[design].get(m))}</td>"
                        for m in metrics)
        out.append(f"<tr><td class='l'>{html.escape(design)}</td>"
                   f"{cells}</tr>")
    out.append("</table>")
    return out


def _bench_section(bench_runs):
    out = ["<h2>Bench trajectory</h2>"]
    compute = [r for r in bench_runs if r.get("kind") == "bench_compute"]
    serving = [r for r in bench_runs if r.get("kind") == "bench_serving"]
    if not compute and not serving:
        out.append("<p class='note'>no bench runs recorded — run "
                   "<code>repro bench-compute</code> / "
                   "<code>repro bench diff --record</code></p>")
        return out
    if compute:
        chart = _Chart()
        idx = list(range(1, len(compute) + 1))
        for stage in ("forward", "train_step"):
            ys = [((r.get("payload") or {}).get("summary") or {})
                  .get(f"speedup_{stage}_geomean") for r in compute]
            chart.add(f"speedup {stage}", idx, ys)
        out.append(chart.svg(title="compute: fused/naive geomean speedup",
                             x_label="recorded run #", y_label="speedup ×"))
    if serving:
        chart = _Chart()
        idx = list(range(1, len(serving) + 1))
        chart.add("throughput rps", idx,
                  [(r.get("payload") or {}).get("throughput_rps")
                   for r in serving])
        chart.add("p99 ms", idx,
                  [(r.get("payload") or {}).get("latency_p99_ms")
                   for r in serving])
        out.append(chart.svg(title="serving: throughput and tail latency",
                             x_label="recorded run #"))
    return out


def _figure4_section(train_runs):
    out = ["<h2>Slack scatter (paper Figure 4)</h2>"]
    with_scatter = [r for r in train_runs if r.get("slack_scatter")]
    if not with_scatter:
        out.append("<p class='note'>no slack scatter sampled yet — "
                   "recorded by timing-GNN training runs</p>")
        return out
    record = with_scatter[-1]
    scatter = record["slack_scatter"]
    chart = _Chart(width=420, height=420)
    chart.add(scatter.get("design", "endpoints"),
              scatter.get("true") or [], scatter.get("pred") or [],
              kind="scatter")
    out.append(f"<p class='note'>run "
               f"<code>{html.escape(str(record.get('run_id')))}</code>, "
               f"{len(scatter.get('true') or [])} sampled endpoints</p>")
    out.append(chart.svg(title="predicted vs ground-truth slack (ns)",
                         diagonal=True, x_label="true slack",
                         y_label="predicted slack"))
    return out


def _quality_section(train_runs, audit_log=None):
    out = ["<h2>Prediction quality</h2>"]
    # Endpoint accuracy of the latest evaluated training run: the same
    # numbers the online shadow auditor computes (repro.ml.endpoint_metrics).
    evaluated = [r for r in train_runs
                 if any("endpoint" in scores
                        for scores in (r.get("eval") or {}).values())]
    if evaluated:
        record = evaluated[-1]
        evals = record["eval"]
        out.append(f"<p class='note'>endpoint accuracy of run "
                   f"<code>{html.escape(str(record.get('run_id')))}</code> "
                   f"(identical to the online audit metrics)</p>")
        out.append("<table><tr><th class='l'>design</th>"
                   "<th>slack MAE ps</th><th>WNS err ps</th>"
                   "<th>TNS err ps</th><th>rank ρ</th>"
                   "<th>top-k recall</th></tr>")
        for design in sorted(evals):
            ep = evals[design].get("endpoint") or {}
            out.append(
                "<tr>"
                f"<td class='l'>{html.escape(design)}</td>"
                f"<td>{_fmt(ep.get('slack_mae'))}</td>"
                f"<td>{_fmt(ep.get('wns_setup_err'))}</td>"
                f"<td>{_fmt(ep.get('tns_setup_err'))}</td>"
                f"<td>{_fmt(ep.get('rank_setup'))}</td>"
                f"<td>{_fmt(ep.get('recall_setup'))}</td></tr>")
        out.append("</table>")
    else:
        out.append("<p class='note'>no endpoint-evaluated training runs "
                   "yet — recorded by <code>repro train --eval</code></p>")
    # Shadow-audit trend from the audit log (if one exists).
    if audit_log is None:
        from .quality import AuditLog
        audit_log = AuditLog()
    try:
        audits, corrupt = audit_log.scan()
    except OSError:
        audits, corrupt = [], 0
    if not audits:
        out.append("<p class='note'>no shadow audits recorded — serve "
                   "with <code>REPRO_AUDIT_RATE &gt; 0</code></p>")
        return out
    recent = audits[-500:]
    idx = list(range(1, len(recent) + 1))
    chart = _Chart()
    chart.add("slack MAE ps", idx,
              [r.get("slack_mae_ps") for r in recent])
    out.append(chart.svg(title="shadow-audit slack error trend",
                         x_label="audit #", y_label="MAE ps"))
    drifts = [r.get("drift_score") for r in recent
              if r.get("drift_score") is not None]
    last_drift = drifts[-1] if drifts else None
    note = (f"{len(audits)} audits in <code>"
            f"{html.escape(audit_log.path)}</code>")
    if last_drift is not None:
        note += f", latest drift score {_fmt(last_drift)}"
    if corrupt:
        note += f", {corrupt} corrupt lines skipped"
    out.append(f"<p class='note'>{note}</p>")
    return out


def render_html_report(ledger=None, title="repro run report"):
    """The whole ledger rendered as one self-contained HTML page."""
    ledger = ledger or default_ledger()
    records, corrupt = ledger.scan()
    train_runs = [r for r in records
                  if str(r.get("kind", "")).startswith("train")]
    bench_runs = [r for r in records
                  if str(r.get("kind", "")).startswith("bench")]
    body = [f"<h1>{html.escape(title)}</h1>",
            f"<p class='note'>ledger: <code>{html.escape(ledger.path)}</code>"
            f" — {len(records)} runs ({len(train_runs)} training, "
            f"{len(bench_runs)} bench), {corrupt} corrupt lines skipped</p>"]
    body += _training_section(train_runs)
    body += _r2_section(train_runs)
    body += _bench_section(bench_runs)
    body += _quality_section(train_runs)
    body += _figure4_section(train_runs)
    return ("<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            + "".join(body) + "</body></html>")


def write_html_report(path, ledger=None, title="repro run report"):
    """Render and write the report; returns ``path``."""
    page = render_html_report(ledger=ledger, title=title)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(page)
    return path
