"""Observability: metrics, tracing and structured logging.

The measurement substrate of the reproduction (DESIGN.md §3).  Three
independent primitives, one import point:

* :mod:`.metrics` — thread-safe :class:`MetricsRegistry` of counters,
  gauges and histograms (streaming quantiles), rendered either as a
  JSON snapshot (``/stats``) or in Prometheus text exposition format
  (``/metrics``);
* :mod:`.tracing` — nested spans (``with tracer.span("flow.place")``)
  with per-thread parent tracking, bounded retention and JSONL export
  (``REPRO_TRACE=<path>`` streams spans to a file);
* :mod:`.logging` — structured key=value records with per-module
  levels (``REPRO_LOG=repro.training=debug``).

The flow, STA engine, extraction and training instrument the
process-wide defaults (:func:`get_registry`, :func:`get_tracer`,
:func:`get_logger`); the serving stack wires a per-service registry so
co-hosted services stay separable.
"""

from .logging import (LEVELS, Logger, LogManager, configure, get_logger)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_registry, set_registry)
from .tracing import Span, Tracer, format_span_tree, get_tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry",
    "Span", "Tracer", "format_span_tree", "get_tracer",
    "LEVELS", "Logger", "LogManager", "configure", "get_logger",
]
