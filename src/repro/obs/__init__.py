"""Observability: metrics, tracing, logging, run ledger and profiling.

The measurement substrate of the reproduction (DESIGN.md §3).  Seven
independent primitives, one import point:

* :mod:`.metrics` — thread-safe :class:`MetricsRegistry` of counters,
  gauges and histograms (streaming quantiles), rendered either as a
  JSON snapshot (``/stats``) or in Prometheus text exposition format
  (``/metrics``);
* :mod:`.tracing` — nested spans (``with tracer.span("flow.place")``)
  with per-thread parent tracking, bounded retention and rotating JSONL
  export (``REPRO_TRACE=<path>``, bounded by ``REPRO_TRACE_MAX_LINES``);
* :mod:`.logging` — structured key=value records with per-module
  levels (``REPRO_LOG=repro.training=debug``);
* :mod:`.runs` — append-only, schema-versioned run ledger under
  ``REPRO_RUNS_DIR``: every training and bench run leaves a durable
  JSONL record (config fingerprint, loss series, per-design R², bench
  payloads) that ``repro runs``, ``repro bench diff`` and
  ``repro report --html`` (:mod:`.report`) consume;
* :mod:`.profile` — opt-in tape-level profiler: per-op / per-kernel
  wall time and output bytes on both autograd backends, with backward
  closures attributed per op (``repro profile``);
* :mod:`.quality` — online prediction-quality monitoring: budget-limited
  shadow-STA audits of served predictions (``REPRO_AUDIT_RATE``), shared
  endpoint accuracy metrics, PSI feature-drift detection against
  train-time :class:`FeatureProfile` references
  (``REPRO_DRIFT_THRESHOLD``), a rotated JSONL audit log and a rolling
  accuracy SLO behind ``/healthz``;
* :mod:`.fleet` — cross-process aggregation for the serving pool:
  merges per-worker registry snapshots (counters summed, gauges
  last-write, quantile sketches combined) under a ``worker`` label,
  tracks a rolling latency SLO, and renders the ``repro top``
  dashboard.

The flow, STA engine, extraction and training instrument the
process-wide defaults (:func:`get_registry`, :func:`get_tracer`,
:func:`get_logger`); the serving stack wires a per-service registry so
co-hosted services stay separable.
"""

from .fleet import (FleetAggregator, SloTracker, merge_sketches,
                    merge_states, render_top, sketch_quantile)
from .logging import (LEVELS, Logger, LogManager, configure, get_logger)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_registry, set_registry)
from .profile import (OpStat, Profiler, format_profile_table, profile,
                      profile_train_step)
from .quality import (AccuracySlo, AuditLog, DriftTracker, FeatureProfile,
                      QualityMonitor, audit_rate, default_audit_log_path,
                      drift_threshold)
from .report import render_html_report, write_html_report
from .runs import (RUNS_SCHEMA_VERSION, RunLedger, config_fingerprint,
                   default_ledger, default_runs_dir, new_run_id,
                   record_run)
from .tracing import (Span, Tracer, format_span_tree, get_tracer,
                      iter_trace_records, make_span_record, mint_trace_id)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry",
    "Span", "Tracer", "format_span_tree", "get_tracer",
    "iter_trace_records", "make_span_record", "mint_trace_id",
    "FleetAggregator", "SloTracker", "merge_sketches", "merge_states",
    "render_top", "sketch_quantile",
    "LEVELS", "Logger", "LogManager", "configure", "get_logger",
    "RUNS_SCHEMA_VERSION", "RunLedger", "config_fingerprint",
    "default_ledger", "default_runs_dir", "new_run_id", "record_run",
    "OpStat", "Profiler", "profile", "profile_train_step",
    "format_profile_table",
    "AccuracySlo", "AuditLog", "DriftTracker", "FeatureProfile",
    "QualityMonitor", "audit_rate", "default_audit_log_path",
    "drift_threshold",
    "render_html_report", "write_html_report",
]
