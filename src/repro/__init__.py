"""Reproduction of "A Timing Engine Inspired Graph Neural Network Model
for Pre-Routing Slack Prediction" (Guo et al., DAC 2022).

Subpackages
-----------
nn         numpy autograd + NN framework (PyTorch/DGL stand-in)
liberty    synthetic NLDM cell library (SkyWater-130 stand-in)
netlist    gate-level netlists + synthetic benchmark suite (Table 1)
placement  quadratic placer + legalizer
routing    rectilinear Steiner routing + RC extraction
sta        4-corner static timing analysis (label generator)
ml         CART / random forest / metrics (Barboza baseline)
graphdata  heterogeneous graph datasets (Tables 2 & 3 features)
models     TimingGNN (the paper's model), GCNII, RF/MLP baselines
training   losses (Eqs. 4-7), trainers, evaluation
experiments one module per paper table/figure
"""

from . import nn, liberty, netlist, placement, routing, sta, ml
from . import graphdata, models, training, experiments, opt

__version__ = "1.0.0"

__all__ = ["nn", "liberty", "netlist", "placement", "routing", "sta", "ml",
           "graphdata", "models", "training", "experiments", "opt",
           "__version__"]
