"""Training objectives — Eqs. (4)-(7) of the paper.

* ``atslew_loss``  — Eq. (4): L2 between predicted and true arrival time
  and slew, averaged over all pins (trains both stages).
* ``cell_delay_loss`` — Eq. (5): L2 over cell arcs (auxiliary).
* ``net_delay_loss``  — Eq. (6): L2 over fan-in (net sink) nodes,
  supervising only the net embedding stage.
* ``combined_loss``   — Eq. (7): the sum, with ablation switches used by
  Table 5's "Full / w/ Cell / w/ Net" columns.
"""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["atslew_loss", "cell_delay_loss", "net_delay_loss",
           "combined_loss"]


def atslew_loss(prediction, graph):
    """Eq. (4): main arrival-time + slew objective over all pins."""
    target = np.concatenate([graph.arrival, graph.slew], axis=1)
    mask = np.isfinite(target)
    target = np.where(mask, target, 0.0)
    diff = (prediction.atslew - nn.Tensor(target)) * nn.Tensor(
        mask.astype(np.float64))
    denom = max(int(mask.sum()), 1)
    return (diff * diff).sum() * (1.0 / denom)


def cell_delay_loss(prediction, graph):
    """Eq. (5): auxiliary cell-arc delay objective."""
    if len(prediction.edge_order) == 0:
        return nn.Tensor(0.0)
    target = graph.cell_arc_delay[prediction.edge_order]
    return nn.mse_loss(prediction.cell_delay, nn.Tensor(target))


def net_delay_loss(prediction, graph):
    """Eq. (6): auxiliary net delay objective at fan-in nodes."""
    mask = graph.is_net_sink
    if not mask.any():
        return nn.Tensor(0.0)
    return nn.mse_loss(prediction.net_delay, nn.Tensor(graph.net_delay),
                       mask=mask)


def combined_loss(prediction, graph, use_net_aux=True, use_cell_aux=True,
                  net_weight=500.0, cell_weight=10.0):
    """Eq. (7): main task plus the enabled auxiliary tasks.

    Table 5 ablations: Full = both aux on; "w/ Cell" = cell aux only;
    "w/ Net" = net aux only.

    The default auxiliary weights compensate for target-scale
    differences: in normalized units the arrival-time variance is ~3
    orders of magnitude above the cell-delay variance and ~5 above the
    net-delay variance, so unit weights would starve the auxiliary tasks
    of gradient (the paper's labels are in consistent physical units
    where the scales are much closer).
    """
    loss = atslew_loss(prediction, graph)
    parts = {"atslew": float(loss.data)}
    if use_cell_aux:
        cell = cell_delay_loss(prediction, graph)
        loss = loss + cell * cell_weight
        parts["cell_delay"] = float(cell.data)
    if use_net_aux:
        net = net_delay_loss(prediction, graph)
        loss = loss + net * net_weight
        parts["net_delay"] = float(net.data)
    return loss, parts
