"""Training loops for the timer-inspired GNN and the GCNII baseline.

Training is full-batch per design (each design's graph is one sample),
iterating over the training designs each epoch in a shuffled order with
Adam — matching the paper's setup of training one model across all 14
training benchmarks and evaluating generalization on the 7 test ones.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from .. import nn
from ..models import GCNII, ModelConfig, TimingGNN, normalized_adjacency
from ..nn import kernels as _kernels
from ..obs import get_logger, get_registry, get_tracer
from ..obs.runs import config_fingerprint, new_run_id, record_run
from .loss import combined_loss
from .evaluate import (evaluate_timing_gnn, evaluate_gcnii_output,
                       evaluate_net_delay, slack_from_arrival)

__all__ = ["TrainConfig", "TrainHistory", "train_timing_gnn", "train_gcnii"]

_log = get_logger("repro.training")


class _EpochMeter:
    """Per-model epoch instrumentation: metrics + structured logging.

    Preserves the old ``log_every`` semantics (0 = silent, else one
    record every N epochs) while also feeding the process-wide metrics
    registry, so ``repro stats`` sees training progress.  Every metric
    carries the ledger ``run`` label alongside ``model``, so a scrape
    can be joined back to the exact recorded run it came from.
    """

    def __init__(self, model_name, train_cfg, run_id=""):
        self._name = model_name
        self._cfg = train_cfg
        registry = get_registry()
        self._epoch_ms = registry.histogram(
            "repro_train_epoch_ms", "Wall time per training epoch.",
            model=model_name, run=run_id)
        self._loss = registry.gauge(
            "repro_train_loss", "Most recent mean training loss.",
            model=model_name, run=run_id)
        self._epochs = registry.counter(
            "repro_train_epochs_total", "Training epochs completed.",
            model=model_name, run=run_id)
        self._t0 = time.perf_counter()

    def epoch_done(self, epoch, loss, **fields):
        now = time.perf_counter()
        epoch_ms = (now - self._t0) * 1000.0
        self._t0 = now
        self._epoch_ms.observe(epoch_ms)
        self._loss.set(loss)
        self._epochs.inc()
        log_every = self._cfg.log_every
        if log_every and (epoch + 1) % log_every == 0:
            _log.info("epoch", model=self._name, epoch=epoch + 1,
                      epochs=self._cfg.epochs, loss=loss,
                      epoch_ms=epoch_ms, **fields)


def _design_names(graphs):
    return [getattr(g, "name", f"design_{i}") for i, g in enumerate(graphs)]


def _train_fingerprint(model_cfg, train_cfg, graphs, **extra):
    from ..graphdata.dataset import DATASET_VERSION

    return config_fingerprint(
        model_cfg=asdict(model_cfg), train_cfg=asdict(train_cfg),
        designs=sorted(_design_names(graphs)),
        dataset_version=DATASET_VERSION, **extra)


def _slack_scatter_sample(model, graph, limit=200):
    """Worst endpoint slack, true vs predicted, for the Figure-4 view.

    Pools setup and hold into one worst-slack-per-endpoint series (the
    report's scatter); evenly subsampled to ``limit`` points so ledger
    lines stay small.
    """
    from ..graphdata import TIME_SCALE

    pred = model.predict(graph)
    slack_true = graph.slack() * TIME_SCALE
    slack_pred = slack_from_arrival(graph, pred.numpy_arrival()) * TIME_SCALE
    true_w = np.nanmin(slack_true, axis=1)
    pred_w = np.nanmin(slack_pred, axis=1)
    mask = np.isfinite(true_w) & np.isfinite(pred_w)
    true_w, pred_w = true_w[mask], pred_w[mask]
    if true_w.size == 0:
        return None
    if true_w.size > limit:
        idx = np.linspace(0, true_w.size - 1, limit).astype(int)
        true_w, pred_w = true_w[idx], pred_w[idx]
    return {"design": getattr(graph, "name", "design"),
            "unit": "ns",
            "true": [round(float(v), 5) for v in true_w],
            "pred": [round(float(v), 5) for v in pred_w]}


@dataclass(frozen=True)
class TrainConfig:
    epochs: int = 60
    lr: float = 1e-3
    grad_clip: float = 5.0
    use_net_aux: bool = True      # Eq. (6) on/off ("w/ Cell" disables it)
    use_cell_aux: bool = True     # Eq. (5) on/off ("w/ Net" disables it)
    net_weight: float = 500.0     # auxiliary loss weights; see loss.py on
    cell_weight: float = 10.0     # why they compensate target scales
    seed: int = 1
    log_every: int = 0            # 0 = silent
    lr_decay: float = 1.0         # multiplicative per-epoch decay
    dtype: str = ""               # "" = session default; "float32"/"float64"


@dataclass
class TrainHistory:
    loss: list = field(default_factory=list)
    parts: list = field(default_factory=list)
    wall_time: float = 0.0
    run_id: str = ""                  # ledger identity of this training run
    eval: dict = field(default_factory=dict)   # {design: {metric: r2}}


def train_timing_gnn(train_graphs, cfg=None, train_cfg=None):
    """Train a :class:`TimingGNN` on a list of HeteroGraphs.

    Besides the model and its :class:`TrainHistory`, every call leaves
    a run record in the ledger (``repro runs ls``): config fingerprint,
    per-epoch losses, per-design R² and a sampled slack scatter.
    """
    cfg = cfg or ModelConfig.benchmark()
    train_cfg = train_cfg or TrainConfig()
    run_id = new_run_id("train_timing")
    rng = np.random.default_rng(train_cfg.seed)
    # TrainConfig.dtype selects the training precision (parameters,
    # activations, schedules); "" inherits the session default.
    def dtype_ctx():
        return (nn.use_dtype(train_cfg.dtype) if train_cfg.dtype
                else contextlib.nullcontext())
    with dtype_ctx():
        model = TimingGNN(cfg, rng=np.random.default_rng(cfg.seed))
        optim = nn.Adam(model.parameters(), lr=train_cfg.lr)
    history = TrainHistory(run_id=run_id)
    start = time.perf_counter()
    with dtype_ctx(), \
         get_tracer().span("train.timing_gnn", epochs=train_cfg.epochs,
                           designs=len(train_graphs),
                           run_id=run_id) as span:
        meter = _EpochMeter("timing-gnn", train_cfg, run_id=run_id)
        for epoch in range(train_cfg.epochs):
            order = rng.permutation(len(train_graphs))
            epoch_loss, epoch_parts = 0.0, {}
            for gi in order:
                graph = train_graphs[gi]
                pred = model(graph)
                loss, parts = combined_loss(
                    pred, graph, use_net_aux=train_cfg.use_net_aux,
                    use_cell_aux=train_cfg.use_cell_aux,
                    net_weight=train_cfg.net_weight,
                    cell_weight=train_cfg.cell_weight)
                optim.zero_grad()
                # free=True releases each tape node as it is consumed:
                # full-batch graphs make the tape the peak-memory driver
                # of training, and the graph is never re-backpropagated.
                loss.backward(free=True)
                nn.clip_grad_norm(model.parameters(), train_cfg.grad_clip)
                optim.step()
                epoch_loss += float(loss.data)
                for key, value in parts.items():
                    epoch_parts[key] = epoch_parts.get(key, 0.0) + value
            optim.lr *= train_cfg.lr_decay
            history.loss.append(epoch_loss / len(train_graphs))
            history.parts.append({k: v / len(train_graphs)
                                  for k, v in epoch_parts.items()})
            meter.epoch_done(epoch, history.loss[-1], lr=optim.lr)
        span.set(final_loss=history.loss[-1] if history.loss else None)
        history.eval = evaluate_on(model, train_graphs, kind="timing")
    history.wall_time = time.perf_counter() - start
    record_run(
        "train_timing", run_id=run_id, model="timing-gnn",
        backend=_kernels.backend(),
        fingerprint=_train_fingerprint(cfg, train_cfg, train_graphs),
        designs=_design_names(train_graphs), epochs=train_cfg.epochs,
        wall_time_s=round(history.wall_time, 4),
        loss=[round(float(x), 6) for x in history.loss],
        final_loss=history.loss[-1] if history.loss else None,
        eval=history.eval,
        slack_scatter=_slack_scatter_sample(model, train_graphs[0])
        if train_graphs else None)
    return model, history


def train_gcnii(train_graphs, num_layers, cfg=None, train_cfg=None):
    """Train a deep GCNII baseline on arrival time + slew (main task only).

    The baseline is homogeneous and cannot consume LUT edge features, so
    only Eq. (4) applies, as in the paper's comparison.
    """
    cfg = cfg or ModelConfig.benchmark()
    train_cfg = train_cfg or TrainConfig()
    run_id = new_run_id("train_gcnii")
    rng = np.random.default_rng(train_cfg.seed)
    model = GCNII(num_layers, cfg, rng=np.random.default_rng(cfg.seed))
    optim = nn.Adam(model.parameters(), lr=train_cfg.lr)
    history = TrainHistory(run_id=run_id)
    matrices = [normalized_adjacency(g) for g in train_graphs]
    start = time.perf_counter()
    model_name = f"gcnii-{num_layers}"
    with get_tracer().span("train.gcnii", layers=num_layers,
                           epochs=train_cfg.epochs,
                           designs=len(train_graphs),
                           run_id=run_id) as span:
        meter = _EpochMeter(model_name, train_cfg, run_id=run_id)
        for epoch in range(train_cfg.epochs):
            order = rng.permutation(len(train_graphs))
            epoch_loss = 0.0
            for gi in order:
                graph = train_graphs[gi]
                atslew = model(graph, p_matrix=matrices[gi])
                target = np.concatenate([graph.arrival, graph.slew],
                                        axis=1)
                mask = np.isfinite(target)
                diff = (atslew - nn.Tensor(np.where(mask, target, 0.0))) * \
                    nn.Tensor(mask.astype(np.float64))
                loss = (diff * diff).sum() * (1.0 / max(int(mask.sum()), 1))
                optim.zero_grad()
                loss.backward(free=True)
                nn.clip_grad_norm(model.parameters(), train_cfg.grad_clip)
                optim.step()
                epoch_loss += float(loss.data)
            optim.lr *= train_cfg.lr_decay
            history.loss.append(epoch_loss / len(train_graphs))
            meter.epoch_done(epoch, history.loss[-1])
        span.set(final_loss=history.loss[-1] if history.loss else None)
        history.eval = evaluate_on(model, train_graphs, kind="gcnii")
    history.wall_time = time.perf_counter() - start
    record_run(
        "train_gcnii", run_id=run_id, model=model_name,
        backend=_kernels.backend(),
        fingerprint=_train_fingerprint(cfg, train_cfg, train_graphs,
                                       num_layers=num_layers),
        designs=_design_names(train_graphs), epochs=train_cfg.epochs,
        wall_time_s=round(history.wall_time, 4),
        loss=[round(float(x), 6) for x in history.loss],
        final_loss=history.loss[-1] if history.loss else None,
        eval=history.eval)
    return model, history


def train_net_embedding(train_graphs, cfg=None, train_cfg=None):
    """Train the net embedding model standalone on net delay (Table 4).

    Sec. 3.3.1: "our net embedding model can be used standalone to
    predict net delays" — this is the GNN column of the paper's Table 4.
    """
    from ..models import NetEmbedding
    from .loss import net_delay_loss

    cfg = cfg or ModelConfig.benchmark()
    train_cfg = train_cfg or TrainConfig()
    run_id = new_run_id("train_net_emb")
    rng = np.random.default_rng(train_cfg.seed)
    model = NetEmbedding(cfg, rng=np.random.default_rng(cfg.seed))
    optim = nn.Adam(model.parameters(), lr=train_cfg.lr)
    history = TrainHistory(run_id=run_id)
    start = time.perf_counter()

    class _Pred:
        __slots__ = ("net_delay",)

    with get_tracer().span("train.net_embedding",
                           epochs=train_cfg.epochs,
                           designs=len(train_graphs),
                           run_id=run_id) as span:
        meter = _EpochMeter("net-emb", train_cfg, run_id=run_id)
        for epoch in range(train_cfg.epochs):
            order = rng.permutation(len(train_graphs))
            epoch_loss = 0.0
            for gi in order:
                graph = train_graphs[gi]
                _emb, net_delay = model(graph)
                pred = _Pred()
                pred.net_delay = net_delay
                loss = net_delay_loss(pred, graph)
                optim.zero_grad()
                loss.backward(free=True)
                nn.clip_grad_norm(model.parameters(), train_cfg.grad_clip)
                optim.step()
                epoch_loss += float(loss.data)
            optim.lr *= train_cfg.lr_decay
            history.loss.append(epoch_loss / len(train_graphs))
            meter.epoch_done(epoch, history.loss[-1])
        span.set(final_loss=history.loss[-1] if history.loss else None)
        for graph in train_graphs:
            _emb, net_delay = model(graph)
            sinks = graph.is_net_sink
            history.eval[getattr(graph, "name", "design")] = {
                "net_delay_r2": evaluate_net_delay(
                    graph.net_delay[sinks], net_delay.data[sinks])}
    history.wall_time = time.perf_counter() - start
    record_run(
        "train_net_emb", run_id=run_id, model="net-emb",
        backend=_kernels.backend(),
        fingerprint=_train_fingerprint(cfg, train_cfg, train_graphs),
        designs=_design_names(train_graphs), epochs=train_cfg.epochs,
        wall_time_s=round(history.wall_time, 4),
        loss=[round(float(x), 6) for x in history.loss],
        final_loss=history.loss[-1] if history.loss else None,
        eval=history.eval)
    return model, history


def evaluate_on(model, graphs, names=None, kind="timing"):
    """Evaluate a trained model on several designs; returns {name: metrics}."""
    out = {}
    for i, graph in enumerate(graphs):
        name = names[i] if names else graph.name
        if kind == "timing":
            out[name] = evaluate_timing_gnn(model, graph)
        else:
            atslew = model.predict(graph).data
            out[name] = evaluate_gcnii_output(graph, atslew)
        _log.debug("evaluate", design=name, kind=kind,
                   **{k: v for k, v in out[name].items()
                      if isinstance(v, (int, float))})
    return out
