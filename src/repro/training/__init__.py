"""Training: losses (Eqs. 4-7), trainers, evaluation metrics."""

from .loss import atslew_loss, cell_delay_loss, net_delay_loss, combined_loss
from .trainer import (TrainConfig, TrainHistory, train_timing_gnn,
                      train_gcnii, train_net_embedding, evaluate_on)
from .evaluate import (evaluate_timing_gnn, evaluate_gcnii_output,
                       slack_from_arrival, evaluate_net_delay)

__all__ = [
    "atslew_loss", "cell_delay_loss", "net_delay_loss", "combined_loss",
    "TrainConfig", "TrainHistory", "train_timing_gnn", "train_gcnii", "train_net_embedding",
    "evaluate_on",
    "evaluate_timing_gnn", "evaluate_gcnii_output", "slack_from_arrival",
    "evaluate_net_delay",
]
