"""Per-design evaluation: R2 scores on arrival time, slack, net delay."""

from __future__ import annotations

import numpy as np

from ..ml import endpoint_slack_metrics, r2_score

__all__ = ["evaluate_timing_gnn", "evaluate_gcnii_output",
           "slack_from_arrival", "evaluate_net_delay",
           "endpoint_metrics_for"]


def slack_from_arrival(graph, arrival):
    """Endpoint slack from (possibly predicted) arrivals + true RAT.

    This is the paper's slack evaluation protocol: the model predicts
    arrival times; slack at endpoints uses the known required times.
    Returns (num_endpoints, 4): hold slack in columns 0-1, setup in 2-3.
    """
    return graph.slack(arrival=arrival)


def endpoint_metrics_for(graph, arrival_pred):
    """E2ESlack-style endpoint metrics (ps) for predicted arrivals.

    The single shared entry point for both offline eval and the online
    shadow-STA audit: WNS/TNS absolute error, worst-slack MAE, Spearman
    rank correlation and top-k negative-slack recall, per mode.
    """
    from ..graphdata import TIME_SCALE
    return endpoint_slack_metrics(graph.slack(),
                                  slack_from_arrival(graph, arrival_pred),
                                  time_scale=TIME_SCALE)


def evaluate_timing_gnn(model, graph):
    """R2 metrics of the full model on one design."""
    pred = model.predict(graph)
    arrival_pred = pred.numpy_arrival()
    slew_pred = pred.numpy_slew()
    metrics = {
        "arrival_r2": r2_score(graph.arrival, arrival_pred),
        "slew_r2": r2_score(graph.slew, slew_pred),
        "slack_r2": r2_score(graph.slack(),
                             slack_from_arrival(graph, arrival_pred)),
        "net_delay_r2": r2_score(
            graph.net_delay[graph.is_net_sink],
            pred.net_delay.data[graph.is_net_sink]),
    }
    full_cell = pred.cell_delay_full(graph.num_cell_edges)
    metrics["cell_delay_r2"] = r2_score(graph.cell_arc_delay, full_cell)
    # Combined headline number in the spirit of Table 5 ("arrival time /
    # slack prediction"): the arrival-time R2 over all pins.
    metrics["at_slack_r2"] = metrics["arrival_r2"]
    metrics["endpoint"] = endpoint_metrics_for(graph, arrival_pred)
    return metrics


def evaluate_gcnii_output(graph, atslew):
    """R2 metrics for a homogeneous baseline's (N, 8) output array."""
    arrival_pred = atslew[:, 0:4]
    return {
        "arrival_r2": r2_score(graph.arrival, arrival_pred),
        "slew_r2": r2_score(graph.slew, atslew[:, 4:8]),
        "slack_r2": r2_score(graph.slack(),
                             slack_from_arrival(graph, arrival_pred)),
        "at_slack_r2": r2_score(graph.arrival, arrival_pred),
    }


def evaluate_net_delay(y_true, y_pred):
    """R2 on net delay vectors (Table 4 metric)."""
    return r2_score(np.asarray(y_true), np.asarray(y_pred))
