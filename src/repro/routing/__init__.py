"""Routing substrate: rectilinear Steiner trees and RC parasitics."""

from .steiner import SteinerTree, build_steiner_tree
from .rctree import RCTree, extract_rc_tree
from .router import RoutedNet, Routing, route_design
from .spef import write_spef

__all__ = ["SteinerTree", "build_steiner_tree",
           "RCTree", "extract_rc_tree",
           "RoutedNet", "Routing", "route_design", "write_spef"]
