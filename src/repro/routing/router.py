"""Whole-design routing: Steiner trees + per-corner RC trees for every net."""

from __future__ import annotations

import numpy as np

from ..liberty.cell import CORNERS, EL_RF
from .rctree import extract_rc_tree
from .steiner import build_steiner_tree

__all__ = ["RoutedNet", "Routing", "route_design"]


class RoutedNet:
    """Routing + parasitics of one net.

    ``rc`` maps corner name -> RCTree.  ``sink_delay[corner_transition]``
    is the per-sink Elmore delay 4-vector source, aligned with
    ``net.sinks``; transitions share the wire delay (Elmore is
    transition-independent) but corners differ through derating and pin
    capacitance.
    """

    def __init__(self, net, tree, rc):
        self.net = net
        self.tree = tree
        self.rc = rc

    @property
    def wirelength(self):
        return self.tree.total_wirelength

    def load_cap(self, corner):
        """Total capacitance presented to the driver at ``corner`` (fF)."""
        return self.rc[corner].total_cap

    def sink_elmore(self, corner):
        """Elmore delay (ps) per sink pin, aligned with ``net.sinks``."""
        return self.rc[corner].sink_delays()[1:]

    def sink_delay_4(self):
        """Per-sink (num_sinks, 4) net delays in EL_RF corner order."""
        per_corner = {c: self.sink_elmore(c) for c in CORNERS}
        cols = [per_corner[c] for c, _t in EL_RF]
        if len(self.net.sinks) == 0:
            return np.zeros((0, 4))
        return np.stack(cols, axis=1)


class Routing:
    """Routing result for a whole design."""

    def __init__(self, design, placement):
        self.design = design
        self.placement = placement
        self.nets = {}               # net name -> RoutedNet

    def __getitem__(self, net_name):
        return self.nets[net_name]

    @property
    def total_wirelength(self):
        return float(sum(r.wirelength for r in self.nets.values()))


def _sink_caps(design, net, corner_index):
    return np.asarray([design.pin_capacitance(sink)[corner_index]
                       for sink in net.sinks])


def route_design(design, placement):
    """Route every net of a placed design and extract per-corner RC trees."""
    wire = design.library.wire
    routing = Routing(design, placement)
    pin_xy = placement.pin_xy
    for net in design.nets:
        coords = pin_xy[[p.index for p in net.pins]]
        tree = build_steiner_tree(coords)
        rc = {}
        for corner in CORNERS:
            # Pin capacitance per corner: EL_RF order is (early rise,
            # early fall, late rise, late fall); wire analysis uses the
            # mean of rise/fall pin caps for that corner.
            base = 0 if corner == "early" else 2
            caps_r = _sink_caps(design, net, base)
            caps_f = _sink_caps(design, net, base + 1)
            rc[corner] = extract_rc_tree(tree, 0.5 * (caps_r + caps_f),
                                         wire, corner)
        routing.nets[net.name] = RoutedNet(net, tree, rc)
    return routing
