"""RC tree extraction and Elmore analysis for routed nets.

Each Steiner tree becomes an RC tree under the library's per-unit-length
wire model: a segment of length L contributes resistance r*L and a pi
capacitance (c*L/2 at each end).  Sink nodes additionally carry the
liberty pin capacitance.  Elmore delay from the root to each node is

    delay(v) = sum over edges e on root->v path of R_e * Cdown(e)

computed in two linear passes (downstream capacitance, then prefix
delays), exactly as a signoff parasitic engine would.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RCTree", "extract_rc_tree"]


class RCTree:
    """Parasitics of one routed net at one corner."""

    def __init__(self, tree, node_cap, edge_res):
        self.tree = tree                 # SteinerTree
        self.node_cap = np.asarray(node_cap, dtype=np.float64)   # fF
        self.edge_res = np.asarray(edge_res, dtype=np.float64)   # kOhm
        self._downstream = None

    @property
    def total_cap(self):
        """Total capacitance seen by the driver (fF)."""
        return float(self.node_cap.sum())

    def downstream_cap(self):
        """Capacitance below each node, inclusive (fF)."""
        if self._downstream is not None:
            return self._downstream
        order = self.tree.topological_order()
        down = self.node_cap.copy()
        for node in reversed(order):
            par = self.tree.parent[node]
            if par >= 0:
                down[par] += down[node]
        self._downstream = down
        return down

    def elmore_delays(self):
        """Elmore delay from the root to every node (ps)."""
        down = self.downstream_cap()
        delay = np.zeros(self.tree.num_nodes)
        for node in self.tree.topological_order():
            par = self.tree.parent[node]
            if par >= 0:
                delay[node] = delay[par] + self.edge_res[node] * down[node]
        return delay

    def sink_delays(self):
        """Elmore delays at the pin nodes (driver first, so entry 0 is 0)."""
        delay = self.elmore_delays()
        return delay[self.tree.pin_nodes]


def extract_rc_tree(tree, sink_pin_caps, wire, corner):
    """Build the RC tree of a routed net at one timing corner.

    ``sink_pin_caps`` are capacitances (fF) aligned with
    ``tree.pin_nodes[1:]`` (the sinks, driver excluded).
    """
    unit_r = wire.unit_r(corner)
    unit_c = wire.unit_c(corner)
    node_cap = np.zeros(tree.num_nodes)
    edge_res = np.zeros(tree.num_nodes)
    for node in range(tree.num_nodes):
        par = tree.parent[node]
        if par >= 0:
            length = tree.edge_length[node]
            edge_res[node] = unit_r * length
            node_cap[node] += 0.5 * unit_c * length
            node_cap[par] += 0.5 * unit_c * length
    for pin_node, cap in zip(tree.pin_nodes[1:], sink_pin_caps):
        node_cap[pin_node] += cap
    return RCTree(tree, node_cap, edge_res)
