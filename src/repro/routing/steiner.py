"""Rectilinear Steiner tree construction.

Global routing is approximated per net: a Prim minimum spanning tree over
the net's pins under Manhattan distance, with each tree edge realised as
an L-shaped route whose corner becomes a Steiner node.  This is the
classic RSMT approximation used by pre-routing estimators; it keeps the
defining property the paper relies on — the routed topology (and thus
delay and load) is a non-trivial function of *all* pin locations in the
net, which is what the net embedding model must learn.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SteinerTree", "build_steiner_tree"]


class SteinerTree:
    """A routed net as a rooted rectilinear tree.

    Attributes
    ----------
    xy : (M, 2) node coordinates; node 0 is the root (driver pin).
    parent : (M,) parent index per node (-1 for the root).
    edge_length : (M,) Manhattan length of the edge to the parent (0 at root).
    pin_nodes : list of node ids, aligned with the ``pins`` argument order
        given to :func:`build_steiner_tree` (driver first).
    """

    def __init__(self, xy, parent, edge_length, pin_nodes):
        self.xy = np.asarray(xy, dtype=np.float64)
        self.parent = np.asarray(parent, dtype=np.int64)
        self.edge_length = np.asarray(edge_length, dtype=np.float64)
        self.pin_nodes = list(pin_nodes)

    @property
    def num_nodes(self):
        return len(self.parent)

    @property
    def total_wirelength(self):
        return float(self.edge_length.sum())

    def children(self):
        """List of child ids per node."""
        out = [[] for _ in range(self.num_nodes)]
        for i, p in enumerate(self.parent):
            if p >= 0:
                out[p].append(i)
        return out

    def topological_order(self):
        """Node ids ordered root-first (parents before children)."""
        order = []
        children = self.children()
        stack = [0]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children[node])
        return order

    def path_to_root(self, node):
        path = [node]
        while self.parent[path[-1]] >= 0:
            path.append(int(self.parent[path[-1]]))
        return path

    def validate(self):
        """Check the tree is a single rooted tree with consistent lengths."""
        if self.parent[0] != -1:
            raise ValueError("node 0 must be the root")
        seen = set()
        for i in range(self.num_nodes):
            path = set()
            j = i
            while j >= 0 and j not in seen:
                if j in path:
                    raise ValueError("cycle in steiner tree")
                path.add(j)
                j = int(self.parent[j])
            seen |= path
        for i, p in enumerate(self.parent):
            if p >= 0:
                manhattan = float(np.abs(self.xy[i] - self.xy[p]).sum())
                if manhattan - self.edge_length[i] > 1e-6:
                    raise ValueError("edge shorter than manhattan distance")
        return True


def _prim_mst(points):
    """Prim's MST over Manhattan distance. Returns parent array (root=0)."""
    n = len(points)
    parent = np.full(n, -1, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    dist = np.full(n, np.inf)
    best_link = np.zeros(n, dtype=np.int64)
    in_tree[0] = True
    d0 = np.abs(points - points[0]).sum(axis=1)
    dist = np.where(in_tree, np.inf, d0)
    best_link[:] = 0
    for _ in range(n - 1):
        nxt = int(np.argmin(dist))
        parent[nxt] = best_link[nxt]
        in_tree[nxt] = True
        dist[nxt] = np.inf
        d = np.abs(points - points[nxt]).sum(axis=1)
        better = (~in_tree) & (d < dist)
        dist[better] = d[better]
        best_link[better] = nxt
    return parent


def build_steiner_tree(pin_xy):
    """Route one net.

    ``pin_xy`` is (K, 2) with the driver first.  Returns a
    :class:`SteinerTree` whose ``pin_nodes[i]`` is the tree node of pin i.
    """
    pin_xy = np.asarray(pin_xy, dtype=np.float64)
    k = len(pin_xy)
    if k == 1:
        return SteinerTree(pin_xy, [-1], [0.0], [0])
    mst_parent = _prim_mst(pin_xy)
    center = pin_xy.mean(axis=0)

    xy = [tuple(p) for p in pin_xy]
    parent = [-1] * k
    for child in range(1, k):
        par = int(mst_parent[child])
        cx, cy = pin_xy[child]
        px, py = pin_xy[par]
        if cx == px or cy == py:
            parent[child] = par
            continue
        # Two L-shape corners; take the one nearer the net's center of
        # mass, which mimics a router's tendency to share trunks.
        corner_a = (cx, py)
        corner_b = (px, cy)
        da = abs(corner_a[0] - center[0]) + abs(corner_a[1] - center[1])
        db = abs(corner_b[0] - center[0]) + abs(corner_b[1] - center[1])
        corner = corner_a if da <= db else corner_b
        xy.append(corner)
        corner_id = len(xy) - 1
        parent.append(par)           # corner hangs off the MST parent
        parent[child] = corner_id    # child hangs off the corner
    xy = np.asarray(xy)
    edge_length = np.zeros(len(xy))
    for i, p in enumerate(parent):
        if p >= 0:
            edge_length[i] = float(np.abs(xy[i] - xy[p]).sum())
    return SteinerTree(xy, parent, edge_length, list(range(k)))
