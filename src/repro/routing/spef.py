"""SPEF-style parasitics writer for routed nets.

Extraction flows hand the router's RC networks to the timer through a
SPEF file (Standard Parasitic Exchange Format).  This writer emits the
subset matching our RC trees — per net: total capacitance, *CAP entries
for every tree node, *RES entries for every tree edge — at a chosen
corner, with node names ``<net>:<k>`` for internal Steiner nodes and pin
names for pin nodes.
"""

from __future__ import annotations

__all__ = ["write_spef"]


def _node_name(routed_net, graph_names, node):
    tree = routed_net.tree
    if node in tree.pin_nodes:
        pin_pos = tree.pin_nodes.index(node)
        pin = routed_net.net.pins[pin_pos]
        return pin.name.replace("/", ":")
    return f"{routed_net.net.name}:{node}"


def write_spef(routing, corner="late", design_name="design",
               divider="/", delimiter=":"):
    """Serialize a :class:`~repro.routing.router.Routing` as SPEF text."""
    lines = [
        '*SPEF "IEEE 1481"',
        f'*DESIGN "{design_name}"',
        f'*DIVIDER {divider}',
        f'*DELIMITER {delimiter}',
        '*T_UNIT 1 PS',
        '*C_UNIT 1 FF',
        '*R_UNIT 1 KOHM',
        '',
    ]
    for net_name in sorted(routing.nets):
        routed = routing.nets[net_name]
        rc = routed.rc[corner]
        tree = routed.tree
        lines.append(f"*D_NET {net_name} {rc.total_cap:.4f}")
        lines.append("*CONN")
        driver = routed.net.driver
        lines.append(f"*I {driver.name.replace('/', delimiter)} O")
        for sink in routed.net.sinks:
            lines.append(f"*I {sink.name.replace('/', delimiter)} I")
        lines.append("*CAP")
        for node in range(tree.num_nodes):
            if rc.node_cap[node] > 0:
                name = _node_name(routed, None, node)
                lines.append(f"{node + 1} {name} {rc.node_cap[node]:.4f}")
        lines.append("*RES")
        res_id = 1
        for node in range(tree.num_nodes):
            parent = tree.parent[node]
            if parent >= 0 and rc.edge_res[node] > 0:
                a = _node_name(routed, None, parent)
                b = _node_name(routed, None, node)
                lines.append(f"{res_id} {a} {b} {rc.edge_res[node]:.6f}")
                res_id += 1
        lines.append("*END")
        lines.append("")
    return "\n".join(lines)
