"""Net embedding model (paper Sec. 3.3.1).

Three net-convolution layers over the bidirected net graph.  Each layer
performs:

* **graph broadcast** — driver-to-sink flow along net edges: the new sink
  feature is an MLP of [driver feature, sink feature, net edge feature];
* **graph reduction** — sink-to-driver flow along reversed net edges,
  with *two reduction channels* (sum and max) over per-sink messages,
  combined with the driver's own feature by an MLP.

Because every pin either drives a net or is the sink of exactly one net,
one layer updates every node.  The final embedding predicts the 4-corner
net delay at fan-in (sink) nodes — the standalone net delay model of
Table 4 — and carries free unsupervised dimensions used downstream by the
delay propagation stage (capacitive load, slew proxies, ...).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import ModelConfig

__all__ = ["NetConvLayer", "NetEmbedding"]


def reduction_channels(msg, segment_ids, num_segments, mode, schedule=None):
    """Segment-reduce ``msg`` through the configured channel set.

    The paper uses two channels (sum and max); "sum"/"max" alone are the
    ablation variants benchmarked in benchmarks/test_ablations.py.
    ``schedule`` is an optional pre-sorted CSR layout of ``segment_ids``
    (see :class:`repro.nn.SegmentSchedule`) reused by the fused kernels.
    """
    parts = []
    if mode in ("sum", "both"):
        parts.append(nn.segment_sum(msg, segment_ids, num_segments,
                                    schedule=schedule))
    if mode in ("max", "both"):
        parts.append(nn.segment_max(msg, segment_ids, num_segments,
                                    schedule=schedule))
    if not parts:
        raise ValueError(f"unknown reduction mode {mode!r}")
    return parts


def num_reduction_channels(mode):
    return 2 if mode == "both" else 1


class NetConvLayer(nn.Module):
    """One broadcast + reduce step over the net graph."""

    def __init__(self, in_dim, out_dim, edge_dim, cfg, rng):
        super().__init__()
        mlp = dict(hidden=cfg.mlp_hidden, num_hidden_layers=cfg.mlp_layers)
        self.reduction = cfg.reduction
        n_ch = num_reduction_channels(cfg.reduction)
        self.broadcast = nn.MLP(2 * in_dim + edge_dim, out_dim, rng, **mlp)
        self.reduce_msg = nn.MLP(in_dim + edge_dim, out_dim, rng, **mlp)
        self.reduce_combine = nn.MLP(in_dim + n_ch * out_dim, out_dim, rng,
                                     **mlp)

    def forward(self, h, graph):
        """``h`` is (N, in_dim); returns (N, out_dim)."""
        n = graph.num_nodes
        sched = graph.compute_schedule()
        # Broadcast: driver -> sinks (each sink has exactly one net edge).
        # New node states are tanh-bounded: the embedding feeds a deep
        # recurrent composition downstream (one step per topological
        # level), and unbounded states diverge exponentially with depth.
        joint = nn.gather_concat(
            [h, h, graph.net_features],
            [graph.net_src, graph.net_dst, None],
            schedules=[sched.net_src_sched, sched.net_dst_sched, None])
        sink_new = self.broadcast(joint, activation="tanh")
        # Reduction: sinks -> driver through the configured channels
        # (paper default: sum and max).
        msg = self.reduce_msg(nn.gather_concat(
            [h, graph.net_features], [graph.net_dst, None],
            schedules=[sched.net_dst_sched, None]), activation="tanh")
        aggs = reduction_channels(msg, graph.net_src, n, self.reduction,
                                  schedule=sched.net_src_sched)
        driver_new = self.reduce_combine(nn.concat([h] + aggs),
                                         activation="tanh")
        # Drivers take the reduction result; sinks take the broadcast one.
        return nn.scatter_rows(driver_new, graph.net_dst, sink_new)


class NetEmbedding(nn.Module):
    """Stacked net convolutions + net-delay prediction head."""

    def __init__(self, cfg=None, rng=None):
        super().__init__()
        cfg = cfg or ModelConfig.paper()
        rng = rng or np.random.default_rng(cfg.seed)
        self.cfg = cfg
        dims = ([cfg.node_feat_dim] +
                [cfg.embedding_dim] * cfg.num_net_conv_layers)
        self.layers = [NetConvLayer(din, dout, cfg.net_edge_feat_dim, cfg, rng)
                       for din, dout in zip(dims[:-1], dims[1:])]
        self.net_delay_head = nn.MLP(cfg.embedding_dim, 4, rng,
                                     hidden=cfg.mlp_hidden,
                                     num_hidden_layers=cfg.mlp_layers)

    def forward(self, graph):
        """Returns (embedding (N, D), net_delay prediction (N, 4))."""
        h = nn.Tensor(graph.node_features)
        for layer in self.layers:
            h = layer(h, graph)
        return h, self.net_delay_head(h)

    def predict_batch(self, graphs):
        """One forward pass over a disjoint union of several designs.

        Returns one ``{"net_delay"}`` dict (numpy, member node order)
        per input graph; see :meth:`TimingGNN.predict_batch`.
        """
        from ..graphdata.batch import batch_graphs, split_rows
        union, slices = batch_graphs(graphs)
        with nn.no_grad():
            _emb, net_delay = self.forward(union)
        return [{"net_delay": nd}
                for nd in split_rows(net_delay.data, slices)]
