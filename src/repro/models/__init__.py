"""Models: the timer-inspired GNN, the deep GCNII baseline, and the
statistics-based net-delay baselines."""

from .config import ModelConfig
from .net_embedding import NetConvLayer, NetEmbedding
from .propagation import LUTInterpolation, DelayPropagation
from .timing_gnn import TimingGNN, TimingPrediction
from .incremental import IncrementalForwardState
from .gcnii import GCNII, normalized_adjacency
from .baselines import (NetDelayRandomForest, NetDelayMLP,
                        collect_barboza_dataset)

__all__ = [
    "ModelConfig",
    "NetConvLayer", "NetEmbedding",
    "LUTInterpolation", "DelayPropagation",
    "TimingGNN", "TimingPrediction",
    "IncrementalForwardState",
    "GCNII", "normalized_adjacency",
    "NetDelayRandomForest", "NetDelayMLP", "collect_barboza_dataset",
]
