"""Vanilla deep GCNII baseline (paper Sec. 2.2, Eqs. 1-3).

GCNII (Chen et al., ICML'20) alleviates over-smoothing with initial
residual connections and identity mapping:

    H^{l+1} = sigma( ((1-a) P H^l + a H^0) ((1-b_l) I + b_l W^l) )

where P is the symmetrically normalised adjacency with self-loops
(Eq. 2).  The paper stacks 4/8/16 such layers on the *undirected*
homogeneous pin graph and shows the model fails to generalize across
designs (Table 5) — the comparison this module exists to reproduce.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import nn
from .config import ModelConfig

__all__ = ["GCNII", "normalized_adjacency"]


def normalized_adjacency(graph):
    """P = (D+I)^{-1/2} (A+I) (D+I)^{-1/2} over the undirected pin graph.

    Both net edges and cell edges contribute, symmetrized, as a
    homogeneous GNN would consume the netlist.
    """
    n = graph.num_nodes
    rows = np.concatenate([graph.net_src, graph.net_dst,
                           graph.cell_src, graph.cell_dst])
    cols = np.concatenate([graph.net_dst, graph.net_src,
                           graph.cell_dst, graph.cell_src])
    data = np.ones(len(rows))
    adj = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    adj.data[:] = 1.0                     # collapse duplicate edges
    adj = adj + sp.identity(n, format="csr")
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


class GCNII(nn.Module):
    """Deep GCNII stack predicting per-pin arrival time and slew."""

    def __init__(self, num_layers, cfg=None, rng=None, alpha=0.1, beta=0.1,
                 out_dim=8):
        super().__init__()
        cfg = cfg or ModelConfig.paper()
        rng = rng or np.random.default_rng(cfg.seed + 2)
        self.cfg = cfg
        self.num_layers = num_layers
        self.alpha = alpha
        self.beta = beta
        hidden = cfg.embedding_dim
        self.input_proj = nn.Linear(cfg.node_feat_dim, hidden, rng)
        self.weights = [nn.Linear(hidden, hidden, rng, bias=False)
                        for _ in range(num_layers)]
        self.head = nn.MLP(hidden, out_dim, rng, hidden=cfg.mlp_hidden,
                           num_hidden_layers=cfg.mlp_layers)

    def forward(self, graph, p_matrix=None):
        if p_matrix is None:
            p_matrix = normalized_adjacency(graph)
        h0 = self.input_proj(nn.Tensor(graph.node_features)).relu()
        h = h0
        for layer in self.weights:
            support = nn.spmm(p_matrix, h) * (1.0 - self.alpha) + \
                h0 * self.alpha
            h = (support * (1.0 - self.beta) +
                 layer(support) * self.beta).relu()
        return self.head(h)

    def predict(self, graph, p_matrix=None):
        with nn.no_grad():
            return self.forward(graph, p_matrix=p_matrix)
