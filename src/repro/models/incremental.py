"""Cone-limited incremental forward for :class:`TimingGNN`.

The delta serving path (:mod:`repro.serving.delta`) applies small ECO
edits to a cached :class:`~repro.graphdata.hetero.HeteroGraph` and wants
fresh predictions without re-running the whole levelized propagation.
This module caches the propagation state of the last forward pass and,
given the dirty feature rows reported by
:class:`~repro.graphdata.patch.GraphPatcher`, re-executes only the
levels/segments downstream of the touched pins:

* the **net embedding** is recomputed whole (three net convolutions are
  a small, non-levelized fraction of the model) and bit-compared row by
  row against the cached embedding — the exact per-node dirty set of the
  embedding stage, with no reachability approximation;
* the **propagation loop** then re-runs with a dirty-frontier mask over
  the cached :class:`~repro.graphdata.hetero.LevelSchedule`: a net edge
  recomputes iff its driver state, sink embedding or edge features
  changed; a cell fanin segment recomputes (all of its edges together,
  so the segment reduction stays bit-identical) iff any input changed.
  Rows whose recomputed state equals the cached state bit for bit stop
  the frontier — exactly the early-termination rule of
  :class:`~repro.sta.incremental.IncrementalTimer`.

The arithmetic mirrors ``models.propagation._fused_propagate`` step for
step (same raw kernels, same write order, segment reductions over
stable-sorted subsets that reduce in the same per-segment order), so a
refresh from an all-dirty state is bit-identical to the fused full
forward, and a cone refresh can only *over*-invalidate, never drift.
The differential harness in ``tests/test_delta.py`` pins incremental ==
full forward at 1e-9 across edit kinds and kernel backends.
"""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["IncrementalForwardState"]


def _merge_deltas(deltas):
    """Union a list of DirtyDeltas -> (structural, nodes, net, cell)."""
    structural = any(d.structural for d in deltas)
    if structural:
        return True, None, None, None
    nodes = [d.nodes for d in deltas if len(d.nodes)]
    nets = [d.net_eids for d in deltas if len(d.net_eids)]
    cells = [d.cell_eids for d in deltas if len(d.cell_eids)]
    cat = lambda parts: (np.unique(np.concatenate(parts)) if parts  # noqa: E731
                         else np.empty(0, dtype=np.int64))
    return False, cat(nodes), cat(nets), cat(cells)


class IncrementalForwardState:
    """Cached forward state of one (model, live graph) pair.

    ``refresh`` brings ``arrival``/``slew``/``net_delay`` up to date
    with the patched graph; ``version`` tracks the patcher version the
    state corresponds to, so the owning session knows which dirty log
    entries still need replaying.
    """

    def __init__(self, model):
        self.model = model
        self.version = -1          # patcher version this state matches
        self.he = None             # (N, d_emb) net embedding
        self.hp = None             # (N, d_prop) propagation context
        self.atb = None            # (N, 4) arrival accumulator
        self.arrival = None        # (N, 4) refined arrival head
        self.slew = None           # (N, 4) slew head
        self.net_delay = None      # (N, 4) net-delay head
        self.last_refresh_nodes = 0    # instrumentation: frontier size

    def invalidate(self):
        """Drop all cached state (structural edit / new graph object)."""
        self.he = self.hp = self.atb = None
        self.arrival = self.slew = self.net_delay = None

    # -- refresh -----------------------------------------------------------
    def refresh(self, graph, deltas, version):
        """Re-predict after ``deltas`` (DirtyDeltas since last refresh).

        Returns instrumentation: ``{"full": bool, "dirty_nodes": int}``.
        """
        structural, _nodes, net_eids, cell_eids = _merge_deltas(deltas)
        full = structural or self.he is None
        if not full and not deltas and self.version == version:
            self.last_refresh_nodes = 0
            return {"full": False, "dirty_nodes": 0}
        if full:
            self.invalidate()
            net_eids = cell_eids = np.empty(0, dtype=np.int64)

        n = graph.num_nodes
        model = self.model
        with nn.no_grad():
            he_t, nd_t = model.net_embedding.forward(graph)
        he_new = he_t.data
        if full:
            emb_dirty = np.ones(n, dtype=bool)
        else:
            emb_dirty = np.any(he_new != self.he, axis=1)
        self.he = he_new
        self.net_delay = nd_t.data

        dirty_nodes = self._propagate(graph, emb_dirty, net_eids,
                                      cell_eids, full)
        self.version = version
        self.last_refresh_nodes = int(dirty_nodes)
        return {"full": full, "dirty_nodes": int(dirty_nodes)}

    # -- the dirty-frontier propagation loop -------------------------------
    def _propagate(self, graph, emb_dirty, net_eids, cell_eids, full):
        kernels = nn.kernels
        model = self.model.propagation
        cfg = model.cfg
        sched = graph.compute_schedule()
        n = graph.num_nodes
        he = self.he

        st_init = model.source_init.fused_steps()
        st_at0 = model.source_at.fused_steps()
        st_net_prop = model.net_prop.fused_steps()
        st_net_inc = model.net_inc.fused_steps()
        st_query = model.lut.query.fused_steps()
        st_cx = model.lut.coeff_x.fused_steps()
        st_cy = model.lut.coeff_y.fused_steps()
        st_msg = model.cell_msg.fused_steps()
        st_cinc = model.cell_inc.fused_steps()
        st_comb = model.cell_combine.fused_steps()
        st_refine = model.refine_at.fused_steps()
        st_slew = model.slew_head.fused_steps()

        def mlp(h, steps, out_act=None):
            return kernels.mlp_chain_forward_raw(h, steps, out_act=out_act,
                                                 save=False)[0]

        gcat = kernels.gather_concat_raw
        extrema = kernels.segment_extrema_raw
        scatter_add = kernels.scatter_add_rows
        reduction = model.reduction
        d_prop = cfg.prop_dim
        gate = 1.0 / (1.0 + np.exp(-np.clip(model.agg_gate.data, -60, 60)))

        if full:
            dt = he.dtype
            self.hp = np.zeros((n, d_prop), dtype=dt)
            self.atb = np.zeros((n, 4), dtype=dt)
            self.arrival = np.zeros((n, 4), dtype=dt)
            self.slew = np.zeros((n, 4), dtype=dt)
        hp, atb = self.hp, self.atb
        node_dirty = np.ones(n, dtype=bool) if full \
            else np.zeros(n, dtype=bool)

        net_feat_dirty = np.zeros(graph.num_net_edges, dtype=bool)
        net_feat_dirty[net_eids] = True
        lut_dirty = np.zeros(graph.num_cell_edges, dtype=bool)
        lut_dirty[cell_eids] = True

        def write(index, new_hp, new_at):
            """Write branch outputs; mark rows whose state moved."""
            if not full:
                changed = (np.any(new_hp != hp[index], axis=1) |
                           np.any(new_at != atb[index], axis=1))
                node_dirty[index[changed]] = True
            hp[index] = new_hp
            atb[index] = new_at

        sources = sched.sources
        src_rows = sources[emb_dirty[sources]] if len(sources) else sources
        if len(src_rows):
            he_src = he[src_rows]
            write(src_rows, mlp(he_src, st_init, out_act="tanh"),
                  mlp(he_src, st_at0, out_act="softplus"))

        for lv in sched.levels:
            net_idx = net_new_hp = net_new_at = None
            cell_idx = cell_new_hp = cell_new_at = None
            if len(lv.net_eids):
                sel = (node_dirty[lv.net_src] | emb_dirty[lv.net_dst] |
                       net_feat_dirty[lv.net_eids])
                rows = np.nonzero(sel)[0]
                if len(rows):
                    src = lv.net_src[rows]
                    joint = gcat([hp, he, lv.net_features[rows]],
                                 [src, lv.net_dst[rows], None])
                    net_new_hp = mlp(joint, st_net_prop, out_act="tanh")
                    net_new_at = atb[src] + mlp(joint, st_net_inc,
                                                out_act="softplus")
                    net_idx = lv.net_dst[rows]
            if len(lv.cell_eids):
                edge_sel = (node_dirty[lv.cell_src] |
                            emb_dirty[lv.cell_dst_edges] |
                            lut_dirty[lv.cell_eids])
                segs = np.unique(np.concatenate(
                    [lv.cell_seg[edge_sel],
                     np.nonzero(emb_dirty[lv.cell_dst])[0]]))
                if len(segs):
                    # Recompute ALL edges of every dirty fanin segment so
                    # the segment reductions see complete groups (and
                    # reduce in the same stable order as the full pass).
                    es = np.nonzero(np.isin(lv.cell_seg, segs))[0]
                    e = len(es)
                    src = lv.cell_src[es]
                    q_in = gcat([hp, he], [src, lv.cell_dst_edges[es]])
                    q = mlp(q_in, st_query, out_act="tanh")
                    q8 = np.repeat(q, 8, axis=0)
                    rows8 = (es[:, None] * 8 + np.arange(8)).ravel()
                    ax = mlp(gcat([q8, lv.lut_idx_x[rows8]], [None, None]),
                             st_cx)
                    ay = mlp(gcat([q8, lv.lut_idx_y[rows8]], [None, None]),
                             st_cy)
                    v3 = lv.lut_values[rows8].reshape(-1, 7, 7)
                    vy = np.matmul(v3, ay[:, :, None])[:, :, 0]
                    lut_out = (np.einsum("ij,ij->i", ax, vy).reshape(e, 8)
                               * lv.cell_valid[es])
                    msg = mlp(np.concatenate([q_in, lut_out], axis=1),
                              st_msg, out_act="tanh")
                    inc = mlp(np.concatenate([msg, lut_out], axis=1),
                              st_cinc, out_act="softplus")
                    cand = atb[src] + inc
                    seg_local = np.searchsorted(segs, lv.cell_seg[es])
                    sub = kernels.SegmentSchedule(seg_local)
                    n_seg = len(segs)
                    out_max = extrema(cand, sub, n_seg, np.maximum)
                    out_min = extrema(cand, sub, n_seg, np.minimum)
                    cell_new_at = out_max * gate + out_min * (1.0 - gate)
                    aggs = []
                    if reduction in ("sum", "both"):
                        agg = np.zeros((n_seg, d_prop), dtype=msg.dtype)
                        scatter_add(agg, seg_local, msg, schedule=sub)
                        aggs.append(agg)
                    if reduction in ("max", "both"):
                        aggs.append(extrema(msg, sub, n_seg, np.maximum))
                    cell_idx = lv.cell_dst[segs]
                    comb_in = gcat([he] + aggs,
                                   [cell_idx] + [None] * len(aggs))
                    cell_new_hp = mlp(comb_in, st_comb, out_act="tanh")
            # Writes after both branches' reads (net first, then cell),
            # matching _fused_propagate; net_dst (sink pins) and cell_dst
            # (cell output pins) are disjoint node sets.
            if net_idx is not None:
                write(net_idx, net_new_hp, net_new_at)
            if cell_idx is not None:
                write(cell_idx, cell_new_hp, cell_new_at)

        head_rows = np.nonzero(node_dirty | emb_dirty)[0]
        if len(head_rows):
            state = np.concatenate([he[head_rows], hp[head_rows]], axis=1)
            self.arrival[head_rows] = atb[head_rows] + mlp(state, st_refine)
            self.slew[head_rows] = mlp(state, st_slew, out_act="softplus")
        return len(head_rows)
