"""Net-delay baselines from Barboza et al. [5]: random forest and MLP on
hand-engineered statistical net features (the Table 4 comparison)."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graphdata import barboza_features
from ..ml import RandomForestRegressor

__all__ = ["NetDelayRandomForest", "NetDelayMLP", "collect_barboza_dataset"]


def collect_barboza_dataset(graphs):
    """Stack engineered features/labels over a list of HeteroGraphs."""
    xs, ys = [], []
    for graph in graphs:
        x, y = barboza_features(graph)
        xs.append(x)
        ys.append(y)
    return np.concatenate(xs), np.concatenate(ys)


class NetDelayRandomForest:
    """Random forest on engineered net features (statistics-based [5])."""

    def __init__(self, n_estimators=30, max_depth=14, seed=0):
        self.model = RandomForestRegressor(n_estimators=n_estimators,
                                           max_depth=max_depth, seed=seed)

    def fit(self, graphs):
        x, y = collect_barboza_dataset(graphs)
        self.model.fit(x, y)
        return self

    def predict(self, graph):
        """(E_net, 4) net-delay prediction for one design."""
        x, _y = barboza_features(graph)
        return self.model.predict(x)


class NetDelayMLP:
    """MLP on the same engineered features (the weaker baseline in [5])."""

    def __init__(self, hidden=64, num_hidden_layers=3, lr=3e-3, epochs=200,
                 batch_size=2048, seed=0):
        self.hidden = hidden
        self.num_hidden_layers = num_hidden_layers
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.net = None

    def fit(self, graphs):
        x, y = collect_barboza_dataset(graphs)
        rng = np.random.default_rng(self.seed)
        self.net = nn.MLP(x.shape[1], y.shape[1], rng, hidden=self.hidden,
                          num_hidden_layers=self.num_hidden_layers)
        optim = nn.Adam(self.net.parameters(), lr=self.lr)
        n = len(x)
        for _epoch in range(self.epochs):
            perm = rng.permutation(n)
            for lo in range(0, n, self.batch_size):
                idx = perm[lo:lo + self.batch_size]
                pred = self.net(nn.Tensor(x[idx]))
                loss = nn.mse_loss(pred, nn.Tensor(y[idx]))
                optim.zero_grad()
                loss.backward()
                optim.step()
        return self

    def predict(self, graph):
        x, _y = barboza_features(graph)
        with nn.no_grad():
            return self.net(nn.Tensor(x)).data
