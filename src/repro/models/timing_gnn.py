"""The full timer-inspired GNN: net embedding + delay propagation.

This is the paper's primary contribution (Sec. 3.3): an end-to-end model
that maps a placed design's heterogeneous pin graph to per-pin arrival
time and slew, per-sink net delay, and per-arc cell delay — from which
endpoint slack follows using the known required times.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import ModelConfig
from .net_embedding import NetEmbedding
from .propagation import DelayPropagation

__all__ = ["TimingGNN", "TimingPrediction"]


class TimingPrediction:
    """Model outputs for one design (autograd tensors)."""

    def __init__(self, embedding, net_delay, atslew, cell_delay, edge_order):
        self.embedding = embedding       # (N, D)
        self.net_delay = net_delay       # (N, 4)
        self.atslew = atslew             # (N, 8): arrival | slew
        self.cell_delay = cell_delay     # (E_visited, 4)
        self.edge_order = edge_order     # cell-edge ids aligned with above

    @property
    def arrival(self):
        return self.atslew[:, 0:4]

    @property
    def slew(self):
        return self.atslew[:, 4:8]

    def numpy_arrival(self):
        return self.atslew.data[:, 0:4]

    def numpy_slew(self):
        return self.atslew.data[:, 4:8]

    def cell_delay_full(self, num_cell_edges):
        """Cell-delay predictions re-ordered to the graph's edge order."""
        out = np.zeros((num_cell_edges, 4))
        out[self.edge_order] = self.cell_delay.data
        return out


class TimingGNN(nn.Module):
    """End-to-end pre-routing timing predictor."""

    def __init__(self, cfg=None, rng=None):
        super().__init__()
        cfg = cfg or ModelConfig.paper()
        rng = rng or np.random.default_rng(cfg.seed)
        self.cfg = cfg
        self.net_embedding = NetEmbedding(cfg, rng)
        self.propagation = DelayPropagation(cfg, rng)

    def forward(self, graph):
        embedding, net_delay = self.net_embedding(graph)
        atslew, cell_delay, edge_order = self.propagation(graph, embedding)
        return TimingPrediction(embedding, net_delay, atslew, cell_delay,
                                edge_order)

    def predict(self, graph):
        """Inference without gradient tracking."""
        with nn.no_grad():
            return self.forward(graph)

    def predict_batch(self, graphs):
        """One forward pass over a disjoint union of several designs.

        Returns one per-design dict ``{"arrival", "slew"}`` (numpy, in
        the member graph's node order) per input graph.  Because every
        model operation is row-wise or a per-destination segment
        reduction, the batched outputs match per-graph :meth:`predict`
        to numerical tolerance — see ``tests/test_serving.py``.
        """
        from ..graphdata.batch import batch_graphs, split_rows
        union, slices = batch_graphs(graphs)
        pred = self.predict(union)
        arrivals = split_rows(pred.numpy_arrival(), slices)
        slews = split_rows(pred.numpy_slew(), slices)
        return [{"arrival": a, "slew": s} for a, s in zip(arrivals, slews)]
