"""Delay propagation model (paper Sec. 3.3.2).

Mirrors a timing engine's levelized propagation: node state flows through
the DAG level by level, alternating net propagation and cell propagation
layers.  Every node is updated exactly once (asynchronously, in level
order), so a single pass covers arbitrarily deep logic — this is the
paper's answer to the receptive-field problem of conventional GNNs.

Two kinds of state propagate together, exactly as in an STA engine:

* a bounded context vector ``h_prop`` (tanh-limited; the learned
  analogue of slew/load bookkeeping) — unbounded recurrent states would
  diverge over the up-to-hundreds of levels a design has;
* an unbounded 4-channel **arrival accumulator**: every net or cell arc
  adds a softplus-positive learned increment to its source's arrival
  (delays are non-negative, so arrivals are monotone along paths), and
  multi-arc fanin is fused per channel by a learned max/min gate (late
  corners are max-reduced in real STA, early corners min-reduced).

Slew is *not* cumulative — it is a local function of driver strength and
load — so it is predicted from the propagated context by a head rather
than accumulated.  The paper describes the whole construction as "a
timing engine learned from data with neural networks as function
approximators"; the additive arrival structure is what keeps the
effective receptive field unbounded while gradients stay conditioned
(every increment sees the loss directly, like a residual network).

Cell propagation embeds a learned **NLDM LUT interpolation** module: two
MLPs produce interpolation coefficients for the slew axis and the load
axis of each 7x7 look-up table; their Kronecker (outer) product yields a
7x7 coefficient matrix which is dotted with the LUT values — a learnable
generalisation of the bilinear interpolation a real STA engine performs.
The cell-arc arrival increment *is* the model's cell delay prediction,
tying the auxiliary task of Eq. (5) to the quantity used inside
propagation.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import ModelConfig
from .net_embedding import num_reduction_channels, reduction_channels

__all__ = ["LUTInterpolation", "LUTFlattenMLP", "DelayPropagation"]


class LUTInterpolation(nn.Module):
    """Learned interpolation over the 8 stacked LUTs of a cell arc."""

    def __init__(self, cfg, rng):
        super().__init__()
        q = cfg.lut_query_dim
        mlp = dict(hidden=cfg.lut_mlp_hidden,
                   num_hidden_layers=cfg.lut_mlp_layers)
        self.query = nn.MLP(cfg.prop_dim + cfg.embedding_dim, q, rng, **mlp)
        self.coeff_x = nn.MLP(q + 7, 7, rng, **mlp)
        self.coeff_y = nn.MLP(q + 7, 7, rng, **mlp)

    def forward(self, h_src_prop, h_dst_emb, valid, indices, values,
                cache=None):
        """Per-edge LUT outputs.

        ``valid`` (E, 8), ``indices`` (E, 112), ``values`` (E, 392);
        returns (E, 8) — one interpolated value per LUT.  The query sees
        the source context (which carries the input-slew information a
        real NLDM lookup is indexed by) and the destination embedding
        (which carries the load statistics).  ``cache`` is an optional
        :class:`repro.graphdata.hetero.LevelCompute` holding the
        per-level query expansion and index/value reshapes precomputed,
        so full-batch training does not rebuild them every forward.
        """
        e = len(valid)
        q = self.query(nn.concat([h_src_prop, h_dst_emb]),
                       activation="tanh")
        if cache is None:
            # Expand the query to one row per (edge, table).
            rep = np.repeat(np.arange(e), 8)
            rep_sched = None
            idx = np.asarray(indices).reshape(e * 8, 14)
            idx_x, idx_y = idx[:, :7], idx[:, 7:]
            vals = np.asarray(values).reshape(e * 8, 49)
        else:
            rep, rep_sched = cache.lut_rep, cache.lut_rep_sched
            idx_x, idx_y = cache.lut_idx_x, cache.lut_idx_y
            vals = cache.lut_values
        q8 = nn.gather_rows(q, rep, schedule=rep_sched)
        ax = self.coeff_x(nn.concat([q8, nn.Tensor(idx_x)]))
        ay = self.coeff_y(nn.concat([q8, nn.Tensor(idx_y)]))
        # Kronecker combination of the two axis-coefficient vectors,
        # dotted with the LUT value matrix.
        return nn.lut_kron_combine(ax, ay, vals, np.asarray(valid))


class LUTFlattenMLP(nn.Module):
    """Ablation alternative to :class:`LUTInterpolation`: a plain MLP on
    the flattened 512-dim LUT features.  No interpolation structure —
    this is what a generic heterogeneous GNN would do with the cell
    library, and what the Kronecker module is benchmarked against."""

    def __init__(self, cfg, rng):
        super().__init__()
        in_dim = cfg.prop_dim + cfg.embedding_dim + 8 + 112 + 392
        self.net = nn.MLP(in_dim, 8, rng, hidden=cfg.lut_mlp_hidden,
                          num_hidden_layers=cfg.lut_mlp_layers)

    def forward(self, h_src_prop, h_dst_emb, valid, indices, values,
                cache=None):
        out = self.net(nn.concat([
            h_src_prop, h_dst_emb, nn.Tensor(np.asarray(valid)),
            nn.Tensor(np.asarray(indices)), nn.Tensor(np.asarray(values))]))
        return out * nn.Tensor(np.asarray(valid))


class DelayPropagation(nn.Module):
    """Levelized arrival-time / slew propagation with auxiliary heads."""

    def __init__(self, cfg=None, rng=None):
        super().__init__()
        cfg = cfg or ModelConfig.paper()
        rng = rng or np.random.default_rng(cfg.seed + 1)
        self.cfg = cfg
        d_emb, d_prop = cfg.embedding_dim, cfg.prop_dim
        mlp = dict(hidden=cfg.mlp_hidden, num_hidden_layers=cfg.mlp_layers)
        # Sources (primary inputs, register Q pins) initialise from the
        # net embedding, which carries the load statistics the CK->Q
        # launch delay depends on.
        self.source_init = nn.MLP(d_emb, d_prop, rng, **mlp)
        self.source_at = nn.MLP(d_emb, 4, rng, **mlp)
        # Net propagation layer: [prop(driver), emb(sink), edge feats].
        self.net_prop = nn.MLP(d_prop + d_emb + cfg.net_edge_feat_dim,
                               d_prop, rng, **mlp)
        self.net_inc = nn.MLP(d_prop + d_emb + cfg.net_edge_feat_dim,
                              4, rng, **mlp)
        # Cell propagation: learned LUT lookup + message + two reduction
        # channels (sum, max), like the cell-arc max in an STA engine.
        self.reduction = cfg.reduction
        n_ch = num_reduction_channels(cfg.reduction)
        if cfg.lut_mode == "kron":
            self.lut = LUTInterpolation(cfg, rng)
        elif cfg.lut_mode == "mlp":
            self.lut = LUTFlattenMLP(cfg, rng)
        else:
            raise ValueError(f"unknown lut_mode {cfg.lut_mode!r}")
        self.cell_msg = nn.MLP(d_prop + d_emb + 8, d_prop, rng, **mlp)
        self.cell_inc = nn.MLP(d_prop + 8, 4, rng, **mlp)
        self.cell_combine = nn.MLP(d_emb + n_ch * d_prop, d_prop, rng, **mlp)
        # Per-channel gate mixing max- and min-aggregation of fanin
        # arrival candidates.
        self.agg_gate = nn.Tensor(np.zeros(4), requires_grad=True)
        # Output heads: signed arrival refinement and positive slew.
        self.refine_at = nn.MLP(d_emb + d_prop, 4, rng, **mlp)
        self.slew_head = nn.MLP(d_emb + d_prop, 4, rng, **mlp)

    def forward(self, graph, h_emb):
        """Propagate through ``graph.levels``.

        Returns (atslew (N, 8), cell_delay (E_cell, 4) aligned with
        ``edge_order``, edge_order).

        Under the fused kernel backend the level loop runs through
        :func:`_fused_propagate` — the whole loop as one hand-written
        multi-output tape node over shared state buffers; the composed
        per-op path below is the reference (and the fallback for the
        ``mlp`` LUT ablation).
        """
        if nn.kernels.is_fused() and self.cfg.lut_mode == "kron":
            h_prop, at, cell_delay, edge_order = _fused_propagate(
                self, graph, h_emb)
        else:
            h_prop, at, cell_delay, edge_order = self._propagate(
                graph, h_emb)
        state = nn.concat([h_emb, h_prop])
        arrival = at + self.refine_at(state)
        slew = self.slew_head(state, activation="softplus")
        atslew = nn.concat([arrival, slew])
        return atslew, cell_delay, edge_order

    def _propagate(self, graph, h_emb):
        """Composed per-op level loop; returns (h_prop, at, cell_delay,
        edge_order)."""
        n = graph.num_nodes
        sched = graph.compute_schedule()
        h_prop = nn.Tensor(np.zeros((n, self.cfg.prop_dim)))
        at = nn.Tensor(np.zeros((n, 4)))
        sources = sched.sources
        if len(sources):
            h_emb_src = nn.gather_rows(h_emb, sources)
            h_prop = nn.scatter_rows(
                h_prop, sources,
                self.source_init(h_emb_src, activation="tanh"))
            at = nn.scatter_rows(
                at, sources,
                self.source_at(h_emb_src, activation="softplus"))

        delay_chunks, delay_orders = [], []
        for lv in sched.levels:
            idx_parts, ctx_parts, at_parts = [], [], []
            if len(lv.net_eids):
                joint = nn.gather_concat(
                    [h_prop, h_emb, lv.net_features],
                    [lv.net_src, lv.net_dst, None],
                    schedules=[lv.net_src_sched, lv.net_dst_sched, None])
                # Every net sink has exactly one driver, so the edge list
                # itself indexes the destination nodes uniquely.
                idx_parts.append(lv.net_dst)
                ctx_parts.append(self.net_prop(joint, activation="tanh"))
                at_parts.append(nn.gather_add(
                    at, lv.net_src,
                    self.net_inc(joint, activation="softplus"),
                    schedule=lv.net_src_sched))
            if len(lv.cell_eids):
                h_s = nn.gather_rows(h_prop, lv.cell_src,
                                     schedule=lv.cell_src_sched)
                h_d = nn.gather_rows(h_emb, lv.cell_dst_edges,
                                     schedule=lv.cell_dst_sched)
                lut_out = self.lut(h_s, h_d, lv.cell_valid,
                                   lv.cell_indices, lv.cell_values,
                                   cache=lv)
                msg = self.cell_msg(nn.concat([h_s, h_d, lut_out]),
                                    activation="tanh")
                inc = self.cell_inc(nn.concat([msg, lut_out]),
                                    activation="softplus")
                # The arrival increment is the cell delay itself (Eq. 5).
                delay_chunks.append(inc)
                delay_orders.append(lv.cell_eids)
                cand = nn.gather_add(at, lv.cell_src, inc,
                                     schedule=lv.cell_src_sched)
                n_dst = len(lv.cell_dst)
                # One-pass fanin reduction: late corners max-reduced,
                # early corners min-reduced, mixed by the learned gate.
                at_new = nn.segment_minmax_gate(
                    cand, lv.cell_seg, n_dst, self.agg_gate,
                    schedule=lv.cell_seg_sched)
                aggs = reduction_channels(msg, lv.cell_seg, n_dst,
                                          self.reduction,
                                          schedule=lv.cell_seg_sched)
                h_d_u = nn.gather_rows(h_emb, lv.cell_dst)
                ctx = self.cell_combine(nn.concat([h_d_u] + aggs),
                                        activation="tanh")
                idx_parts.append(lv.cell_dst)
                ctx_parts.append(ctx)
                at_parts.append(at_new)
            if idx_parts:
                index = np.concatenate(idx_parts)
                ctx_vals = (ctx_parts[0] if len(ctx_parts) == 1
                            else nn.concat(ctx_parts, axis=0))
                at_vals = (at_parts[0] if len(at_parts) == 1
                           else nn.concat(at_parts, axis=0))
                h_prop = nn.scatter_rows(h_prop, index, ctx_vals)
                at = nn.scatter_rows(at, index, at_vals)

        if delay_chunks:
            cell_delay = (delay_chunks[0] if len(delay_chunks) == 1
                          else nn.concat(delay_chunks, axis=0))
            edge_order = np.concatenate(delay_orders)
        else:
            cell_delay = nn.Tensor(np.zeros((0, 4)))
            edge_order = np.zeros(0, dtype=np.int64)
        return h_prop, at, cell_delay, edge_order


def _fused_propagate(model, graph, h_emb):
    """Level-fused propagation: the whole loop as ONE fused tape node.

    The composed path creates tens of tape nodes per topological level
    (gathers, concats, MLP chains, segment reductions, functional
    scatters), and deep designs have hundreds of levels — the tape
    bookkeeping (node allocation, gradient buffer copies, full-width
    scatter masks) ends up rivalling the arithmetic.  This kernel
    hand-writes the forward and backward sweeps over two shared state
    buffers (``h_prop`` and the arrival accumulator), exploiting the
    schedule's write-once invariant — every node is written at exactly
    one level and read only at later levels — so the forward updates
    one ``(N, d)`` buffer in place instead of copying it per level, and
    the backward keeps ONE gradient buffer per state, extracting each
    level's written rows (then zeroing them) and scatter-adding gather
    gradients while sweeping levels in reverse.

    Numerically equivalent to the composed graph within the
    fused==naive contract (only floating-point summation order
    differs); the full-model differential test pins the backends
    together.  Used for the paper's ``kron`` LUT mode; other
    configurations fall back to the composed path.

    Returns ``(h_prop, at, cell_delay, edge_order)`` where the first
    three are tensors produced by glue nodes around one shared backward
    closure (the closure fires once all output gradients are in).
    """
    kernels = nn.kernels
    cfg = model.cfg
    sched = graph.compute_schedule()
    n = graph.num_nodes
    d_prop, d_emb, q_dim = cfg.prop_dim, cfg.embedding_dim, cfg.lut_query_dim
    he = h_emb.data
    reduction = model.reduction
    save = nn.is_grad_enabled()

    st_init = model.source_init.fused_steps()
    st_at0 = model.source_at.fused_steps()
    st_net_prop = model.net_prop.fused_steps()
    st_net_inc = model.net_inc.fused_steps()
    st_query = model.lut.query.fused_steps()
    st_cx = model.lut.coeff_x.fused_steps()
    st_cy = model.lut.coeff_y.fused_steps()
    st_msg = model.cell_msg.fused_steps()
    st_cinc = model.cell_inc.fused_steps()
    st_comb = model.cell_combine.fused_steps()

    mlp_fwd = kernels.mlp_chain_forward_raw
    mlp_bwd = kernels.mlp_chain_backward_raw
    gcat = kernels.gather_concat_raw
    extrema = kernels.segment_extrema_raw
    scatter_add = kernels.scatter_add_rows

    gate = 1.0 / (1.0 + np.exp(-np.clip(model.agg_gate.data, -60, 60)))

    hp = np.zeros((n, d_prop))
    atb = np.zeros((n, 4))
    sources = sched.sources
    s_init = s_at0 = None
    if len(sources):
        he_src = he[sources]
        init_out, s_init = mlp_fwd(he_src, st_init, out_act="tanh",
                                   save=save)
        at0_out, s_at0 = mlp_fwd(he_src, st_at0, out_act="softplus",
                                 save=save)
        hp[sources] = init_out
        atb[sources] = at0_out

    recs = []
    delay_chunks, delay_orders = [], []
    chunk_off = 0
    for lv in sched.levels:
        rec = {}
        net_ctx = net_at = cell_ctx = cell_at = None
        if len(lv.net_eids):
            joint = gcat([hp, he, lv.net_features],
                         [lv.net_src, lv.net_dst, None])
            net_ctx, rec["s_nctx"] = mlp_fwd(joint, st_net_prop,
                                             out_act="tanh", save=save)
            inc_net, rec["s_ninc"] = mlp_fwd(joint, st_net_inc,
                                             out_act="softplus", save=save)
            net_at = atb[lv.net_src] + inc_net
        if len(lv.cell_eids):
            e = len(lv.cell_eids)
            q_in = gcat([hp, he], [lv.cell_src, lv.cell_dst_edges])
            q, rec["s_q"] = mlp_fwd(q_in, st_query, out_act="tanh",
                                    save=save)
            # lut_rep is np.repeat(arange(e), 8), so the query expansion
            # is a plain row repeat (and its gradient a reshape-sum).
            q8 = np.repeat(q, 8, axis=0)
            ax, rec["s_ax"] = mlp_fwd(gcat([q8, lv.lut_idx_x], [None, None]),
                                      st_cx, save=save)
            ay, rec["s_ay"] = mlp_fwd(gcat([q8, lv.lut_idx_y], [None, None]),
                                      st_cy, save=save)
            v3 = lv.lut_values.reshape(-1, 7, 7)
            vy = np.matmul(v3, ay[:, :, None])[:, :, 0]
            lut_out = (np.einsum("ij,ij->i", ax, vy).reshape(e, 8)
                       * lv.cell_valid)
            msg_in = np.concatenate([q_in, lut_out], axis=1)
            msg, rec["s_msg"] = mlp_fwd(msg_in, st_msg, out_act="tanh",
                                        save=save)
            inc, rec["s_cinc"] = mlp_fwd(
                np.concatenate([msg, lut_out], axis=1), st_cinc,
                out_act="softplus", save=save)
            delay_chunks.append(inc)
            delay_orders.append(lv.cell_eids)
            rec["chunk"] = (chunk_off, chunk_off + e)
            chunk_off += e
            cand = atb[lv.cell_src] + inc
            seg = lv.cell_seg_sched
            n_dst = len(lv.cell_dst)
            out_max = extrema(cand, seg, n_dst, np.maximum)
            out_min = extrema(cand, seg, n_dst, np.minimum)
            cell_at = out_max * gate + out_min * (1.0 - gate)
            aggs = []
            if reduction in ("sum", "both"):
                agg = np.zeros((n_dst, d_prop))
                scatter_add(agg, lv.cell_seg, msg, schedule=seg)
                aggs.append(agg)
            if reduction in ("max", "both"):
                agg_max = extrema(msg, seg, n_dst, np.maximum)
                aggs.append(agg_max)
                if save:
                    rec["agg_max"] = agg_max
            comb_in = gcat([he] + aggs, [lv.cell_dst] + [None] * len(aggs))
            cell_ctx, rec["s_comb"] = mlp_fwd(comb_in, st_comb,
                                              out_act="tanh", save=save)
            if save:
                rec["vy"] = vy
                rec["cand"] = cand
                rec["out_max"] = out_max
                rec["out_min"] = out_min
        # Writes after both branches' reads: level-L gathers always see
        # the pre-level state, exactly like the composed scatter_rows.
        if net_ctx is not None:
            hp[lv.net_dst] = net_ctx
            atb[lv.net_dst] = net_at
        if cell_ctx is not None:
            hp[lv.cell_dst] = cell_ctx
            atb[lv.cell_dst] = cell_at
        recs.append(rec)

    if delay_chunks:
        cell_delay = (delay_chunks[0] if len(delay_chunks) == 1
                      else np.concatenate(delay_chunks, axis=0))
        edge_order = np.concatenate(delay_orders)
    else:
        cell_delay = np.zeros((0, 4))
        edge_order = np.zeros(0, dtype=np.int64)

    # -- backward: one closure consuming all three output gradients ----------
    holder = {}

    def mega_backward(_g):
        g_cd = holder.pop("cd", None)
        g_hp_seed = holder.pop("hp", None)
        g_at_seed = holder.pop("at", None)
        ghp = (g_hp_seed.copy() if g_hp_seed is not None
               else np.zeros((n, d_prop)))
        gat = (g_at_seed.copy() if g_at_seed is not None
               else np.zeros((n, 4)))
        ghe = np.zeros_like(he)
        g_gate = np.zeros_like(model.agg_gate.data)
        for lv, rec in zip(reversed(sched.levels), reversed(recs)):
            has_net = "s_nctx" in rec
            has_cell = "s_q" in rec
            # Extract the gradients of this level's written rows, then
            # clear them: the rows' pre-write values are the initial
            # zeros, whose gradient is discarded (scatter_rows' mask).
            if has_net:
                g_nctx = ghp[lv.net_dst]
                g_nat = gat[lv.net_dst]
                ghp[lv.net_dst] = 0.0
                gat[lv.net_dst] = 0.0
            if has_cell:
                g_cctx = ghp[lv.cell_dst]
                g_cat = gat[lv.cell_dst]
                ghp[lv.cell_dst] = 0.0
                gat[lv.cell_dst] = 0.0
            if has_cell:
                seg = lv.cell_seg_sched
                e = len(lv.cell_eids)
                msg = rec["s_msg"][2]
                # combine MLP <- [h_emb(dst) | reduction channels].
                g_comb = mlp_bwd(g_cctx, st_comb, rec["s_comb"],
                                 out_act="tanh")
                ghe[lv.cell_dst] += g_comb[:, :d_emb]
                col = d_emb
                g_msg = None
                if reduction in ("sum", "both"):
                    g_msg = g_comb[:, col:col + d_prop][lv.cell_seg]
                    col += d_prop
                if reduction in ("max", "both"):
                    agg_max = rec["agg_max"]
                    mask = (msg == agg_max[seg.ids]).astype(np.float64)
                    counts = np.zeros_like(agg_max)
                    scatter_add(counts, seg.ids, mask, schedule=seg)
                    part = mask * (g_comb[:, col:col + d_prop]
                                   / np.maximum(counts, 1.0))[seg.ids]
                    g_msg = part if g_msg is None else g_msg + part
                    col += d_prop
                # Late/early min-max gate (tie-splitting, as naive).
                cand, out_max, out_min = (rec["cand"], rec["out_max"],
                                          rec["out_min"])
                g_gate += (g_cat * (out_max - out_min)).sum(axis=0)
                mask_max = (cand == out_max[seg.ids]).astype(np.float64)
                counts_max = np.zeros_like(out_max)
                scatter_add(counts_max, seg.ids, mask_max, schedule=seg)
                mask_min = (cand == out_min[seg.ids]).astype(np.float64)
                counts_min = np.zeros_like(out_min)
                scatter_add(counts_min, seg.ids, mask_min, schedule=seg)
                g_cand = mask_max * ((g_cat * gate)
                                     / np.maximum(counts_max, 1.0))[seg.ids]
                g_cand += mask_min * ((g_cat * (1.0 - gate))
                                      / np.maximum(counts_min, 1.0))[seg.ids]
                scatter_add(gat, lv.cell_src, g_cand,
                            schedule=lv.cell_src_sched)
                g_inc = g_cand
                if g_cd is not None:
                    lo, hi = rec["chunk"]
                    g_inc = g_inc + g_cd[lo:hi]
                # cell_inc MLP <- [msg | lut_out].
                g_ci = mlp_bwd(g_inc, st_cinc, rec["s_cinc"],
                               out_act="softplus")
                g_msg = g_msg + g_ci[:, :d_prop]
                g_lut = g_ci[:, d_prop:]
                # cell_msg MLP <- [h_s | h_d | lut_out].
                g_mi = mlp_bwd(g_msg, st_msg, rec["s_msg"], out_act="tanh")
                g_lut = g_lut + g_mi[:, d_prop + d_emb:]
                # LUT interpolation: out = ax . (V @ ay) per row.
                gv = (g_lut * lv.cell_valid).reshape(-1, 1)
                ax = rec["s_ax"][2]
                v3 = lv.lut_values.reshape(-1, 7, 7)
                g_ax = rec["vy"] * gv
                g_ay = np.matmul(ax[:, None, :], v3)[:, 0, :] * gv
                g_axi = mlp_bwd(g_ax, st_cx, rec["s_ax"])
                g_ayi = mlp_bwd(g_ay, st_cy, rec["s_ay"])
                g_q8 = g_axi[:, :q_dim] + g_ayi[:, :q_dim]
                g_q = g_q8.reshape(e, 8, q_dim).sum(axis=1)
                g_qi = mlp_bwd(g_q, st_query, rec["s_q"], out_act="tanh")
                # q_in and msg_in share the [h_s | h_d] prefix.
                g_hs = g_qi[:, :d_prop] + g_mi[:, :d_prop]
                g_hd = g_qi[:, d_prop:] + g_mi[:, d_prop:d_prop + d_emb]
                scatter_add(ghp, lv.cell_src, g_hs,
                            schedule=lv.cell_src_sched)
                scatter_add(ghe, lv.cell_dst_edges, g_hd,
                            schedule=lv.cell_dst_sched)
            if has_net:
                scatter_add(gat, lv.net_src, g_nat,
                            schedule=lv.net_src_sched)
                g_joint = mlp_bwd(g_nctx, st_net_prop, rec["s_nctx"],
                                  out_act="tanh")
                g_joint += mlp_bwd(g_nat, st_net_inc, rec["s_ninc"],
                                   out_act="softplus")
                scatter_add(ghp, lv.net_src, g_joint[:, :d_prop],
                            schedule=lv.net_src_sched)
                # Each net sink has exactly one driver: unique rows.
                ghe[lv.net_dst] += g_joint[:, d_prop:d_prop + d_emb]
        if len(sources):
            g_src = mlp_bwd(ghp[sources], st_init, s_init, out_act="tanh")
            g_src += mlp_bwd(gat[sources], st_at0, s_at0,
                             out_act="softplus")
            ghe[sources] += g_src
        if model.agg_gate.requires_grad:
            model.agg_gate._accumulate(g_gate * gate * (1.0 - gate),
                                       own=True)
        if h_emb.requires_grad:
            h_emb._accumulate(ghe, own=True)

    params = [h_emb, model.agg_gate]
    for st in (st_init, st_at0, st_net_prop, st_net_inc, st_query, st_cx,
               st_cy, st_msg, st_cinc, st_comb):
        for w, b, _act in st:
            params.append(w)
            if b is not None:
                params.append(b)
    root = nn.Tensor._make(np.zeros(()), tuple(params), mega_backward)

    def _output(data, key):
        # Glue node: stashes its gradient and pokes the root so the
        # shared closure fires exactly once, after every used output's
        # gradient has been accumulated (reverse-topological order).
        def backward(g):
            holder[key] = g
            root._accumulate(np.zeros(()))

        return nn.Tensor._make(data, (root,), backward)

    return (_output(hp, "hp"), _output(atb, "at"),
            _output(cell_delay, "cd"), edge_order)
